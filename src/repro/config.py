"""Cupid configuration — the control parameters of Table 1.

Every threshold and factor the paper names is a field here, with the
paper's "typical value" as the default. ``validate()`` enforces the
relationships Table 1 states (``thhigh`` > ``thaccept`` > ``thlow``),
and :class:`ConfigError` is raised on violation so misconfiguration
fails loudly before a match runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from repro.exceptions import ConfigError
from repro.linguistic.tokens import TokenType


def _default_token_weights() -> Dict["TokenType", float]:
    """Per-token-type weights for element name similarity (Section 5.3).

    "Content and concept tokens are assigned a greater weight, since
    these token types are more relevant than numbers and conjunctions,
    prepositions, etc."
    """
    return {
        TokenType.CONTENT: 0.40,
        TokenType.CONCEPT: 0.35,
        TokenType.NUMBER: 0.10,
        TokenType.SPECIAL: 0.05,
        TokenType.COMMON: 0.10,
    }


def _default_workers() -> int:
    """``1`` (in-process) unless ``REPRO_FORCE_WORKERS`` is set, the
    switch the CI 2-worker job uses to route every eligible store
    operation through the sharded parallel layer without touching test
    code. ``0`` means auto-size by CPU count at store-build time."""
    raw = os.environ.get("REPRO_FORCE_WORKERS")
    return int(raw) if raw else 1


def _default_parallel_threshold() -> int:
    """Leaf threshold below which planes stay serial regardless of
    ``workers``. ``REPRO_FORCE_PARALLEL_THRESHOLD`` overrides it so CI
    can force tiny fuzz planes through the parallel paths."""
    raw = os.environ.get("REPRO_FORCE_PARALLEL_THRESHOLD")
    return int(raw) if raw else 256


def _default_dense_backend() -> str:
    """``"auto"`` unless ``REPRO_FORCE_STDLIB`` is set in the
    environment, which forces the pure-stdlib fallback even when numpy
    is importable — the switch CI uses to exercise both array backends
    without maintaining two container images."""
    return "stdlib" if os.environ.get("REPRO_FORCE_STDLIB") else "auto"


@dataclass
class CupidConfig:
    """All tunable parameters of the Cupid pipeline.

    Defaults are the "typical values" of Table 1. Attributes whose
    names match the paper use its notation.
    """

    #: Name-similarity threshold for compatible categories (Table 1:
    #: 0.5 — "the choice of value is not critical, as it is used merely
    #: for pruning").
    thns: float = 0.5

    #: If ``wsim(s,t) >= thhigh``, increase leaf structural similarities
    #: in both subtrees. Must exceed ``thaccept`` (Table 1: 0.6).
    thhigh: float = 0.6

    #: If ``wsim(s,t) <= thlow``, decrease leaf structural similarities.
    #: Must be below ``thaccept`` (Table 1: 0.35).
    thlow: float = 0.35

    #: Multiplicative increase factor for leaf ssim (Table 1: 1.2).
    cinc: float = 1.2

    #: Multiplicative decrease factor, typically ~1/cinc (Table 1: 0.9).
    cdec: float = 0.9

    #: Strong-link / acceptable-mapping threshold (Table 1: 0.5).
    thaccept: float = 0.5

    #: Structural contribution to wsim for non-leaf pairs (Table 1:
    #: 0.5–0.6; we default to the middle of the stated range).
    wstruct: float = 0.6

    #: Structural contribution for leaf-leaf pairs ("typically ...
    #: lower for leaf-leaf pairs than for non-leaf pairs").
    wstruct_leaf: float = 0.5

    #: Subtree leaf-count ratio beyond which node pairs are skipped
    #: (Section 6: "only comparing elements that have a similar number
    #: of leaves in their subtrees (say within a factor of 2)").
    leaf_count_ratio: float = 2.0

    #: Enable the leaf-count pruning above. Roots are always compared.
    prune_by_leaf_count: bool = True

    #: Depth-k leaf pruning (Section 8.4 "Pruning leaves"): when > 0,
    #: the leaf set of a node is cut off at this depth below it.
    leaf_prune_depth: int = 0

    #: lsim assigned to pairs the user marks in an initial mapping
    #: (Section 8.4: "initialized to a predefined maximum value").
    initial_mapping_lsim: float = 1.0

    #: Reify referential constraints as join-view nodes (Section 8.3).
    use_refint_joins: bool = True

    #: Use the lazy-expansion optimization for shared types (§8.4).
    lazy_expansion: bool = False

    #: Drop optional leaves without strong links from the ssim fraction
    #: (Section 8.4 "Optionality").
    discount_optional_leaves: bool = True

    #: Per-token-type weights w_i for name similarity; must sum to 1.
    token_type_weights: Dict[TokenType, float] = field(
        default_factory=_default_token_weights
    )

    #: Factor key-ness into leaf structural initialization ("it
    #: exploits keys", Section 4): two key elements start slightly more
    #: compatible, a key/non-key pair slightly less.
    use_key_affinity: bool = True

    #: Additive key-ness adjustment applied to the data-type
    #: compatibility (result clamped to the [0, 0.5] leaf-init range).
    key_affinity_bonus: float = 0.05

    #: Compare element descriptions (data-dictionary annotations) as an
    #: additional lsim signal — the Section 10 future-work item.
    use_descriptions: bool = False

    #: Weight of the description similarity when it wins over the
    #: name-based lsim: lsim = max(name lsim, weight × desc sim).
    description_weight: float = 0.9

    #: Similarity assigned to substring (prefix/suffix) token matches,
    #: scaled by overlap; kept below typical thesaurus synonym strength.
    substring_sim_ceiling: float = 0.8

    #: Minimum token similarity considered at all (noise floor).
    min_token_sim: float = 0.0

    #: Matching engine. ``"dense"`` (the default) routes the TreeMatch
    #: hot path through contiguous similarity matrices
    #: (:mod:`repro.structure.dense`) and memoizes the linguistic
    #: phase; ``"reference"`` keeps the straightforward dict-based
    #: implementation as the correctness oracle. Both produce identical
    #: similarities and mappings.
    engine: str = "dense"

    #: Array backend for the dense engine: ``"auto"`` uses numpy when
    #: importable and falls back to pure-stdlib ``array('d')``;
    #: ``"numpy"`` / ``"stdlib"`` force one (``"numpy"`` raises if
    #: numpy is unavailable). The default honors the
    #: ``REPRO_FORCE_STDLIB`` environment variable (set → "stdlib").
    dense_backend: str = field(default_factory=_default_dense_backend)

    #: Similarity-store layout for the dense engine. ``"flat"`` (the
    #: default) materializes the full ``n_s×n_t`` ssim/lsim/wsim
    #: matrices up front; ``"blocked"`` routes the same computation
    #: through :class:`repro.structure.blocked.BlockedSimilarityStore`,
    #: which allocates fixed-size tiles lazily on first *write*, keeps
    #: ssim only (lsim is gathered from the linguistic tables, wsim is
    #: recomputed from the same expression on read), and so bounds peak
    #: memory by the live tiles instead of the whole plane — the
    #: difference that matters for 10⁴-leaf schemas. ``"auto"`` picks
    #: per pair: blocked when either side's leaf count reaches
    #: :attr:`auto_store_leaf_threshold`, flat below it — the right
    #: default for repository search, where query size is unknown and
    #: most pairs are dissimilar (their planes stay virtual). All
    #: layouts are bit-identical (fuzz-parity-tested). ``"auto"`` is
    #: the global default: small pairs keep flat's raw speed, large
    #: pairs get the blocked store's bounded memory without anyone
    #: having to size the workload in advance.
    store: str = "auto"

    #: Leaf-count threshold at which ``store = "auto"`` switches from
    #: flat to blocked (either side reaching it flips the pair). The
    #: default follows the PR 4 measurements: flat wins below ~500
    #: leaves/side, blocked wins above.
    auto_store_leaf_threshold: int = 512

    #: Upper bound on the prepared schemas a
    #: :class:`~repro.pipeline.session.MatchSession` retains (0 =
    #: unbounded). When set, the least-recently-matched prepared schema
    #: (and its cached lsim tables) is evicted once the bound is
    #: exceeded, so long-lived serving sessions — a repository serving
    #: heavy search traffic — hold O(bound) memory instead of one
    #: PreparedSchema per schema ever seen. Eviction counts appear in
    #: ``MatchSession.cache_info()``.
    max_prepared_schemas: int = 0

    #: Tile edge length for ``store = "blocked"``; 0 picks the default
    #: (:data:`repro.structure.blocked.DEFAULT_BLOCK_SIZE`). Ignored by
    #: the flat store.
    block_size: int = 0

    #: Route the dense engine's linguistic phase through the
    #: distinct-name kernel (:mod:`repro.linguistic.kernel`): name
    #: similarities are computed once per distinct normalized-name pair
    #: and broadcast to element pairs by index gather. Bit-identical to
    #: the per-pair path; only applies when ``engine == "dense"`` and
    #: descriptions are off. ``False`` keeps the per-element-pair loop
    #: (the kernel ablation baseline in the benchmarks).
    linguistic_kernel: bool = True

    #: Batch the kernel's distinct-name ``ns`` computation over the
    #: whole uncached cross product (token-id matrices + vectorized
    #: row/column maxes) instead of one scalar memo call per pair.
    #: Bit-identical to the scalar path (parity-tested); only engages
    #: on the numpy backend — the stdlib fallback keeps the memoized
    #: scalar loop. ``False`` forces the scalar loop everywhere (the
    #: ablation baseline).
    linguistic_batch_ns: bool = True

    #: Worker processes for the tile-sharded parallel TreeMatch layer
    #: (:mod:`repro.structure.parallel`). ``1`` (the default) is the
    #: current in-process path; ``0`` auto-sizes to the CPU count; ``N
    #: > 1`` shards strong-link scans and cinc/cdec block multiplies
    #: across N processes over tile-row stripes of the wsim plane.
    #: Bit-identical to serial execution (fuzz-parity-tested with a
    #: workers axis); planes below :attr:`parallel_leaf_threshold`
    #: leaves per side always stay serial. The default honors
    #: ``REPRO_FORCE_WORKERS``.
    workers: int = field(default_factory=_default_workers)

    #: Minimum leaves on the larger side of a pair before ``workers``
    #: applies — below it process fan-out costs more than the scans it
    #: spreads. The default honors ``REPRO_FORCE_PARALLEL_THRESHOLD``.
    parallel_leaf_threshold: int = field(
        default_factory=_default_parallel_threshold
    )

    #: Path of a persistent linguistic memo cache (``simcache.json``)
    #: for standalone :class:`~repro.pipeline.session.MatchSession`
    #: use — the same dirty-gated, fingerprint-checked store the schema
    #: repository keeps next to its artifacts (PR 5), wired to sessions
    #: that have no repository. Empty (the default) disables it.
    simcache_path: str = ""

    #: Number of index segments a repository accumulates before a
    #: flush auto-compacts them into one (0 = never auto-compact;
    #: ``SchemaRepository.compact()`` stays available). Each ingest
    #: batch appends one segment, so this bounds both the open-time
    #: replay length and the manifest size.
    segment_compaction_threshold: int = 8

    #: Session-pool width of a :class:`repro.serving.MatchService`:
    #: how many :class:`~repro.pipeline.session.MatchSession` workers
    #: execute requests concurrently (0 = one per CPU core). Each
    #: worker holds its own prepared/lsim LRU tiers (bounded by
    #: :attr:`max_prepared_schemas`); all of them share one linguistic
    #: memo and the repository's persistent simcache.
    serving_sessions: int = 4

    #: Upper bound on requests admitted but not yet finished by a
    #: :class:`~repro.serving.MatchService` (running + queued). Beyond
    #: it the service raises
    #: :class:`~repro.exceptions.ServiceOverloadedError` immediately —
    #: backpressure instead of unbounded queueing.
    serving_queue_depth: int = 64

    #: Default per-request deadline, in seconds, for MatchService
    #: requests (0 = no deadline). Individual requests can override it;
    #: exceeding it raises
    #: :class:`~repro.exceptions.RequestTimeoutError`.
    serving_timeout_s: float = 30.0

    #: Base delay, in seconds, of the serving subsystem's supervised
    #: compaction retries: a failed background compaction (e.g. disk
    #: full) is retried after ``base * 2**(failures-1)`` seconds,
    #: capped at 30 s. ``0`` disables the retries — a failed
    #: compaction then simply waits for the next ingest to re-trigger
    #: it.
    serving_compaction_backoff_s: float = 0.5

    #: Base of the jittered ``Retry-After`` header the HTTP daemon
    #: attaches to 503 responses (overload / dead worker pool): the
    #: advertised delay is uniform in [base, 2*base] seconds so a
    #: fleet of backing-off clients doesn't reconverge in lockstep.
    #: ``0`` omits the header.
    serving_retry_after_s: float = 1.0

    #: Seed of the Retry-After jitter stream. None (the default) draws
    #: from OS entropy — the right choice in production, where
    #: distinct daemons must desynchronize their clients. Pin an int
    #: to make the advertised delays reproducible (the fault-injection
    #: suite does, so chaos runs under pinned ``REPRO_FAULTS`` seeds
    #: replay byte-identical 503 responses).
    serving_retry_after_seed: Optional[int] = None

    #: Slow-request log threshold, in milliseconds: HTTP requests
    #: whose wall time exceeds it emit one structured JSON log line
    #: (request id, endpoint, status, elapsed) on stderr even when
    #: the daemon is not ``--verbose``. ``0`` (the default) disables
    #: the slow log.
    slow_request_ms: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the parameters are inconsistent."""
        for name in ("thns", "thhigh", "thlow", "thaccept"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name}={value} outside [0, 1]")
        if not self.thhigh > self.thaccept:
            raise ConfigError(
                f"thhigh ({self.thhigh}) must exceed thaccept "
                f"({self.thaccept}) — Table 1"
            )
        if not self.thlow < self.thaccept:
            raise ConfigError(
                f"thlow ({self.thlow}) must be below thaccept "
                f"({self.thaccept}) — Table 1"
            )
        if self.cinc < 1.0:
            raise ConfigError(f"cinc ({self.cinc}) must be >= 1")
        if not 0.0 < self.cdec <= 1.0:
            raise ConfigError(f"cdec ({self.cdec}) must be in (0, 1]")
        for name in ("wstruct", "wstruct_leaf"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name}={value} outside [0, 1]")
        if self.leaf_count_ratio < 1.0:
            raise ConfigError(
                f"leaf_count_ratio ({self.leaf_count_ratio}) must be >= 1"
            )
        if self.leaf_prune_depth < 0:
            raise ConfigError("leaf_prune_depth must be >= 0")
        if not 0.0 <= self.description_weight <= 1.0:
            raise ConfigError(
                f"description_weight={self.description_weight} outside [0, 1]"
            )
        if not 0.0 <= self.key_affinity_bonus <= 0.25:
            raise ConfigError(
                f"key_affinity_bonus={self.key_affinity_bonus} "
                "outside [0, 0.25]"
            )
        if self.engine not in ("dense", "reference"):
            raise ConfigError(
                f"engine={self.engine!r} (expected 'dense' or 'reference')"
            )
        if self.dense_backend not in ("auto", "numpy", "stdlib"):
            raise ConfigError(
                f"dense_backend={self.dense_backend!r} "
                "(expected 'auto', 'numpy', or 'stdlib')"
            )
        if self.store not in ("flat", "blocked", "auto"):
            raise ConfigError(
                f"store={self.store!r} "
                "(expected 'flat', 'blocked', or 'auto')"
            )
        if self.block_size < 0:
            raise ConfigError(
                f"block_size ({self.block_size}) must be >= 0 (0 = default)"
            )
        if self.auto_store_leaf_threshold < 1:
            raise ConfigError(
                f"auto_store_leaf_threshold "
                f"({self.auto_store_leaf_threshold}) must be >= 1"
            )
        if self.workers < 0:
            raise ConfigError(
                f"workers ({self.workers}) must be >= 0 (0 = auto)"
            )
        if self.parallel_leaf_threshold < 1:
            raise ConfigError(
                f"parallel_leaf_threshold "
                f"({self.parallel_leaf_threshold}) must be >= 1"
            )
        if self.max_prepared_schemas < 0:
            raise ConfigError(
                f"max_prepared_schemas ({self.max_prepared_schemas}) "
                "must be >= 0 (0 = unbounded)"
            )
        if self.segment_compaction_threshold < 0:
            raise ConfigError(
                f"segment_compaction_threshold "
                f"({self.segment_compaction_threshold}) must be >= 0 "
                "(0 = never auto-compact)"
            )
        if self.serving_sessions < 0:
            raise ConfigError(
                f"serving_sessions ({self.serving_sessions}) must be "
                ">= 0 (0 = one per CPU core)"
            )
        if self.serving_queue_depth < 1:
            raise ConfigError(
                f"serving_queue_depth ({self.serving_queue_depth}) "
                "must be >= 1"
            )
        if self.serving_timeout_s < 0:
            raise ConfigError(
                f"serving_timeout_s ({self.serving_timeout_s}) must be "
                ">= 0 (0 = no deadline)"
            )
        if self.serving_compaction_backoff_s < 0:
            raise ConfigError(
                f"serving_compaction_backoff_s "
                f"({self.serving_compaction_backoff_s}) must be >= 0 "
                "(0 = no compaction retries)"
            )
        if self.serving_retry_after_s < 0:
            raise ConfigError(
                f"serving_retry_after_s ({self.serving_retry_after_s}) "
                "must be >= 0 (0 = no Retry-After header)"
            )
        if self.serving_retry_after_seed is not None and not isinstance(
            self.serving_retry_after_seed, int
        ):
            raise ConfigError(
                f"serving_retry_after_seed "
                f"({self.serving_retry_after_seed!r}) must be an int or "
                "None (None = OS entropy)"
            )
        if self.slow_request_ms < 0:
            raise ConfigError(
                f"slow_request_ms ({self.slow_request_ms}) must be >= 0 "
                "(0 = slow-request log disabled)"
            )
        total = sum(self.token_type_weights.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"token_type_weights must sum to 1 (got {total:.6f})"
            )
        if any(w < 0 for w in self.token_type_weights.values()):
            raise ConfigError("token_type_weights must be non-negative")

    def replace(self, **changes) -> "CupidConfig":
        """Return a validated copy with ``changes`` applied."""
        updated = replace(self, **changes)
        updated.validate()
        return updated

    def as_table(self) -> Mapping[str, float]:
        """The Table 1 parameters as an ordered name→value mapping."""
        return {
            "thns": self.thns,
            "thhigh": self.thhigh,
            "thlow": self.thlow,
            "cinc": self.cinc,
            "cdec": self.cdec,
            "thaccept": self.thaccept,
            "wstruct": self.wstruct,
            "wstruct_leaf": self.wstruct_leaf,
        }


DEFAULT_CONFIG = CupidConfig()
DEFAULT_CONFIG.validate()
