"""Blocked (tiled) similarity store for very large schemas.

:class:`~repro.structure.dense.DenseSimilarityStore` materializes three
full ``n_s×n_t`` matrices (ssim, lsim, wsim) at construction — 24 bytes
per leaf pair before the first comparison runs. ROADMAP flags that as
the blocker for the 10⁴-leaf regime: at 10,000 leaves a side the flat
planes alone are 2.4 GB.

:class:`BlockedSimilarityStore` stores the same similarity plane as a
grid of fixed-size **tiles** (``config.block_size`` a side, default
:data:`DEFAULT_BLOCK_SIZE`) with three per-tile states:

* **virtual** — nothing allocated. Every cell reads as its pure
  *initial* value: ssim is the clamped type-compatibility (+ key
  affinity) of the leaf classes, lsim is gathered from the linguistic
  table (the kernel's profile matrix when factored, the sparse dict
  otherwise), and wsim is recomputed as ``wl·ssim + (1−wl)·lsim`` — the
  exact expression the flat store used to *fill* its wsim plane, so the
  bits are identical.
* **overlay** — a small dict of written cells over the virtual base.
  Scattered single-cell updates (the leaf-pair cinc/cdec adjustments of
  sparse strong-link workloads) land here without allocating the tile.
* **solid** — paired ``block_size²`` ``array('d')`` tiles of ssim and
  (cached) wsim, allocated when a bulk scale actually changes the
  tile's cells or an overlay outgrows :attr:`_overlay_limit`. lsim is
  never stored (it stays gathered from the linguistic tables), so even
  a fully solid plane costs two thirds of the flat store — and reads
  over solid tiles are plain array loads, keeping dense context-heavy
  workloads at flat-store speed.

Writes that do not change a cell's value (``clamp(s·factor) == s``,
e.g. scaling zero-compatibility cells) leave tiles virtual — that is
what keeps dissimilar-pair workloads, where almost nothing crosses the
context thresholds, at near-zero allocation.

Every value is produced by exactly the scalar expressions the flat
store uses (same operand order, same clamping; the numpy tile paths
apply the same IEEE-754 double operations element-wise), so the two
stores are **bit-identical** — asserted cell-by-cell by
``tests/test_blocked_store.py`` and end-to-end by the fuzz-parity
sweep in ``tests/test_fuzz_parity.py``.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.linguistic.kernel import FactoredLsimTable
from repro.structure.dense import (
    DenseSimilarityStore,
    _np,
    iter_lsim_cells,
    leaf_base_ssim,
)
from repro.structure.parallel import (
    ShardContext,
    min_parallel_cells,
    stripe_owned_subtrees,
    stripe_plan,
)
from repro.tree.schema_tree import SchemaTreeNode

#: Tile edge length used when ``config.block_size`` is 0 ("auto").
#: 64×64 tiles (32 KiB of ssim) keep the tile directory negligible up
#: to 10⁴ leaves a side (≈25k tiles) while staying fine-grained enough
#: that sparse workloads skip most of the plane.
DEFAULT_BLOCK_SIZE = 64


def resolve_block_size(requested: int) -> int:
    """Map ``config.block_size`` to a concrete tile edge (0 = auto)."""
    return requested if requested > 0 else DEFAULT_BLOCK_SIZE


class BlockedSimilarityStore(DenseSimilarityStore):
    """Tile-backed drop-in for :class:`DenseSimilarityStore`.

    All inherited bookkeeping (per-node leaf-index caches, frontier
    caches, dirty-set crossing stamps) is reused unchanged; only the
    matrix storage and the accessors that touch it are replaced.
    """

    #: The flat store's 2048-cell vectorization floor reflects the cost
    #: of numpy dispatch vs direct ``array('d')`` indexing. Here the
    #: scalar alternative pays a tile lookup per cell while the numpy
    #: path is a handful of slice copies / gathers per tile, so
    #: vectorization wins much earlier (measured on the scalability
    #: bench: region ops at >= 128 cells).
    _VECTOR_MIN_CELLS = 128

    def _build_matrices(self, lsim_table) -> None:
        n_s, n_t = self._n_s, self._n_t
        block = resolve_block_size(self._config.block_size)
        self._B = block
        self._tiles_s = -(-n_s // block) if n_s else 0
        self._tiles_t = -(-n_t // block) if n_t else 0
        n_tiles = self._tiles_s * self._tiles_t
        #: Solid ssim tiles (``block²`` doubles, row-major, edge tiles
        #: padded with never-read zeros) and their numpy views.
        self._tiles: List[Optional[array]] = [None] * n_tiles
        self._tiles_np: List[Optional[object]] = [None] * n_tiles
        #: Companion wsim tiles, allocated with their ssim tile and
        #: maintained by every write (the same ``wl·s + (1−wl)·l``
        #: refresh the flat store applies), so reads and strong-link
        #: scans over solid tiles are single array loads. Virtual and
        #: overlay cells recompute wsim on the fly instead.
        self._wtiles: List[Optional[array]] = [None] * n_tiles
        self._wtiles_np: List[Optional[object]] = [None] * n_tiles
        #: Per-tile sparse overlays: local offset -> written ssim.
        self._overlays: List[Optional[Dict[int, float]]] = [None] * n_tiles
        #: Tiles that served at least one read or write.
        self._touched = bytearray(n_tiles)
        #: Overlay size beyond which a tile solidifies (dict entries
        #: cost ~4x an array cell; an eighth of the tile is the
        #: break-even neighborhood).
        self._overlay_limit = max(8, (block * block) // 8)

        # Per-axis lookup tables so the hot cell path is pure list
        # indexing (no division): tile row/col, local offsets.
        self._tr = [i // block for i in range(n_s)]
        self._tc = [j // block for j in range(n_t)]
        self._offr = [(i % block) * block for i in range(n_s)]
        self._offc = [j % block for j in range(n_t)]

        self._build_base_classes()
        self._build_lsim_plan(lsim_table)
        if self._parallel_workers > 1 and n_s and n_t:
            self._attach_shards()
        self._np_ready = False
        #: Bound-locals fast path for single-cell wsim (the main
        #: TreeMatch loop reads every leaf pair through it; closing
        #: over the stable containers skips ~a dozen attribute loads
        #: per call).
        self._cell_wsim = self._make_cell_wsim()

    # ------------------------------------------------------------------
    # Parallel plumbing: per-worker stripe replicas + op log
    # ------------------------------------------------------------------

    def _attach_shards(self) -> None:
        """Give each worker a stripe replica built from the same
        base-class / lsim tables this store gathers from. The main
        store stays the authority (TreeMatch reads every pair's wsim
        here); plane mutations are logged and flushed to the owning
        workers before each sharded scan (owner-merge)."""
        spec = {
            "n_s": self._n_s,
            "n_t": self._n_t,
            "block": self._B,
            "wl": self._wl,
            "om": self._om,
            "backend": self.backend,
            "base": self._base.tobytes(),
            "n_col_classes": self._n_col_classes,
            "row_base": self._row_base,
            "col_class": self._col_class,
            "factored": self._factored,
        }
        if self._factored:
            spec["p_s"] = self._p_s
            spec["p_t"] = self._p_t
            spec["profile_values"] = self._profile_values.tobytes()
            spec["row_prof_base"] = self._row_prof_base
            spec["col_prof"] = self._col_prof
        else:
            spec["lsim_cells"] = self._lsim_cells
        shards = ShardContext(
            self._parallel_workers,
            stripe_plan(self._n_s, self._B, self._parallel_workers),
            min_parallel_cells(self._config),
            self._use_numpy,
        )
        shards.attach_blocked(spec)
        shards.register_finalizer(self)
        self._shards = shards

    @staticmethod
    def _entry_spec(entry):
        """Picklable row/column description of a node-index entry for
        the op log: a (lo, hi) range when contiguous, the id list
        otherwise."""
        if entry.lo is not None:
            return (entry.lo, entry.hi)
        return list(entry.ids)

    # ------------------------------------------------------------------
    # Initial-value tables (what virtual cells read as)
    # ------------------------------------------------------------------

    def _build_base_classes(self) -> None:
        """Per-leaf (data type, key-ness) classes + their base ssim.

        The base table holds exactly the value the flat store writes
        into every never-updated ssim cell — both layouts call the
        shared :func:`repro.structure.dense.leaf_base_ssim`, so the
        expression cannot drift.
        """
        config = self._config
        compat = self._compat

        s_class_index: Dict[Tuple, int] = {}
        s_props: List[Tuple] = []
        row_class: List[int] = []
        for leaf in self._s_leaves:
            key = (leaf.data_type, leaf.element.is_key)
            class_id = s_class_index.get(key)
            if class_id is None:
                class_id = s_class_index[key] = len(s_props)
                s_props.append(key)
            row_class.append(class_id)
        t_class_index: Dict[Tuple, int] = {}
        t_props: List[Tuple] = []
        col_class: List[int] = []
        for leaf in self._t_leaves:
            key = (leaf.data_type, leaf.element.is_key)
            class_id = t_class_index.get(key)
            if class_id is None:
                class_id = t_class_index[key] = len(t_props)
                t_props.append(key)
            col_class.append(class_id)

        n_cc = len(t_props)
        base = array("d", bytes(8 * max(1, len(s_props) * n_cc)))
        pos = 0
        for dt1, k1 in s_props:
            for dt2, k2 in t_props:
                base[pos] = leaf_base_ssim(config, compat, dt1, k1, dt2, k2)
                pos += 1
        self._base = base
        self._n_col_classes = n_cc
        self._col_class = col_class
        #: Premultiplied row offsets into the base table.
        self._row_base = [c * n_cc for c in row_class]
        self._row_class = row_class

    def _build_lsim_plan(self, lsim_table) -> None:
        """Choose how lsim cells are gathered.

        Factored tables (the kernel's default output) are read straight
        off the profile matrix the kernel already allocated — the
        blocked store adds only the two per-leaf profile index arrays.
        Anything else is scattered once into a flat-position dict (and
        per-tile entry lists for the vectorized region reads), exactly
        the entries the flat store scattered into its lsim plane.
        """
        self._factored = (
            isinstance(lsim_table, FactoredLsimTable)
            and lsim_table.factored_live
        )
        if self._factored:
            p_t = lsim_table.n_target_profiles
            s_profile_of = lsim_table.profile_of_source
            t_profile_of = lsim_table.profile_of_target
            self._p_s = lsim_table.n_source_profiles
            self._p_t = p_t
            self._profile_values = lsim_table.profile_values
            # -1 marks unprofiled elements (lsim 0 against everything —
            # the pairs the dict form omits); row entries premultiplied.
            self._row_prof_base = [
                p * p_t if p is not None else -1
                for p in (
                    s_profile_of.get(leaf.element.element_id)
                    for leaf in self._s_leaves
                )
            ]
            self._col_prof = [
                p if p is not None else -1
                for p in (
                    t_profile_of.get(leaf.element.element_id)
                    for leaf in self._t_leaves
                )
            ]
            self._lsim_cells: Dict[int, float] = {}
            self._tile_lsim: List[Optional[List[Tuple[int, float]]]] = []
            return
        n_t = self._n_t
        cells: Dict[int, float] = {}
        tile_entries: List[Optional[List[Tuple[int, float]]]] = (
            [None] * (self._tiles_s * self._tiles_t)
        )
        tr, tc = self._tr, self._tc
        offr, offc = self._offr, self._offc
        tiles_t = self._tiles_t
        for i, j, value in iter_lsim_cells(
            lsim_table, self._s_leaves, self._t_leaves
        ):
            cells[i * n_t + j] = value
            tid = tr[i] * tiles_t + tc[j]
            entries = tile_entries[tid]
            if entries is None:
                entries = tile_entries[tid] = []
            entries.append((offr[i] + offc[j], value))
        self._lsim_cells = cells
        self._tile_lsim = tile_entries

    # ------------------------------------------------------------------
    # numpy side tables (built lazily on first vectorized region op)
    # ------------------------------------------------------------------

    def _ensure_np(self) -> None:
        if self._np_ready:
            return
        self._base_np = _np.frombuffer(
            self._base, dtype=_np.float64
        ).reshape(-1, max(1, self._n_col_classes))
        self._row_class_np = _np.asarray(self._row_class, dtype=_np.intp)
        self._col_class_np = _np.asarray(self._col_class, dtype=_np.intp)
        if self._factored:
            p_s, p_t = self._p_s, self._p_t
            padded = _np.zeros((p_s + 1, p_t + 1))
            if p_s and p_t:
                padded[:p_s, :p_t] = _np.frombuffer(
                    self._profile_values, dtype=_np.float64
                ).reshape(p_s, p_t)
            # Sentinel rows/cols (the -1 entries) index the padded zero
            # border, mirroring the flat store's sentinel gather.
            self._padded_np = padded
            self._row_prof_np = _np.asarray(
                [
                    rb // p_t if rb >= 0 else p_s
                    for rb in self._row_prof_base
                ]
                if p_t
                else [0] * self._n_s,
                dtype=_np.intp,
            )
            self._col_prof_np = _np.asarray(
                [c if c >= 0 else p_t for c in self._col_prof],
                dtype=_np.intp,
            )
        self._np_ready = True

    # ------------------------------------------------------------------
    # Tile lifecycle
    # ------------------------------------------------------------------

    def _solidify(self, tid: int) -> array:
        """Materialize a tile pair: base ssim + overlay, then the
        companion wsim tile via the flat store's fill expression."""
        block = self._B
        tile = array("d", bytes(8 * block * block))
        wtile = array("d", bytes(8 * block * block))
        trow, tcol = divmod(tid, self._tiles_t)
        i0 = trow * block
        i1 = min(i0 + block, self._n_s)
        j0 = tcol * block
        j1 = min(j0 + block, self._n_t)
        use_np = (
            self._use_numpy
            and (i1 - i0) * (j1 - j0) >= self._VECTOR_MIN_CELLS
        )
        if use_np:
            self._ensure_np()
            view = _np.frombuffer(tile, dtype=_np.float64).reshape(
                block, block
            )
            view[: i1 - i0, : j1 - j0] = self._base_np[
                self._row_class_np[i0:i1, None],
                self._col_class_np[None, j0:j1],
            ]
        else:
            base = self._base
            row_base = self._row_base
            col_class = self._col_class
            for i in range(i0, i1):
                rb = row_base[i]
                off = (i - i0) * block - j0
                for j in range(j0, j1):
                    tile[off + j] = base[rb + col_class[j]]
        overlay = self._overlays[tid]
        if overlay:
            for off, value in overlay.items():
                tile[off] = value
        if use_np:
            wview = _np.frombuffer(wtile, dtype=_np.float64).reshape(
                block, block
            )
            wview[: i1 - i0, : j1 - j0] = (
                self._wl * view[: i1 - i0, : j1 - j0]
                + self._om * self._region_lsim_np(i0, i1, j0, j1)
            )
        else:
            wl, om = self._wl, self._om
            cell_lsim = self._cell_lsim
            for i in range(i0, i1):
                off = (i - i0) * block - j0
                for j in range(j0, j1):
                    wtile[off + j] = (
                        wl * tile[off + j] + om * cell_lsim(i, j)
                    )
        self._overlays[tid] = None
        self._tiles[tid] = tile
        self._wtiles[tid] = wtile
        self._touched[tid] = 1
        return tile

    def _tile_np(self, tid: int):
        view = self._tiles_np[tid]
        if view is None:
            view = self._tiles_np[tid] = _np.frombuffer(
                self._tiles[tid], dtype=_np.float64
            ).reshape(self._B, self._B)
        return view

    def _wtile_np(self, tid: int):
        view = self._wtiles_np[tid]
        if view is None:
            view = self._wtiles_np[tid] = _np.frombuffer(
                self._wtiles[tid], dtype=_np.float64
            ).reshape(self._B, self._B)
        return view

    # ------------------------------------------------------------------
    # Scalar cell reads
    # ------------------------------------------------------------------

    def _make_cell_wsim(self):
        """Closure computing one leaf cell's wsim = wl·s + (1−wl)·l.

        All referenced containers are identity-stable for the store's
        lifetime (solidification replaces list *elements*), so the
        closure always sees current state.
        """
        tr, tc = self._tr, self._tc
        offr, offc = self._offr, self._offc
        wtiles, overlays = self._wtiles, self._overlays
        touched = self._touched
        tiles_t = self._tiles_t
        base, row_base, col_class = (
            self._base, self._row_base, self._col_class,
        )
        wl, om = self._wl, self._om
        if self._factored:
            row_prof_base = self._row_prof_base
            col_prof = self._col_prof
            pvalues = self._profile_values

            def cell_wsim(i: int, j: int) -> float:
                tid = tr[i] * tiles_t + tc[j]
                wtile = wtiles[tid]
                if wtile is not None:
                    return wtile[offr[i] + offc[j]]
                touched[tid] = 1
                overlay = overlays[tid]
                sv = (
                    overlay.get(offr[i] + offc[j])
                    if overlay is not None
                    else None
                )
                if sv is None:
                    sv = base[row_base[i] + col_class[j]]
                rb = row_prof_base[i]
                if rb < 0:
                    lv = 0.0
                else:
                    c = col_prof[j]
                    lv = 0.0 if c < 0 else pvalues[rb + c]
                return wl * sv + om * lv

        else:
            lcells = self._lsim_cells
            n_t = self._n_t

            def cell_wsim(i: int, j: int) -> float:
                tid = tr[i] * tiles_t + tc[j]
                wtile = wtiles[tid]
                if wtile is not None:
                    return wtile[offr[i] + offc[j]]
                touched[tid] = 1
                overlay = overlays[tid]
                sv = (
                    overlay.get(offr[i] + offc[j])
                    if overlay is not None
                    else None
                )
                if sv is None:
                    sv = base[row_base[i] + col_class[j]]
                return wl * sv + om * lcells.get(i * n_t + j, 0.0)

        return cell_wsim

    def _cell_ssim(self, i: int, j: int) -> float:
        tid = self._tr[i] * self._tiles_t + self._tc[j]
        if not self._touched[tid]:
            self._touched[tid] = 1
        tile = self._tiles[tid]
        off = self._offr[i] + self._offc[j]
        if tile is not None:
            return tile[off]
        overlay = self._overlays[tid]
        if overlay is not None:
            value = overlay.get(off)
            if value is not None:
                return value
        return self._base[self._row_base[i] + self._col_class[j]]

    def _cell_lsim(self, i: int, j: int) -> float:
        if self._factored:
            rb = self._row_prof_base[i]
            if rb < 0:
                return 0.0
            c = self._col_prof[j]
            if c < 0:
                return 0.0
            return self._profile_values[rb + c]
        return self._lsim_cells.get(i * self._n_t + j, 0.0)

    # ------------------------------------------------------------------
    # SimilarityStore accessors (leaf fast path, inherited fallback)
    # ------------------------------------------------------------------

    def ssim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        i = self._s_index.get(s.node_id)
        j = self._t_index.get(t.node_id) if i is not None else None
        if i is None or j is None:
            return super(DenseSimilarityStore, self).ssim(s, t)
        return self._cell_ssim(i, j)

    def lsim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        i = self._s_index.get(s.node_id)
        j = self._t_index.get(t.node_id) if i is not None else None
        if i is None or j is None:
            return super(DenseSimilarityStore, self).lsim(s, t)
        return self._cell_lsim(i, j)

    def wsim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        i = self._s_index.get(s.node_id)
        j = self._t_index.get(t.node_id) if i is not None else None
        if i is None or j is None:
            return super(DenseSimilarityStore, self).wsim(s, t)
        # The flat store *stores* wl·ssim + (1−wl)·lsim and reads it
        # back; recomputing the identical expression from identical
        # operands yields the identical double.
        return self._cell_wsim(i, j)

    def set_ssim(
        self, s: SchemaTreeNode, t: SchemaTreeNode, value: float
    ) -> None:
        i = self._s_index.get(s.node_id)
        j = self._t_index.get(t.node_id) if i is not None else None
        if i is None or j is None:
            super(DenseSimilarityStore, self).set_ssim(s, t, value)
            return
        clamped = min(1.0, max(0.0, value))
        if self._shards is not None:
            # The replica re-derives the unchanged-value skip itself,
            # so logging unconditionally keeps the states convergent.
            self._shards.record_op(("set", i, j, clamped))
        self._write_cell(i, j, clamped)

    def _write_cell(self, i: int, j: int, clamped: float) -> None:
        """Write one ssim cell, maintaining wsim + crossing stamps."""
        tid = self._tr[i] * self._tiles_t + self._tc[j]
        self._touched[tid] = 1
        off = self._offr[i] + self._offc[j]
        tile = self._tiles[tid]
        lsim = self._cell_lsim(i, j)
        new_wsim = self._wl * clamped + self._om * lsim
        if tile is not None:
            old = tile[off]
            tile[off] = clamped
            self._wtiles[tid][off] = new_wsim
        else:
            overlay = self._overlays[tid]
            old = overlay.get(off) if overlay is not None else None
            if old is None:
                old = self._base[self._row_base[i] + self._col_class[j]]
            if clamped == old:
                # Value (hence wsim, hence strong-link status) is
                # unchanged bit-for-bit: the flat store would rewrite
                # the same bytes; the blocked store stays lazy.
                return
            if overlay is None:
                overlay = self._overlays[tid] = {}
            overlay[off] = clamped
            if len(overlay) > self._overlay_limit:
                self._solidify(tid)
        old_wsim = self._wl * old + self._om * lsim
        threshold = self._thaccept
        if (old_wsim >= threshold) != (new_wsim >= threshold):
            self.mutation_seq += 1
            self._row_seq[i] = self._col_seq[j] = self.mutation_seq

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def scale_block(
        self, s: SchemaTreeNode, t: SchemaTreeNode, factor: float
    ) -> Optional[int]:
        s_entry = self._node_indices(s, source_side=True)
        if s_entry is None:
            return None
        t_entry = self._node_indices(t, source_side=False)
        if t_entry is None:
            return None
        cells = len(s_entry.ids) * len(t_entry.ids)
        if factor == 1.0:
            # clamp(v·1.0) == v for every in-range double: the flat
            # store rewrites identical bytes and never stamps.
            return cells
        if self._shards is not None:
            # Owner-merge: main applies the scale below as usual (it
            # stays the read authority), and the op is replayed on the
            # owning stripe replicas before their next sharded scan.
            self._shards.record_op(
                (
                    "scale",
                    self._entry_spec(s_entry),
                    self._entry_spec(t_entry),
                    factor,
                )
            )
        if cells == 1:
            # Leaf-pair context adjustments dominate the op count on
            # large schemas; skip the block scaffolding for them.
            i, j = s_entry.ids[0], t_entry.ids[0]
            old = self._cell_ssim(i, j)
            value = old * factor
            if value > 1.0:
                value = 1.0
            elif value < 0.0:
                value = 0.0
            if value != old:
                self._write_cell(i, j, value)
            return 1

        if (
            self._use_numpy
            and cells >= self._VECTOR_MIN_CELLS
            and s_entry.lo is not None
            and t_entry.lo is not None
        ):
            self._scale_region_np(
                s_entry, t_entry, s_entry.lo, s_entry.hi,
                t_entry.lo, t_entry.hi, factor,
            )
            return cells

        s_ids = (
            range(s_entry.lo, s_entry.hi)
            if s_entry.lo is not None
            else s_entry.ids
        )
        t_ids = (
            range(t_entry.lo, t_entry.hi)
            if t_entry.lo is not None
            else t_entry.ids
        )
        tr, tc = self._tr, self._tc
        offr, offc = self._offr, self._offc
        tiles, overlays = self._tiles, self._overlays
        wtiles = self._wtiles
        touched = self._touched
        tiles_t = self._tiles_t
        base, row_base, col_class = self._base, self._row_base, self._col_class
        wl, om = self._wl, self._om
        threshold = self._thaccept
        overlay_limit = self._overlay_limit
        rows_crossed = [False] * len(s_ids)
        cols_crossed = [False] * len(t_ids)
        any_crossed = False
        for xi, x in enumerate(s_ids):
            trow = tr[x] * tiles_t
            off_row = offr[x]
            rb = row_base[x]
            for yi, y in enumerate(t_ids):
                tid = trow + tc[y]
                touched[tid] = 1
                off = off_row + offc[y]
                tile = tiles[tid]
                if tile is not None:
                    old = tile[off]
                else:
                    overlay = overlays[tid]
                    old = overlay.get(off) if overlay is not None else None
                    if old is None:
                        old = base[rb + col_class[y]]
                value = old * factor
                if value > 1.0:
                    value = 1.0
                elif value < 0.0:
                    value = 0.0
                if value == old:
                    # Unchanged bits: the flat store rewrites the same
                    # bytes and refreshes wsim to the same double.
                    continue
                lsim = self._cell_lsim(x, y)
                new_wsim = wl * value + om * lsim
                if tile is not None:
                    tile[off] = value
                    wtiles[tid][off] = new_wsim
                else:
                    overlay = overlays[tid]
                    if overlay is None:
                        overlay = overlays[tid] = {}
                    overlay[off] = value
                    if len(overlay) > overlay_limit:
                        self._solidify(tid)
                old_wsim = wl * old + om * lsim
                if (old_wsim >= threshold) != (new_wsim >= threshold):
                    any_crossed = True
                    rows_crossed[xi] = True
                    cols_crossed[yi] = True
        if any_crossed:
            self._mark_crossed(s_entry, t_entry, rows_crossed, cols_crossed)
        return cells

    def _scale_region_np(
        self, s_entry, t_entry, i0, i1, j0, j1, factor
    ) -> None:
        """Vectorized contiguous-region scale (same ops as the flat
        store's numpy path, assembled from tiles)."""
        self._ensure_np()
        s_old = self._region_ssim_np(i0, i1, j0, j1)
        lsim = self._region_lsim_np(i0, i1, j0, j1)
        threshold = self._thaccept
        old_strong = (self._wl * s_old + self._om * lsim) >= threshold
        s_new = s_old * factor
        _np.clip(s_new, 0.0, 1.0, out=s_new)
        w_new = self._wl * s_new + self._om * lsim
        changed = s_new != s_old
        if changed.any():
            self._writeback_region_np(
                i0, i1, j0, j1, s_new, w_new, changed
            )
        crossed = old_strong != (w_new >= threshold)
        if crossed.any():
            self._mark_crossed(
                s_entry,
                t_entry,
                crossed.any(axis=1).tolist(),
                crossed.any(axis=0).tolist(),
            )

    def _region_tiles(self, i0, i1, j0, j1):
        """(tid, global rect, local rect) for tiles overlapping a
        contiguous region."""
        block = self._B
        tiles_t = self._tiles_t
        for trow in range(i0 // block, (i1 - 1) // block + 1):
            a0 = max(i0, trow * block)
            a1 = min(i1, trow * block + block)
            for tcol in range(j0 // block, (j1 - 1) // block + 1):
                b0 = max(j0, tcol * block)
                b1 = min(j1, tcol * block + block)
                yield (
                    trow * tiles_t + tcol,
                    a0, a1, b0, b1,
                    a0 - trow * block, b0 - tcol * block,
                )

    def _region_ssim_np(self, i0, i1, j0, j1):
        """Assemble the region's current ssim into a scratch matrix."""
        scratch = _np.empty((i1 - i0, j1 - j0))
        base_np = self._base_np
        row_cls = self._row_class_np
        col_cls = self._col_class_np
        touched = self._touched
        for tid, a0, a1, b0, b1, la, lb in self._region_tiles(
            i0, i1, j0, j1
        ):
            touched[tid] = 1
            dest = scratch[a0 - i0:a1 - i0, b0 - j0:b1 - j0]
            if self._tiles[tid] is not None:
                view = self._tile_np(tid)
                dest[...] = view[la:la + (a1 - a0), lb:lb + (b1 - b0)]
                continue
            dest[...] = base_np[
                row_cls[a0:a1, None], col_cls[None, b0:b1]
            ]
            overlay = self._overlays[tid]
            if overlay:
                block = self._B
                base_row = tid // self._tiles_t * block
                base_col = tid % self._tiles_t * block
                for off, value in overlay.items():
                    gi = base_row + off // block
                    gj = base_col + off % block
                    if i0 <= gi < i1 and j0 <= gj < j1:
                        scratch[gi - i0, gj - j0] = value
        return scratch

    def _region_wsim_np(self, i0, i1, j0, j1):
        """The region's current wsim: solid tiles by slice copy, lazy
        tiles by the fill expression (identical bits either way)."""
        scratch = _np.empty((i1 - i0, j1 - j0))
        base_np = self._base_np
        row_cls = self._row_class_np
        col_cls = self._col_class_np
        touched = self._touched
        wl, om = self._wl, self._om
        for tid, a0, a1, b0, b1, la, lb in self._region_tiles(
            i0, i1, j0, j1
        ):
            touched[tid] = 1
            dest = scratch[a0 - i0:a1 - i0, b0 - j0:b1 - j0]
            if self._wtiles[tid] is not None:
                view = self._wtile_np(tid)
                dest[...] = view[la:la + (a1 - a0), lb:lb + (b1 - b0)]
                continue
            s_rect = base_np[row_cls[a0:a1, None], col_cls[None, b0:b1]]
            overlay = self._overlays[tid]
            if overlay:
                s_rect = s_rect.copy()
                block = self._B
                base_row = tid // self._tiles_t * block
                base_col = tid % self._tiles_t * block
                for off, value in overlay.items():
                    gi = base_row + off // block
                    gj = base_col + off % block
                    if a0 <= gi < a1 and b0 <= gj < b1:
                        s_rect[gi - a0, gj - b0] = value
            dest[...] = wl * s_rect + om * self._region_lsim_np(
                a0, a1, b0, b1
            )
        return scratch

    def _region_lsim_np(self, i0, i1, j0, j1):
        """The region's lsim values (factored gather or dict scatter)."""
        if self._factored:
            return self._padded_np[
                self._row_prof_np[i0:i1, None],
                self._col_prof_np[None, j0:j1],
            ]
        scratch = _np.zeros((i1 - i0, j1 - j0))
        block = self._B
        tiles_t = self._tiles_t
        for tid, a0, a1, b0, b1, _la, _lb in self._region_tiles(
            i0, i1, j0, j1
        ):
            entries = self._tile_lsim[tid] if self._tile_lsim else None
            if not entries:
                continue
            base_row = tid // tiles_t * block
            base_col = tid % tiles_t * block
            for off, value in entries:
                gi = base_row + off // block
                gj = base_col + off % block
                if i0 <= gi < i1 and j0 <= gj < j1:
                    scratch[gi - i0, gj - j0] = value
        return scratch

    def _writeback_region_np(
        self, i0, i1, j0, j1, values, wsims, changed
    ):
        """Store scaled ssim + refreshed wsim back, solidifying only
        tiles whose cells actually changed."""
        for tid, a0, a1, b0, b1, la, lb in self._region_tiles(
            i0, i1, j0, j1
        ):
            rows = slice(a0 - i0, a1 - i0)
            cols = slice(b0 - j0, b1 - j0)
            if self._tiles[tid] is None and not changed[rows, cols].any():
                continue
            if self._tiles[tid] is None:
                self._solidify(tid)
            local_rows = slice(la, la + (a1 - a0))
            local_cols = slice(lb, lb + (b1 - b0))
            self._tile_np(tid)[local_rows, local_cols] = values[rows, cols]
            self._wtile_np(tid)[local_rows, local_cols] = wsims[rows, cols]

    # ------------------------------------------------------------------
    # Structural fraction (Section 6 strong-link scans)
    # ------------------------------------------------------------------

    def structural_fraction(
        self,
        s: SchemaTreeNode,
        t: SchemaTreeNode,
        s_frontier: Dict[SchemaTreeNode, bool],
        t_frontier: Dict[SchemaTreeNode, bool],
        thaccept: float,
        discount: bool,
    ) -> Optional[float]:
        s_entry = self._frontier_indices(s, s_frontier, source_side=True)
        if s_entry is None:
            return None
        t_entry = self._frontier_indices(t, t_frontier, source_side=False)
        if t_entry is None:
            return None
        s_ids, t_ids = s_entry.ids, t_entry.ids
        if not s_ids or not t_ids:
            return 0.0

        shards = self._shards
        if (
            shards is not None
            and len(s_ids) * len(t_ids) >= shards.min_cells
            and s_entry.lo is not None
            and t_entry.lo is not None
        ):
            row_bits, col_bits = shards.scan(
                s_entry.lo, s_entry.hi, t_entry.lo, t_entry.hi, thaccept
            )
            # Serial scans mark every tile of the region touched; the
            # sharded scan logically covers the same region.
            touched = self._touched
            tiles_t = self._tiles_t
            tr, tc = self._tr, self._tc
            for trow in range(tr[s_entry.lo], tr[s_entry.hi - 1] + 1):
                row_off = trow * tiles_t
                for tcol in range(tc[t_entry.lo], tc[t_entry.hi - 1] + 1):
                    touched[row_off + tcol] = 1
            return self._fraction_from_bits(
                s_entry, t_entry, row_bits, col_bits, discount
            )

        if (
            self._use_numpy
            and len(s_ids) * len(t_ids) >= self._VECTOR_MIN_CELLS
            and s_entry.lo is not None
            and t_entry.lo is not None
        ):
            self._ensure_np()
            strong = self._region_wsim_np(
                s_entry.lo, s_entry.hi, t_entry.lo, t_entry.hi
            ) >= thaccept
            s_has = strong.any(axis=1)
            t_has = strong.any(axis=0)
            s_linked = int(_np.count_nonzero(s_has))
            t_linked = int(_np.count_nonzero(t_has))
            if discount:
                s_total = s_linked + int(
                    _np.count_nonzero(s_entry.numpy_required() & ~s_has)
                )
                t_total = t_linked + int(
                    _np.count_nonzero(t_entry.numpy_required() & ~t_has)
                )
            else:
                s_total = len(s_ids)
                t_total = len(t_ids)
            denominator = s_total + t_total
            if denominator == 0:
                return 0.0
            return (s_linked + t_linked) / denominator

        tr, tc = self._tr, self._tc
        tiles_t = self._tiles_t
        s_required = s_entry.required
        t_required = t_entry.required
        cell_wsim = self._cell_wsim

        # Mark the whole scanned region touched up front (the early
        # break would otherwise undercount tiles the scan logically
        # covers).
        lo_i, hi_i = s_ids[0], s_ids[-1]
        lo_j, hi_j = t_ids[0], t_ids[-1]
        touched = self._touched
        for trow in range(tr[lo_i], tr[hi_i] + 1):
            row_off = trow * tiles_t
            for tcol in range(tc[lo_j], tc[hi_j] + 1):
                touched[row_off + tcol] = 1

        s_linked = 0
        s_total = 0
        for k, x in enumerate(s_ids):
            has_link = False
            for y in t_ids:
                if cell_wsim(x, y) >= thaccept:
                    has_link = True
                    break
            if has_link:
                s_linked += 1
                s_total += 1
            elif s_required[k] or not discount:
                s_total += 1
        t_linked = 0
        t_total = 0
        for k, y in enumerate(t_ids):
            has_link = False
            for x in s_ids:
                if cell_wsim(x, y) >= thaccept:
                    has_link = True
                    break
            if has_link:
                t_linked += 1
                t_total += 1
            elif t_required[k] or not discount:
                t_total += 1

        denominator = s_total + t_total
        if denominator == 0:
            return 0.0
        return (s_linked + t_linked) / denominator

    # ------------------------------------------------------------------
    # Occupancy / reporting
    # ------------------------------------------------------------------

    @property
    def block_size(self) -> int:
        return self._B

    def tiles_total(self) -> int:
        return self._tiles_s * self._tiles_t

    def tiles_allocated(self) -> int:
        return sum(1 for tile in self._tiles if tile is not None)

    def tiles_touched(self) -> int:
        return sum(self._touched)

    def overlay_cells(self) -> int:
        return sum(
            len(overlay) for overlay in self._overlays if overlay
        )

    def store_bytes(self) -> int:
        """Bytes held by the similarity plane representation.

        Solid tiles at 16 bytes/cell (ssim + cached wsim), overlay
        entries at ~32 bytes (key + value + dict slot), plus the O(n)
        side tables (leaf class/profile indices) and the class-pair
        base table. The kernel's profile value matrix is shared with
        the linguistic phase, not owned here, and is excluded (the
        flat store does not count it either).
        """
        block2 = self._B * self._B
        solid = sum(16 * block2 for tile in self._tiles if tile is not None)
        overlay = 32 * self.overlay_cells()
        side = 8 * (4 * self._n_s + 4 * self._n_t) + 8 * len(self._base)
        if not self._factored:
            side += 32 * len(self._lsim_cells)
            side += sum(
                16 * len(entries)
                for entries in self._tile_lsim
                if entries
            )
        return solid + overlay + side

    def subtree_alignment(self) -> Dict[str, int]:
        """Tile↔subtree alignment of the node windows consulted so far.

        Of the contiguous ``[pre_lo, pre_hi)`` subtree windows this
        match addressed (the lazily filled per-node index caches), how
        many start AND end on tile-grid boundaries — those subtrees'
        block operations touch no partial tile, the property the
        out-of-core direction needs for subtree-granular eviction.
        Rows and columns are counted against their own grid edges.
        """
        windows = 0
        aligned = 0
        block = self._B
        for cache, edge in (
            (self._leaf_idx_s, self._n_s),
            (self._leaf_idx_t, self._n_t),
        ):
            for entry in cache.values():
                if entry is None or entry.lo is None:
                    continue
                windows += 1
                if entry.lo % block == 0 and (
                    entry.hi % block == 0 or entry.hi == edge
                ):
                    aligned += 1
        return {
            "subtree_windows": windows,
            "subtree_windows_tile_aligned": aligned,
        }

    def describe(self) -> Dict[str, object]:
        facts = {
            "store": "blocked",
            "backend": self.backend,
            "matrix_shape": (self._n_s, self._n_t),
            "leaf_cells": self._n_s * self._n_t,
            "block_size": self._B,
            "tiles_total": self.tiles_total(),
            "tiles_allocated": self.tiles_allocated(),
            "tiles_touched": self.tiles_touched(),
            "overlay_cells": self.overlay_cells(),
            "store_bytes": self.store_bytes(),
        }
        facts.update(self.subtree_alignment())
        if self._shards is not None:
            facts.update(self._shards.counters)
            facts["stripe_owned_subtrees"] = stripe_owned_subtrees(
                self._source_root, self._shards.stripes
            )
        return facts
