"""Structure matching (paper Section 6): the TreeMatch algorithm."""

from repro.structure.similarity import SimilarityStore
from repro.structure.treematch import TreeMatch, TreeMatchResult

__all__ = ["SimilarityStore", "TreeMatch", "TreeMatchResult"]
