"""Structure matching (paper Section 6): the TreeMatch algorithm."""

from repro.structure.blocked import (
    DEFAULT_BLOCK_SIZE,
    BlockedSimilarityStore,
)
from repro.structure.dense import DenseSimilarityStore, numpy_available
from repro.structure.similarity import SimilarityStore
from repro.structure.treematch import TreeMatch, TreeMatchResult

__all__ = [
    "BlockedSimilarityStore",
    "DEFAULT_BLOCK_SIZE",
    "DenseSimilarityStore",
    "SimilarityStore",
    "TreeMatch",
    "TreeMatchResult",
    "numpy_available",
]
