"""Similarity bookkeeping for TreeMatch.

Holds the mutable structural similarities (``ssim``) between schema
tree nodes, exposes linguistic similarity (``lsim``, fixed during
structure matching — "the linguistic similarity, however, remains
unchanged") through the node's underlying element, and combines them
into the weighted similarity ``wsim``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import CupidConfig
from repro.linguistic.matcher import LsimTable
from repro.model.datatypes import TypeCompatibilityTable
from repro.tree.schema_tree import SchemaTreeNode


class SimilarityStore:
    """ssim/lsim/wsim accessors over tree-node pairs.

    ``ssim`` defaults to the data-type compatibility of the two nodes —
    this realizes both the paper's leaf initialization ("the structural
    similarity of two leaves is initialized to the type compatibility of
    their corresponding data types", value in [0, 0.5]) and a sensible
    default for never-updated pairs.
    """

    def __init__(
        self,
        lsim_table: LsimTable,
        config: CupidConfig,
        compat: TypeCompatibilityTable,
    ) -> None:
        self._lsim_table = lsim_table
        self._config = config
        self._compat = compat
        self._ssim: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # ssim
    # ------------------------------------------------------------------

    def ssim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        value = self._ssim.get((s.node_id, t.node_id))
        if value is not None:
            return value
        base = self._compat.compatibility(s.data_type, t.data_type)
        if self._config.use_key_affinity:
            # "It exploits keys" (Section 4): key-ness is a constraint
            # signal — matching keys reinforce, mismatched key-ness
            # weakens the starting compatibility.
            s_key = s.element.is_key
            t_key = t.element.is_key
            if s_key and t_key:
                base += self._config.key_affinity_bonus
            elif s_key != t_key:
                base -= self._config.key_affinity_bonus
        return min(0.5, max(0.0, base))

    def set_ssim(self, s: SchemaTreeNode, t: SchemaTreeNode, value: float) -> None:
        self._ssim[(s.node_id, t.node_id)] = min(1.0, max(0.0, value))

    def scale_ssim(self, s: SchemaTreeNode, t: SchemaTreeNode, factor: float) -> None:
        """Multiply ssim(s, t) by ``factor``, clamped to [0, 1].

        "increase the structural similarity (ssim) of each pair of
        leaves ... by the factor cinc (ssim not to exceed 1)".
        """
        self.set_ssim(s, t, self.ssim(s, t) * factor)

    # ------------------------------------------------------------------
    # lsim / wsim
    # ------------------------------------------------------------------

    def lsim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        return self._lsim_table.get(s.element, t.element)

    def wsim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        """``wsim = wstruct × ssim + (1 − wstruct) × lsim``.

        ``wstruct`` is "typically ... lower for leaf-leaf pairs than
        for non-leaf pairs" (Table 1), so the leaf weight applies when
        both nodes are leaves.
        """
        if s.is_leaf and t.is_leaf:
            wstruct = self._config.wstruct_leaf
        else:
            wstruct = self._config.wstruct
        return wstruct * self.ssim(s, t) + (1.0 - wstruct) * self.lsim(s, t)

    def explicit_pairs(self) -> int:
        """Number of pairs with explicitly stored ssim (for tests)."""
        return len(self._ssim)
