"""The TreeMatch algorithm (Figure 3 of the paper).

Post-order double loop over the two schema trees. For every node pair:

1. compute structural similarity ``ssim`` — for a pair of leaves this
   is the (mutable) stored value; otherwise it is the fraction of
   leaves in the two subtrees that have a *strong link* (a leaf pair
   whose ``wsim`` exceeds ``thaccept``) into the other subtree;
2. compute ``wsim = wstruct·ssim + (1−wstruct)·lsim``;
3. if ``wsim > thhigh``, multiply the ssim of every leaf pair in the
   two subtrees by ``cinc`` (leaves of highly similar ancestors occur
   in similar contexts); if ``wsim < thlow``, multiply by ``cdec``.

The post-order traversals ensure both subtrees are fully compared
before their roots are, giving the mutually recursive flavor the paper
describes. Node pairs with very different subtree leaf counts are
skipped ("say within a factor of 2"), which both prunes work and avoids
dragging down leaf similarities with hopeless comparisons.

Interval-encoding invariants (:meth:`SchemaTree.reindex` stamps them;
``REPRO_INTERVAL_ORACLE=1`` cross-checks them on every reindex): every
node carries ``pre`` (first-visit pre-order position — the traversal
that defines the dense leaf-layout row/column order), ``post``
(position in :meth:`SchemaTree.postorder`, the order both loops here
iterate), ``level`` (primary-parent depth), and ``subtree_size``
(distinct descendant count, self included). For *pure* nodes — no
proper descendant has extra parents — the subtree's leaves are the
contiguous window ``[leaf_lo, leaf_hi)`` of the layout order, required
flags are the per-leaf comparison ``opt_level(leaf) <= level``, and
depth-pruned frontiers are shrunken-window scans that skip a stand-in's
``subtree_size`` span; impure DAG nodes carry ascending gather tuples
and answer through reference DFS. This loop consults those answers
once per node pair (frontier dicts are memoized per pass below, since
the tree cannot mutate mid-run); the stores translate the same windows
into ``[pre_lo, pre_hi)`` block addresses for their scans and
multiplies. Nothing here invalidates anything: a structural mutation
unindexes the touched ancestry at mutation time and the accessors fall
back to DFS until the next reindex.

Parallel invariant: when the store shards a strong-link scan or a
cinc/cdec block multiply across worker processes
(:mod:`repro.structure.parallel`), every such operation is a
**barrier** — the store blocks until all shards return and merges
their threshold-crossing row/col bits into the dirty stamps *before*
this loop observes any result. TreeMatch therefore never sees a
partially applied operation, the visit-sequence numbers recorded per
non-leaf pair keep their serial meaning, and the incremental
:meth:`TreeMatch.recompute_wsim` skip logic stays exact under any
worker count (the fuzz suite's ``workers=2`` variants hold this
bit-identically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.linguistic.matcher import LsimTable
from repro.obs import trace
from repro.model.datatypes import TypeCompatibilityTable, default_compatibility_table
from repro.structure.blocked import BlockedSimilarityStore
from repro.structure.dense import DenseSimilarityStore
from repro.structure.similarity import SimilarityStore
from repro.tree.schema_tree import SchemaTree, SchemaTreeNode


@dataclass
class TreeMatchResult:
    """Everything TreeMatch computed.

    ``wsim`` holds the weighted similarity of every compared node pair
    (as of the moment it was compared — the paper's Section 7 notes
    non-leaf values may be stale after later leaf updates, hence
    :meth:`recompute_wsim` for mapping generation's second pass).
    """

    source_tree: SchemaTree
    target_tree: SchemaTree
    sims: SimilarityStore
    wsim: Dict[Tuple[int, int], float]
    compared_pairs: int = 0
    pruned_pairs: int = 0
    #: Leaf-pair ssim cells touched by cinc/cdec context adjustments.
    scaled_pairs: int = 0
    engine: str = "reference"
    #: Dense engine only: store mutation sequence observed when each
    #: non-leaf pair's wsim was computed (before the pair's own
    #: cinc/cdec event). :meth:`TreeMatch.recompute_wsim` compares it
    #: against the rows/columns dirtied later to skip clean pairs.
    visit_seq: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Second-pass (recompute_wsim) dirty-set counters: non-leaf pairs
    #: considered, recomputed (dirty), and skipped as provably clean.
    recompute_pairs: int = 0
    recompute_dirty: int = 0
    recompute_skipped: int = 0
    #: Pairs the incremental skip had to stand down for because their
    #: depth-pruned frontier contains non-leaf stand-ins the leaf
    #: dirty stamps cannot vouch for (always recomputed). Explains a
    #: low skip rate under ``leaf_prune_depth > 0`` in ``--stats``.
    recompute_standdown: int = 0

    def wsim_of(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        return self.wsim.get((s.node_id, t.node_id), 0.0)


class TreeMatch:
    """Runs the Figure 3 algorithm over two schema trees."""

    def __init__(
        self,
        config: Optional[CupidConfig] = None,
        compat: Optional[TypeCompatibilityTable] = None,
    ) -> None:
        self.config = config or DEFAULT_CONFIG
        self.config.validate()
        self.compat = compat or default_compatibility_table()
        # Per-pass memo of effective-leaf dicts (node_id -> frontier):
        # consulted once per node *pair*, stable within a pass because
        # the tree cannot mutate mid-run. Reset by run() and
        # recompute_wsim() so a mutation between passes (e.g. join-view
        # augmentation after a match) can never serve stale flags.
        self._frontier_memo: Dict[int, Dict[SchemaTreeNode, bool]] = {}

    # ------------------------------------------------------------------
    # Main algorithm
    # ------------------------------------------------------------------

    def run(
        self,
        source_tree: SchemaTree,
        target_tree: SchemaTree,
        lsim_table: LsimTable,
        source_layout=None,
        target_layout=None,
    ) -> TreeMatchResult:
        """Run TreeMatch. ``source_layout`` / ``target_layout`` are
        optional prebuilt :class:`~repro.structure.dense.LeafLayout`
        objects (per-schema artifacts a
        :class:`~repro.pipeline.prepared.PreparedSchema` caches);
        omitted, the dense store derives them itself."""
        pass_span = trace.start_span("treematch.run")
        if pass_span is None:
            return self._run_pass(
                source_tree, target_tree, lsim_table,
                source_layout, target_layout,
            )
        try:
            result = self._run_pass(
                source_tree, target_tree, lsim_table,
                source_layout, target_layout,
            )
        finally:
            trace.end_span(pass_span)
        pass_span.annotate(
            engine=result.engine,
            compared_pairs=result.compared_pairs,
            pruned_pairs=result.pruned_pairs,
            scaled_pairs=result.scaled_pairs,
        )
        return result

    def _run_pass(
        self,
        source_tree: SchemaTree,
        target_tree: SchemaTree,
        lsim_table: LsimTable,
        source_layout=None,
        target_layout=None,
    ) -> TreeMatchResult:
        config = self.config
        self._frontier_memo = {}
        sims = self._make_store(
            source_tree, target_tree, lsim_table, source_layout, target_layout
        )
        result = TreeMatchResult(
            source_tree=source_tree,
            target_tree=target_tree,
            sims=sims,
            wsim={},
            engine=config.engine,
        )

        # Leaf ssim initialization is implicit: both stores default to
        # data-type compatibility, exactly the first loop of Figure 3
        # (the dense store materializes those defaults up front).

        source_order = source_tree.postorder()
        # Subtree leaf counts are consulted once per node pair; hoist
        # them out of the double loop (they are stable during a run).
        target_order = [(t, t.leaf_count()) for t in target_tree.postorder()]
        source_root = source_tree.root
        target_root = target_tree.root
        thhigh, thlow = config.thhigh, config.thlow
        cinc, cdec = config.cinc, config.cdec
        # Dense engine: remember the store state each non-leaf pair saw
        # so the second pass can prove most of them clean and skip the
        # strong-link rescan.
        track_seq = isinstance(sims, DenseSimilarityStore)
        visit_seq = result.visit_seq

        for s in source_order:
            s_leaf_count = s.leaf_count()
            s_is_leaf = s.is_leaf
            for t, t_leaf_count in target_order:
                if self._pruned(
                    s, t, s_leaf_count, t_leaf_count, source_root, target_root
                ):
                    result.pruned_pairs += 1
                    continue
                both_leaves = s_is_leaf and t.is_leaf
                if not both_leaves:
                    sims.set_ssim(
                        s, t, self._structural_similarity(s, t, sims)
                    )
                    if track_seq:
                        # Snapshot BEFORE this pair's own scaling: a
                        # pair that scales its own block must be
                        # recomputed (the paper's pass-2 rationale).
                        visit_seq[(s.node_id, t.node_id)] = (
                            sims.mutation_seq
                        )
                # For a leaf pair the structural similarity IS the
                # stored ssim, which wsim() reads directly — no
                # separate probe needed.
                wsim = sims.wsim(s, t)
                result.wsim[(s.node_id, t.node_id)] = wsim
                result.compared_pairs += 1

                if wsim > thhigh:
                    result.scaled_pairs += self._scale_leaf_pairs(
                        s, t, sims, cinc
                    )
                elif wsim < thlow:
                    result.scaled_pairs += self._scale_leaf_pairs(
                        s, t, sims, cdec
                    )
        return result

    def _make_store(
        self,
        source_tree: SchemaTree,
        target_tree: SchemaTree,
        lsim_table: LsimTable,
        source_layout=None,
        target_layout=None,
    ) -> SimilarityStore:
        if self.config.engine == "dense":
            store = self.config.store
            if store == "auto":
                # Pick per pair by leaf count: flat's up-front planes
                # win on small schemas, the blocked store's lazy tiles
                # win once a side crosses the threshold (and dominate
                # on dissimilar repository-search pairs, whose planes
                # stay virtual). Prepared layouts carry the counts for
                # free; without them the roots' cached leaf tuples do.
                n_s = (
                    len(source_layout.leaves)
                    if source_layout is not None
                    else len(source_tree.root.leaves())
                )
                n_t = (
                    len(target_layout.leaves)
                    if target_layout is not None
                    else len(target_tree.root.leaves())
                )
                threshold = self.config.auto_store_leaf_threshold
                store = (
                    "blocked" if max(n_s, n_t) >= threshold else "flat"
                )
            store_cls = (
                BlockedSimilarityStore
                if store == "blocked"
                else DenseSimilarityStore
            )
            return store_cls(
                lsim_table,
                self.config,
                self.compat,
                source_tree,
                target_tree,
                source_layout,
                target_layout,
            )
        return SimilarityStore(lsim_table, self.config, self.compat)

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    def _pruned(
        self,
        s: SchemaTreeNode,
        t: SchemaTreeNode,
        s_leaf_count: int,
        t_leaf_count: int,
        source_root: SchemaTreeNode,
        target_root: SchemaTreeNode,
    ) -> bool:
        """Leaf-count ratio pruning (Section 6). Roots always compare."""
        if not self.config.prune_by_leaf_count:
            return False
        if s is source_root and t is target_root:
            return False
        ratio = self.config.leaf_count_ratio
        return (
            s_leaf_count > ratio * t_leaf_count
            or t_leaf_count > ratio * s_leaf_count
        )

    def _effective_leaves(
        self, node: SchemaTreeNode
    ) -> Dict[SchemaTreeNode, bool]:
        """Leaves of ``node``'s subtree with their *required* flags.

        With ``leaf_prune_depth`` k > 0 (Section 8.4 "Pruning leaves"),
        the frontier is cut at depth k: nodes at that depth stand in
        for their subtrees. Both shapes come straight from the
        interval encoding (:meth:`SchemaTreeNode.pruned_frontier` /
        :meth:`~SchemaTreeNode.leaves_with_required_flag`) and are
        memoized for the duration of one pass — they are consulted
        once per node *pair* but cannot change mid-run.
        """
        memo = self._frontier_memo
        key = node.node_id
        frontier = memo.get(key)
        if frontier is None:
            frontier = node.pruned_frontier(self.config.leaf_prune_depth)
            memo[key] = frontier
        return frontier

    def _structural_similarity(
        self, s: SchemaTreeNode, t: SchemaTreeNode, sims: SimilarityStore
    ) -> float:
        """ssim(s, t) per Section 6 (+ optional-leaf discount of §8.4).

        For a leaf pair, the stored (possibly already incremented)
        value. Otherwise, the fraction of leaves in the union of both
        subtrees with at least one strong link to the other side.
        """
        if s.is_leaf and t.is_leaf:
            return sims.ssim(s, t)

        s_leaves = self._effective_leaves(s)
        t_leaves = self._effective_leaves(t)
        if not s_leaves or not t_leaves:
            return 0.0

        thaccept = self.config.thaccept
        discount = self.config.discount_optional_leaves

        if isinstance(sims, DenseSimilarityStore):
            fraction = sims.structural_fraction(
                s, t, s_leaves, t_leaves, thaccept, discount
            )
            if fraction is not None:
                return fraction
            # Frontier includes depth-pruned stand-in nodes outside the
            # leaf index: fall through to the per-pair reference loop
            # (sims.wsim handles those nodes via the dict path).

        s_linked = 0
        s_total = 0
        for x, x_required in s_leaves.items():
            has_link = any(
                sims.wsim(x, y) >= thaccept for y in t_leaves
            )
            if has_link:
                s_linked += 1
                s_total += 1
            elif x_required or not discount:
                s_total += 1
            # Optional leaf without a strong link: excluded from both
            # numerator and denominator (§8.4) when discounting is on.

        t_linked = 0
        t_total = 0
        for y, y_required in t_leaves.items():
            has_link = any(
                sims.wsim(x, y) >= thaccept for x in s_leaves
            )
            if has_link:
                t_linked += 1
                t_total += 1
            elif y_required or not discount:
                t_total += 1

        denominator = s_total + t_total
        if denominator == 0:
            return 0.0
        return (s_linked + t_linked) / denominator

    def _scale_leaf_pairs(
        self,
        s: SchemaTreeNode,
        t: SchemaTreeNode,
        sims: SimilarityStore,
        factor: float,
    ) -> int:
        """Multiply ssim of every (leaf of s, leaf of t) pair by factor.

        Returns the number of leaf pairs touched (for run statistics).
        """
        if isinstance(sims, DenseSimilarityStore):
            scaled = sims.scale_block(s, t, factor)
            if scaled is not None:
                return scaled
        count = 0
        for x in s.leaves():
            for y in t.leaves():
                sims.scale_ssim(x, y, factor)
                count += 1
        return count

    # ------------------------------------------------------------------
    # Second pass (Section 7)
    # ------------------------------------------------------------------

    def recompute_wsim(
        self, result: TreeMatchResult, force_full: bool = False
    ) -> Dict[Tuple[int, int], float]:
        """Second post-order pass re-computing non-leaf similarities.

        "To generate non-leaf mappings, we need a second post-order
        traversal ... because the updating of leaf similarities during
        tree-match may affect the structural similarity of non-leaf
        nodes after they were first calculated." No threshold updates
        happen here; leaf pair values pass through unchanged.

        With the dense engine the pass is **incremental**: a non-leaf
        pair whose leaf block provably did not change after its first-
        pass visit (:meth:`DenseSimilarityStore.block_dirty_since`
        against the recorded ``visit_seq``) would recompute to exactly
        its stored value — the strong-link fraction reads only those
        unchanged cells — so the rescan is skipped and the stored
        value re-read. ``force_full=True`` disables the skip (the
        parity tests use it as the oracle for the incremental path).
        The reference engine always rescans: it is the correctness
        oracle.
        """
        pass_span = trace.start_span("treematch.recompute")
        if pass_span is None:
            return self._recompute_pass(result, force_full)
        try:
            refreshed = self._recompute_pass(result, force_full)
        finally:
            trace.end_span(pass_span)
        pass_span.annotate(
            recompute_pairs=result.recompute_pairs,
            recompute_dirty=result.recompute_dirty,
            recompute_skipped=result.recompute_skipped,
            recompute_standdown=result.recompute_standdown,
            force_full=force_full,
        )
        return refreshed

    def _recompute_pass(
        self, result: TreeMatchResult, force_full: bool = False
    ) -> Dict[Tuple[int, int], float]:
        sims = result.sims
        self._frontier_memo = {}
        refreshed: Dict[Tuple[int, int], float] = {}
        source_root = result.source_tree.root
        target_root = result.target_tree.root
        target_order = [
            (t, t.leaf_count()) for t in result.target_tree.postorder()
        ]
        incremental = not force_full and isinstance(
            sims, DenseSimilarityStore
        )
        # Depth-pruned frontiers can contain non-leaf stand-ins whose
        # dict wsims are stale at a pair's first-pass visit even when
        # its leaf block never changes afterwards — leaf-cell
        # cleanliness alone cannot prove those pairs fresh. The skip is
        # therefore decided per pair: allowed exactly when both
        # frontiers are fully real-leaf-indexed (then the frontier IS
        # the node's complete leaf set and the crossing stamps cover
        # every cell the fraction reads); stand-in pairs stand down and
        # are counted in ``recompute_standdown``.
        pruned_frontiers = incremental and self.config.leaf_prune_depth > 0
        if pruned_frontiers:
            # Frontier-indexed-ness is per node, not per pair: decide
            # each target once up front and each source once per row.
            t_frontier_ok = [
                sims.frontier_leaf_indexed(
                    t, self._effective_leaves(t), source_side=False
                )
                for t, _ in target_order
            ]
        visit_seq = result.visit_seq
        result.recompute_pairs = 0
        result.recompute_dirty = 0
        result.recompute_skipped = 0
        result.recompute_standdown = 0
        for s in result.source_tree.postorder():
            s_leaf_count = s.leaf_count()
            s_is_leaf = s.is_leaf
            if pruned_frontiers:
                s_frontier_ok = sims.frontier_leaf_indexed(
                    s, self._effective_leaves(s), source_side=True
                )
            for t_index, (t, t_leaf_count) in enumerate(target_order):
                if self._pruned(
                    s, t, s_leaf_count, t_leaf_count, source_root, target_root
                ):
                    continue
                key = (s.node_id, t.node_id)
                if not (s_is_leaf and t.is_leaf):
                    result.recompute_pairs += 1
                    allowed = incremental
                    if pruned_frontiers:
                        allowed = s_frontier_ok and t_frontier_ok[t_index]
                        if not allowed:
                            result.recompute_standdown += 1
                    if allowed:
                        seq = visit_seq.get(key)
                        if (
                            seq is not None
                            and sims.block_dirty_since(s, t, seq) is False
                        ):
                            # Clean block: the stored ssim/wsim already
                            # equal what a rescan would produce.
                            result.recompute_skipped += 1
                            refreshed[key] = sims.wsim(s, t)
                            continue
                    result.recompute_dirty += 1
                    sims.set_ssim(
                        s, t, self._structural_similarity(s, t, sims)
                    )
                refreshed[key] = sims.wsim(s, t)
        result.wsim = refreshed
        return refreshed
