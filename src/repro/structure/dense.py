"""Dense-index similarity engine for TreeMatch.

The reference :class:`~repro.structure.similarity.SimilarityStore`
routes every leaf-pair probe through dict-of-int-tuple lookups and
recomputes ``wsim`` from scratch on each read. On the scalability
workloads (``benchmarks/bench_scalability.py``) those probes dominate:
TreeMatch's strong-link counting touches every (leaf, leaf) cell once
per ancestor pair.

This module replaces the hot path with contiguous-array arithmetic:

* each tree's leaves get **dense integer ids** (their position in the
  root's deduplicated leaf tuple);
* ``ssim``, ``lsim`` and ``wsim`` over leaf pairs live in flat
  row-major ``array('d')`` matrices (pure stdlib); when numpy is
  importable they are transparently upgraded with zero-copy
  ``np.frombuffer`` views over the same buffers (mirroring the
  optional-numpy pattern of :mod:`repro.mapping.assignment`), used for
  blocks large enough that vectorization beats per-call overhead;
* per-node leaf ids come from the tree's **interval encoding**
  (:meth:`~repro.tree.schema_tree.SchemaTree.reindex`): a pure
  subtree's leaves are the contiguous ``[pre_lo, pre_hi)`` window of
  the layout order, so the strong-link count of a node pair becomes a
  row/column max scan over the wsim matrix and the ``cinc``/``cdec``
  context adjustment becomes a clamped block multiply over that
  window (impure DAG nodes gather through their ascending id tuples);
* ``wsim`` cells are refreshed only for the block whose ``ssim`` was
  scaled, never matrix-wide.

Every matrix cell is computed with exactly the scalar expressions the
reference store uses (same operand order, same clamping), and the
vectorized paths apply the same IEEE-754 double operations
element-wise, so the two engines produce **bit-identical**
similarities — the parity tests in ``tests/test_engine_parity.py``
assert exact equality.

Non-leaf pairs (and, under ``leaf_prune_depth > 0``, frontier nodes
that stand in for pruned subtrees) fall back to the inherited
dict-based bookkeeping, which is exact by construction.
"""

from __future__ import annotations

import weakref
from array import array
from typing import Dict, List, Optional, Tuple

from repro.config import CupidConfig
from repro.exceptions import ConfigError
from repro.linguistic.kernel import FactoredLsimTable
from repro.linguistic.matcher import LsimTable
from repro.model.datatypes import TypeCompatibilityTable
from repro.structure.parallel import (
    FLAT_STRIPE_ALIGN,
    ShardContext,
    effective_workers,
    min_parallel_cells,
    stripe_owned_subtrees,
    stripe_plan,
)
from repro.structure.similarity import SimilarityStore
from repro.tree.schema_tree import SchemaTree, SchemaTreeNode

try:  # optional acceleration, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via dense_backend="stdlib"
    _np = None


def numpy_available() -> bool:
    return _np is not None


#: Shared-memory segments whose close() was deferred: the store's
#: finalizer runs while the plane views are still being deallocated,
#: so the mapping can't close yet. Swept on the next allocation and at
#: interpreter exit, when the exports are long gone.
_PENDING_SHM_CLOSE: List = []


def _sweep_pending_shm() -> None:
    remaining = []
    for shm in _PENDING_SHM_CLOSE:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - still exported
            remaining.append(shm)
    _PENDING_SHM_CLOSE[:] = remaining


def _release_shared_planes(shm, view) -> None:
    """Finalizer for shared flat planes: free the segment name first
    (unlink works regardless of live buffer exports), then close the
    local mapping — deferred to the sweep list when plane views being
    deallocated alongside the store still export the buffer."""
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover
        pass
    try:
        view.release()
        shm.close()
    except BufferError:
        _PENDING_SHM_CLOSE.append(shm)


def resolve_backend(requested: str) -> str:
    """Map a ``dense_backend`` config value to a concrete backend."""
    if requested == "stdlib":
        return "stdlib"
    if requested == "numpy":
        if _np is None:
            raise ConfigError(
                "dense_backend='numpy' requested but numpy is not importable"
            )
        return "numpy"
    return "numpy" if _np is not None else "stdlib"


def leaf_base_ssim(
    config: CupidConfig, compat: TypeCompatibilityTable,
    dt1, key1: bool, dt2, key2: bool,
) -> float:
    """Initial ssim of a leaf class pair: clamped type compatibility
    plus the key-affinity adjustment.

    The single source of the expression ``SimilarityStore.ssim`` uses
    for never-updated pairs — the flat store's matrix fill and the
    blocked store's base-class table both call it, so the two layouts
    cannot drift apart bit-wise.
    """
    base = compat.compatibility(dt1, dt2)
    if config.use_key_affinity:
        if key1 and key2:
            base += config.key_affinity_bonus
        elif key1 != key2:
            base -= config.key_affinity_bonus
    return min(0.5, max(0.0, base))


def iter_lsim_cells(lsim_table: LsimTable, s_leaves, t_leaves):
    """Yield ``(i, j, value)`` for every leaf-matrix cell the (sparse)
    lsim table assigns.

    Shared-type expansion can map one element to several tree leaves,
    hence the per-element index lists. Both store layouts scatter
    through this iterator (the flat store into its lsim plane, the
    blocked store into its cell dict + per-tile entry lists), keeping
    the entry sets identical by construction.
    """
    s_rows: Dict[str, List[int]] = {}
    for i, leaf in enumerate(s_leaves):
        s_rows.setdefault(leaf.element.element_id, []).append(i)
    t_cols: Dict[str, List[int]] = {}
    for j, leaf in enumerate(t_leaves):
        t_cols.setdefault(leaf.element.element_id, []).append(j)
    for (id1, id2), value in lsim_table.items():
        rows = s_rows.get(id1)
        if not rows:
            continue
        cols = t_cols.get(id2)
        if not cols:
            continue
        for i in rows:
            for j in cols:
                yield i, j, value


class LeafLayout:
    """Dense leaf-index layout of one tree side.

    Maps the root's deduplicated leaf tuple to consecutive integer ids.
    Computing it is cheap, but it is pure per-tree work: a
    :class:`~repro.pipeline.prepared.PreparedSchema` captures it once so
    batch sessions skip re-deriving it for every match. Must be rebuilt
    if the tree is structurally mutated afterwards.
    """

    __slots__ = ("leaves", "index")

    def __init__(self, tree: SchemaTree) -> None:
        self.leaves: Tuple[SchemaTreeNode, ...] = tuple(tree.root.leaves())
        self.index: Dict[int, int] = {
            leaf.node_id: i for i, leaf in enumerate(self.leaves)
        }


class _NodeIndex:
    """Cached dense leaf ids of one node's subtree (one tree side).

    ``ids`` is ascending; ``lo``/``hi`` are set when the ids form the
    contiguous range [lo, hi) — true for every plain-tree node, since
    DFS leaf collection numbers a subtree's leaves consecutively; only
    DAG join views produce gather lists. ``np_ids`` is materialized
    lazily the first time a vectorized gather needs it.
    """

    __slots__ = ("ids", "lo", "hi", "np_ids")

    def __init__(self, ids: List[int]) -> None:
        self.ids = ids
        if ids and ids[-1] - ids[0] + 1 == len(ids):
            self.lo: Optional[int] = ids[0]
            self.hi: Optional[int] = ids[-1] + 1
        else:
            self.lo = None
            self.hi = None
        self.np_ids = None

    def numpy_ids(self):
        if self.np_ids is None:
            self.np_ids = _np.asarray(self.ids, dtype=_np.intp)
        return self.np_ids


class _FrontierIndex(_NodeIndex):
    """A node's effective-leaf frontier: ids + aligned required flags."""

    __slots__ = ("required", "np_required")

    def __init__(self, ids: List[int], required: List[bool]) -> None:
        super().__init__(ids)
        self.required = required
        self.np_required = None

    def numpy_required(self):
        if self.np_required is None:
            self.np_required = _np.asarray(self.required, dtype=bool)
        return self.np_required


class DenseSimilarityStore(SimilarityStore):
    """Matrix-backed ssim/lsim/wsim over the two trees' leaf pairs.

    Drop-in replacement for :class:`SimilarityStore`: all scalar
    accessors keep working for arbitrary node pairs; leaf-pair accesses
    are redirected to the matrices. TreeMatch additionally uses the
    bulk operations :meth:`scale_block` and :meth:`structural_fraction`.
    """

    #: Blocks with at least this many cells use the numpy views; below
    #: it, the flat-array scalar loop wins (numpy's per-call dispatch
    #: costs more than the arithmetic it saves on small blocks).
    _VECTOR_MIN_CELLS = 2048

    def __init__(
        self,
        lsim_table: LsimTable,
        config: CupidConfig,
        compat: TypeCompatibilityTable,
        source_tree: SchemaTree,
        target_tree: SchemaTree,
        source_layout: Optional[LeafLayout] = None,
        target_layout: Optional[LeafLayout] = None,
    ) -> None:
        super().__init__(lsim_table, config, compat)
        self.backend = resolve_backend(config.dense_backend)
        self._use_numpy = self.backend == "numpy"
        if source_layout is None:
            source_layout = LeafLayout(source_tree)
        if target_layout is None:
            target_layout = LeafLayout(target_tree)
        self._s_leaves = source_layout.leaves
        self._t_leaves = target_layout.leaves
        # Row-side tree root, kept for stripe↔subtree ownership
        # reporting when the plane is sharded (describe()).
        self._source_root = source_tree.root
        self._s_index = source_layout.index
        self._t_index = target_layout.index
        self._n_s = len(self._s_leaves)
        self._n_t = len(self._t_leaves)
        self._wl = config.wstruct_leaf
        self._om = 1.0 - config.wstruct_leaf

        # Per-node caches (node_id -> index or None), filled lazily.
        self._leaf_idx_s: Dict[int, Optional[_NodeIndex]] = {}
        self._leaf_idx_t: Dict[int, Optional[_NodeIndex]] = {}
        self._frontier_s: Dict[int, Optional[_FrontierIndex]] = {}
        self._frontier_t: Dict[int, Optional[_FrontierIndex]] = {}

        # Dirty-set bookkeeping for the incremental second TreeMatch
        # pass. A non-leaf pair's structural similarity reads only the
        # *strong-link status* (wsim >= thaccept) of its leaf cells, so
        # a mutation invalidates earlier-computed pairs only when a
        # cell CROSSES thaccept — cinc/cdec scaling moves many values
        # but flips few statuses. Each crossing event bumps the global
        # sequence and stamps it on the rows/columns containing crossed
        # cells; a pair is provably fresh since sequence S when none of
        # its rows AND none of its columns were stamped after S
        # (conservative: disjoint row/column events can flag a block no
        # cell of which crossed — that costs a recompute, never
        # correctness).
        self.mutation_seq = 0
        self._thaccept = config.thaccept
        self._row_seq: List[int] = [0] * self._n_s
        self._col_seq: List[int] = [0] * self._n_t

        # Tile-sharded parallel execution (repro.structure.parallel):
        # resolved once per store — workers > 1 only when the config
        # asks for it AND the plane reaches the leaf threshold. The
        # store-specific _build_matrices attaches the shard context.
        self._shards: Optional[ShardContext] = None
        self._parallel_workers = effective_workers(
            config, max(self._n_s, self._n_t)
        )

        self._build_matrices(lsim_table)

    # ------------------------------------------------------------------
    # Matrix construction
    # ------------------------------------------------------------------

    def _build_matrices(self, lsim_table: LsimTable) -> None:
        n_s, n_t = self._n_s, self._n_t
        size = n_s * n_t
        planes = (
            self._alloc_shared_planes(size)
            if self._parallel_workers > 1 and size
            else None
        )
        if planes is not None:
            ssim_flat, lsim_flat, wsim_flat = planes
        else:
            ssim_flat = array("d", bytes(8 * size))
            lsim_flat = array("d", bytes(8 * size))

        # Initial leaf ssim = the shared leaf_base_ssim expression,
        # computed once per distinct (type, key-ness) combination
        # instead of once per probe.
        config = self._config
        compat = self._compat
        t_props = [
            (leaf.data_type, leaf.element.is_key) for leaf in self._t_leaves
        ]
        base_cache: Dict[Tuple, float] = {}
        pos = 0
        for s_leaf in self._s_leaves:
            dt1 = s_leaf.data_type
            k1 = s_leaf.element.is_key
            for dt2, k2 in t_props:
                key = (dt1, k1, dt2, k2)
                value = base_cache.get(key)
                if value is None:
                    value = base_cache[key] = leaf_base_ssim(
                        config, compat, dt1, k1, dt2, k2
                    )
                ssim_flat[pos] = value
                pos += 1

        if isinstance(lsim_table, FactoredLsimTable) and lsim_table.factored_live:
            # Kernel-factored table: gather each leaf's profile row
            # instead of materializing the dict form and scattering it.
            self._gather_lsim(lsim_table, lsim_flat)
        else:
            # lsim is sparse: scatter the table into the matrix instead
            # of probing every cell.
            for i, j, value in iter_lsim_cells(
                lsim_table, self._s_leaves, self._t_leaves
            ):
                lsim_flat[i * n_t + j] = value

        if planes is None:
            wsim_flat = array("d", bytes(8 * size))
        self._S = ssim_flat
        self._L = lsim_flat
        self._W = wsim_flat

        if self._use_numpy:
            # Zero-copy views: scalar paths keep using the flat arrays,
            # vectorized paths write through the same memory.
            self._Snp = _np.frombuffer(ssim_flat, dtype=_np.float64).reshape(
                n_s, n_t
            )
            self._Lnp = _np.frombuffer(lsim_flat, dtype=_np.float64).reshape(
                n_s, n_t
            )
            self._Wnp = _np.frombuffer(wsim_flat, dtype=_np.float64).reshape(
                n_s, n_t
            )
            _np.multiply(self._Snp, self._wl, out=self._Wnp)
            self._Wnp += self._om * self._Lnp
        else:
            wl, om = self._wl, self._om
            for i in range(size):
                wsim_flat[i] = wl * ssim_flat[i] + om * lsim_flat[i]

    def _gather_lsim(
        self, factored: FactoredLsimTable, lsim_flat: array
    ) -> None:
        """Fill the leaf lsim matrix by profile-index gather.

        Each leaf maps to its element's profile id; the cell (i, j) is
        a straight copy of the profile matrix cell, so the result is
        bit-identical to scattering the materialized dict. Leaves whose
        element carries no profile (no category membership) keep lsim
        0, exactly the pairs the dict form omits.
        """
        n_s, n_t = self._n_s, self._n_t
        p_s = factored.n_source_profiles
        p_t = factored.n_target_profiles
        s_profile_of = factored.profile_of_source
        t_profile_of = factored.profile_of_target
        # Sentinel p_s / p_t rows (all zero after padding) stand in for
        # unprofiled elements.
        row_profiles = [
            s_profile_of.get(leaf.element.element_id, p_s)
            for leaf in self._s_leaves
        ]
        col_profiles = [
            t_profile_of.get(leaf.element.element_id, p_t)
            for leaf in self._t_leaves
        ]
        if self._use_numpy and n_s * n_t >= self._VECTOR_MIN_CELLS:
            padded = _np.zeros((p_s + 1, p_t + 1))
            if p_s and p_t:
                padded[:p_s, :p_t] = factored.numpy_values()
            gathered = padded[
                _np.asarray(row_profiles, dtype=_np.intp)[:, None],
                _np.asarray(col_profiles, dtype=_np.intp)[None, :],
            ]
            _np.frombuffer(lsim_flat, dtype=_np.float64)[:] = (
                gathered.reshape(-1)
            )
            return
        values = factored.profile_values
        for i, p in enumerate(row_profiles):
            if p == p_s:
                continue
            base = i * n_t
            p_base = p * p_t
            for j, q in enumerate(col_profiles):
                if q == p_t:
                    continue
                value = values[p_base + q]
                if value != 0.0:
                    lsim_flat[base + j] = value

    # ------------------------------------------------------------------
    # Parallel plumbing (repro.structure.parallel)
    # ------------------------------------------------------------------

    def _alloc_shared_planes(self, size: int):
        """Place the three flat planes in one shared-memory segment
        and attach the shard context, so workers scan/scale the same
        bytes the scalar accessors read. Returns (S, L, W) as
        zero-filled ``memoryview('d')`` slices — drop-in for the
        ``array('d')`` planes (same indexing, same buffer protocol)."""
        from multiprocessing import shared_memory

        _sweep_pending_shm()
        shm = shared_memory.SharedMemory(create=True, size=3 * 8 * size)
        view = memoryview(shm.buf).cast("d")
        planes = (
            view[0:size],
            view[size:2 * size],
            view[2 * size:3 * size],
        )
        weakref.finalize(self, _release_shared_planes, shm, view)
        shards = ShardContext(
            self._parallel_workers,
            stripe_plan(self._n_s, FLAT_STRIPE_ALIGN, self._parallel_workers),
            min_parallel_cells(self._config),
            self._use_numpy,
        )
        shards.attach_flat(
            shm.name, self._n_s, self._n_t, self._wl, self._om, self.backend
        )
        shards.register_finalizer(self)
        self._shards = shards
        return planes

    def _fraction_from_bits(
        self, s_entry, t_entry, s_has, t_has, discount: bool
    ) -> float:
        """Strong-link fraction from merged per-row/per-column link
        bits — the same integer counting both serial paths perform, so
        the sharded scan's result is exact."""
        s_required = s_entry.required
        t_required = t_entry.required
        s_linked = 0
        s_total = 0
        for k, flag in enumerate(s_has):
            if flag:
                s_linked += 1
                s_total += 1
            elif s_required[k] or not discount:
                s_total += 1
        t_linked = 0
        t_total = 0
        for k, flag in enumerate(t_has):
            if flag:
                t_linked += 1
                t_total += 1
            elif t_required[k] or not discount:
                t_total += 1
        denominator = s_total + t_total
        if denominator == 0:
            return 0.0
        return (s_linked + t_linked) / denominator

    # ------------------------------------------------------------------
    # Scalar accessors (leaf-pair fast path, inherited fallback)
    # ------------------------------------------------------------------

    def _leaf_pos(
        self, s: SchemaTreeNode, t: SchemaTreeNode
    ) -> Optional[int]:
        """Flat wsim-matrix offset of a leaf pair, or None."""
        i = self._s_index.get(s.node_id)
        if i is None:
            return None
        j = self._t_index.get(t.node_id)
        if j is None:
            return None
        return i * self._n_t + j

    def ssim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        pos = self._leaf_pos(s, t)
        if pos is None:
            return super().ssim(s, t)
        return self._S[pos]

    def set_ssim(
        self, s: SchemaTreeNode, t: SchemaTreeNode, value: float
    ) -> None:
        i = self._s_index.get(s.node_id)
        j = self._t_index.get(t.node_id) if i is not None else None
        if i is None or j is None:
            super().set_ssim(s, t, value)
            return
        pos = i * self._n_t + j
        clamped = min(1.0, max(0.0, value))
        old_wsim = self._W[pos]
        new_wsim = self._wl * clamped + self._om * self._L[pos]
        self._S[pos] = clamped
        self._W[pos] = new_wsim
        threshold = self._thaccept
        if (old_wsim >= threshold) != (new_wsim >= threshold):
            self.mutation_seq += 1
            self._row_seq[i] = self._col_seq[j] = self.mutation_seq

    def lsim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        pos = self._leaf_pos(s, t)
        if pos is None:
            return super().lsim(s, t)
        return self._L[pos]

    def wsim(self, s: SchemaTreeNode, t: SchemaTreeNode) -> float:
        pos = self._leaf_pos(s, t)
        if pos is None:
            return super().wsim(s, t)
        return self._W[pos]

    # ------------------------------------------------------------------
    # Per-node leaf-index caching
    # ------------------------------------------------------------------

    def _node_indices(
        self, node: SchemaTreeNode, source_side: bool
    ) -> Optional[_NodeIndex]:
        """Dense ids of ``node``'s subtree leaves (cached per node).

        When the node's interval encoding was minted from this store's
        layout order (checked by leaf-tuple identity), the ids come
        straight from the encoding: the ``[leaf_lo, leaf_hi)`` window
        for pure subtrees (block ops then address ``[pre_lo, pre_hi)``
        ranges without any sort), or the ascending gather tuple for
        impure DAG nodes. Otherwise — foreign layout, or a tree
        mutated after store construction — each leaf is resolved
        through the index dict; None when one is missing, and callers
        fall back to the scalar path.
        """
        cache = self._leaf_idx_s if source_side else self._leaf_idx_t
        key = node.node_id
        if key in cache:
            return cache[key]
        layout_leaves = self._s_leaves if source_side else self._t_leaves
        enc = node._enc
        if enc is not None and enc.leaves is layout_leaves:
            ids = (
                list(range(node.leaf_lo, node.leaf_hi))
                if node._leaf_ids is None
                else list(node._leaf_ids)
            )
            entry = _NodeIndex(ids)
            cache[key] = entry
            return entry
        index = self._s_index if source_side else self._t_index
        ids: List[int] = []
        for leaf in node.leaves():
            i = index.get(leaf.node_id)
            if i is None:
                cache[key] = None
                return None
            ids.append(i)
        ids.sort()
        entry = _NodeIndex(ids)
        cache[key] = entry
        return entry

    def _frontier_indices(
        self,
        node: SchemaTreeNode,
        frontier: Dict[SchemaTreeNode, bool],
        source_side: bool,
    ) -> Optional[_FrontierIndex]:
        """Dense ids + required flags for a node's effective-leaf
        frontier, aligned on ascending ids; None when the frontier
        contains nodes outside the leaf index (depth-pruned stand-ins).
        """
        cache = self._frontier_s if source_side else self._frontier_t
        key = node.node_id
        if key in cache:
            return cache[key]
        index = self._s_index if source_side else self._t_index
        pairs: List[Tuple[int, bool]] = []
        for leaf, required in frontier.items():
            i = index.get(leaf.node_id)
            if i is None:
                cache[key] = None
                return None
            pairs.append((i, required))
        pairs.sort()
        entry = _FrontierIndex(
            [i for i, _ in pairs], [r for _, r in pairs]
        )
        cache[key] = entry
        return entry

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def scale_block(
        self, s: SchemaTreeNode, t: SchemaTreeNode, factor: float
    ) -> Optional[int]:
        """Multiply ssim of every (leaf of s, leaf of t) pair by
        ``factor`` (clamped to [0, 1]) and refresh exactly that block
        of the wsim matrix. Returns the number of cells scaled, or
        None if the subtrees are not fully leaf-indexed.
        """
        s_entry = self._node_indices(s, source_side=True)
        if s_entry is None:
            return None
        t_entry = self._node_indices(t, source_side=False)
        if t_entry is None:
            return None
        cells = len(s_entry.ids) * len(t_entry.ids)

        shards = self._shards
        if (
            shards is not None
            and cells >= shards.min_cells
            and s_entry.lo is not None
            and t_entry.lo is not None
        ):
            # Workers scale their stripes in place on the shared
            # planes; the merged crossing bits are stamped exactly once
            # here (the barrier), reproducing the serial stamp sequence.
            any_crossed, row_bits, col_bits = shards.scale(
                s_entry.lo, s_entry.hi, t_entry.lo, t_entry.hi,
                factor, self._thaccept,
            )
            if any_crossed:
                self._mark_crossed(
                    s_entry, t_entry, list(row_bits), list(col_bits)
                )
            return cells

        if self._use_numpy and cells >= self._VECTOR_MIN_CELLS:
            threshold = self._thaccept
            if s_entry.lo is not None and t_entry.lo is not None:
                rows = slice(s_entry.lo, s_entry.hi)
                cols = slice(t_entry.lo, t_entry.hi)
                wsim_block = self._Wnp[rows, cols]
                old_strong = wsim_block >= threshold
                block = self._Snp[rows, cols]
                block *= factor
                _np.clip(block, 0.0, 1.0, out=block)
                wsim_block[...] = (
                    self._wl * block + self._om * self._Lnp[rows, cols]
                )
                crossed = old_strong != (wsim_block >= threshold)
            else:
                ix = _np.ix_(s_entry.numpy_ids(), t_entry.numpy_ids())
                old_strong = self._Wnp[ix] >= threshold
                block = self._Snp[ix] * factor
                _np.clip(block, 0.0, 1.0, out=block)
                self._Snp[ix] = block
                new_wsim = self._wl * block + self._om * self._Lnp[ix]
                self._Wnp[ix] = new_wsim
                crossed = old_strong != (new_wsim >= threshold)
            if crossed.any():
                self._mark_crossed(
                    s_entry,
                    t_entry,
                    crossed.any(axis=1).tolist(),
                    crossed.any(axis=0).tolist(),
                )
            return cells

        ssim_flat, lsim_flat, wsim_flat = self._S, self._L, self._W
        n_t = self._n_t
        wl, om = self._wl, self._om
        threshold = self._thaccept
        t_ids = (
            range(t_entry.lo, t_entry.hi)
            if t_entry.lo is not None
            else t_entry.ids
        )
        rows_crossed = [False] * len(s_entry.ids)
        cols_crossed = [False] * len(t_ids)
        any_crossed = False
        for xi, x in enumerate(s_entry.ids):
            base = x * n_t
            for yi, y in enumerate(t_ids):
                flat = base + y
                value = ssim_flat[flat] * factor
                if value > 1.0:
                    value = 1.0
                elif value < 0.0:
                    value = 0.0
                ssim_flat[flat] = value
                old_wsim = wsim_flat[flat]
                new_wsim = wl * value + om * lsim_flat[flat]
                wsim_flat[flat] = new_wsim
                if (old_wsim >= threshold) != (new_wsim >= threshold):
                    any_crossed = True
                    rows_crossed[xi] = True
                    cols_crossed[yi] = True
        if any_crossed:
            self._mark_crossed(s_entry, t_entry, rows_crossed, cols_crossed)
        return cells

    # ------------------------------------------------------------------
    # Dirty-set queries (incremental recompute_wsim)
    # ------------------------------------------------------------------

    def _mark_crossed(
        self,
        s_entry: _NodeIndex,
        t_entry: _NodeIndex,
        rows_crossed: List[bool],
        cols_crossed: List[bool],
    ) -> None:
        """Stamp a fresh sequence on rows/columns with crossed cells.

        ``rows_crossed`` aligns with ``s_entry.ids``; ``cols_crossed``
        with ``t_entry``'s id sequence (``lo..hi`` when contiguous).
        """
        self.mutation_seq += 1
        seq = self.mutation_seq
        row_seq = self._row_seq
        row_base = s_entry.lo
        if row_base is not None:
            for k, flag in enumerate(rows_crossed):
                if flag:
                    row_seq[row_base + k] = seq
        else:
            ids = s_entry.ids
            for k, flag in enumerate(rows_crossed):
                if flag:
                    row_seq[ids[k]] = seq
        col_seq = self._col_seq
        col_base = t_entry.lo
        if col_base is not None:
            for k, flag in enumerate(cols_crossed):
                if flag:
                    col_seq[col_base + k] = seq
        else:
            ids = t_entry.ids
            for k, flag in enumerate(cols_crossed):
                if flag:
                    col_seq[ids[k]] = seq

    def block_dirty_since(
        self, s: SchemaTreeNode, t: SchemaTreeNode, seq: int
    ) -> Optional[bool]:
        """Could any leaf cell of (subtree of s) × (subtree of t) have
        crossed ``thaccept`` after sequence ``seq``?

        False means provably fresh: a recompute of the pair's
        structural similarity would reproduce the value computed at
        ``seq`` exactly (the strong-link fraction reads only the
        cells' >= thaccept statuses, none of which flipped). True is
        conservative — a row-touching and a column-touching event can
        flag a block even when no single event hit both. None means
        the subtrees are not fully leaf-indexed (mutated tree);
        callers must recompute.
        """
        s_entry = self._node_indices(s, source_side=True)
        if s_entry is None:
            return None
        t_entry = self._node_indices(t, source_side=False)
        if t_entry is None:
            return None
        # Only after the indexed-leaves check: non-indexed (dict-path)
        # cells never stamp the sequence, so a global "nothing
        # changed" short-circuit must not override the None contract.
        if self.mutation_seq <= seq:
            return False
        row_seq = self._row_seq
        rows = (
            range(s_entry.lo, s_entry.hi)
            if s_entry.lo is not None
            else s_entry.ids
        )
        for i in rows:
            if row_seq[i] > seq:
                break
        else:
            return False
        col_seq = self._col_seq
        cols = (
            range(t_entry.lo, t_entry.hi)
            if t_entry.lo is not None
            else t_entry.ids
        )
        for j in cols:
            if col_seq[j] > seq:
                return True
        return False

    def structural_fraction(
        self,
        s: SchemaTreeNode,
        t: SchemaTreeNode,
        s_frontier: Dict[SchemaTreeNode, bool],
        t_frontier: Dict[SchemaTreeNode, bool],
        thaccept: float,
        discount: bool,
    ) -> Optional[float]:
        """Strong-link fraction of Section 6 as matrix row/column scans.

        Returns None when either frontier is not fully leaf-indexed
        (TreeMatch then falls back to the reference per-pair loop).
        """
        s_entry = self._frontier_indices(s, s_frontier, source_side=True)
        if s_entry is None:
            return None
        t_entry = self._frontier_indices(t, t_frontier, source_side=False)
        if t_entry is None:
            return None
        s_ids, t_ids = s_entry.ids, t_entry.ids
        if not s_ids or not t_ids:
            return 0.0

        shards = self._shards
        if (
            shards is not None
            and len(s_ids) * len(t_ids) >= shards.min_cells
            and s_entry.lo is not None
            and t_entry.lo is not None
        ):
            row_bits, col_bits = shards.scan(
                s_entry.lo, s_entry.hi, t_entry.lo, t_entry.hi, thaccept
            )
            return self._fraction_from_bits(
                s_entry, t_entry, row_bits, col_bits, discount
            )

        if self._use_numpy and len(s_ids) * len(t_ids) >= self._VECTOR_MIN_CELLS:
            if s_entry.lo is not None and t_entry.lo is not None:
                sub = self._Wnp[s_entry.lo:s_entry.hi, t_entry.lo:t_entry.hi]
            else:
                sub = self._Wnp[
                    _np.ix_(s_entry.numpy_ids(), t_entry.numpy_ids())
                ]
            strong = sub >= thaccept
            s_has = strong.any(axis=1)
            t_has = strong.any(axis=0)
            s_linked = int(_np.count_nonzero(s_has))
            t_linked = int(_np.count_nonzero(t_has))
            if discount:
                s_total = s_linked + int(
                    _np.count_nonzero(s_entry.numpy_required() & ~s_has)
                )
                t_total = t_linked + int(
                    _np.count_nonzero(t_entry.numpy_required() & ~t_has)
                )
            else:
                s_total = len(s_ids)
                t_total = len(t_ids)
        else:
            wsim_flat = self._W
            n_t = self._n_t
            s_required = s_entry.required
            t_required = t_entry.required
            s_linked = 0
            s_total = 0
            for k, x in enumerate(s_ids):
                base = x * n_t
                has_link = False
                for y in t_ids:
                    if wsim_flat[base + y] >= thaccept:
                        has_link = True
                        break
                if has_link:
                    s_linked += 1
                    s_total += 1
                elif s_required[k] or not discount:
                    s_total += 1
            t_linked = 0
            t_total = 0
            for k, y in enumerate(t_ids):
                has_link = False
                for x in s_ids:
                    if wsim_flat[x * n_t + y] >= thaccept:
                        has_link = True
                        break
                if has_link:
                    t_linked += 1
                    t_total += 1
                elif t_required[k] or not discount:
                    t_total += 1

        denominator = s_total + t_total
        if denominator == 0:
            return 0.0
        return (s_linked + t_linked) / denominator

    # ------------------------------------------------------------------

    def frontier_leaf_indexed(
        self,
        node: SchemaTreeNode,
        frontier: Dict[SchemaTreeNode, bool],
        source_side: bool,
    ) -> bool:
        """Is every node of this frontier a matrix-indexed real leaf?

        True exactly when the pair's structural fraction reads matrix
        cells only — the condition under which the dirty-set crossing
        stamps vouch for the whole read set even with
        ``leaf_prune_depth > 0`` (a fully-leaf frontier at depth k is
        the node's complete leaf set).
        """
        return (
            self._frontier_indices(node, frontier, source_side) is not None
        )

    def store_bytes(self) -> int:
        """Bytes held by the similarity plane representation (the
        three flat matrices; the O(n) index dicts are not counted on
        either store)."""
        return 3 * 8 * self._n_s * self._n_t

    def describe(self) -> Dict[str, object]:
        """Engine/backend facts for ``--stats`` dumps."""
        facts = {
            "store": "flat",
            "backend": self.backend,
            "matrix_shape": (self._n_s, self._n_t),
            "leaf_cells": self._n_s * self._n_t,
            "store_bytes": self.store_bytes(),
        }
        if self._shards is not None:
            facts.update(self._shards.counters)
            # Which maximal subtrees each row stripe wholly owns: the
            # interval windows make shard ownership a statement about
            # the schema ("worker w owns these subtrees"), not just
            # about row ranges.
            facts["stripe_owned_subtrees"] = stripe_owned_subtrees(
                self._source_root, self._shards.stripes
            )
        return facts
