"""Tile-sharded parallel execution layer for TreeMatch stores.

The dense stores spend their TreeMatch time in two bulk operations
over the wsim plane: strong-link row/column max scans
(``structural_fraction``) and cinc/cdec clamped block multiplies
(``scale_block``). Both are embarrassingly parallel over disjoint row
ranges. This module shards them across ``config.workers`` processes:

* the plane is partitioned into **tile-row stripes** (contiguous row
  ranges aligned to the tile edge — 64 rows for the flat store's
  virtual tiling, ``block_size`` for the blocked store), one stripe
  set per worker, fixed for the store's lifetime;
* for the **flat store** the three ``array('d')`` planes are placed in
  one ``multiprocessing.shared_memory`` segment; workers map zero-copy
  views and run their stripe's share of each scan/scale directly on
  the shared plane;
* for the **blocked store** each worker owns a stripe **replica** — a
  mini tile store rebuilt from the same base-class/lsim tables the
  main store uses. Main stays the authority (TreeMatch reads every
  pair's wsim from it); every plane mutation is also appended to an op
  log, and the log is flushed to the owning workers before each
  sharded scan (owner-merge);
* each operation ends at a **barrier**: the main process collects
  every shard's crossed-row/column bits, merges them, and applies the
  dirty-set crossing stamp exactly once — so the stamp sequence, and
  with it the prune-aware incremental ``recompute_wsim``, is identical
  to serial execution.

Bit-identity with ``workers = 1`` holds by construction: every cell
value is produced by the exact scalar/numpy expressions of
:mod:`repro.structure.dense` (same operand order, same clamping)
applied to identical operands, the row/column "any strong link" and
"any crossing" reductions are order-independent, and the merged stamp
application reproduces the serial stamp sequence. The fuzz parity
suite (``tests/test_fuzz_parity.py``) holds that along a dedicated
workers axis.

Worker processes are pooled per worker-count and reused across stores
(fork start method where available, spawn otherwise); a worker dying
mid-request raises :class:`~repro.exceptions.ParallelError` — the
layer never silently degrades to serial once engaged. The pool is
thread-safe for the serving subsystem's session pool: replies carry no
correlation ids, so each pool serializes whole send-all/recv-all
transactions under one lock (two threads interleaving on the shared
pipes would each collect the other's replies), and pool creation is
locked so only one thread ever forks.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import weakref
from array import array
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.exceptions import ParallelError
from repro.obs import trace

try:  # optional acceleration, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_FORCE_STDLIB
    _np = None

try:
    import multiprocessing
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - multiprocessing is stdlib
    multiprocessing = None
    _shm = None

#: Stripe alignment for the flat store (it has no tile grid of its
#: own; 64 matches the blocked store's default tile edge).
FLAT_STRIPE_ALIGN = 64


def available_cpu_count() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity
    limits a container imposes — auto-sized worker pools would then
    oversubscribe a 2-core cgroup on a 64-core host. Prefer
    ``os.process_cpu_count()`` (3.13+), fall back to the scheduler
    affinity mask, and only then to the raw count."""
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:
        count = getter()
        if count:
            return count
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def effective_workers(config, max_leaves: int) -> int:
    """Resolve ``config.workers`` for a plane whose larger side has
    ``max_leaves`` leaves: 1 (serial) unless workers > 1 after the
    0 = auto-by-available-cpu expansion AND the plane reaches
    ``config.parallel_leaf_threshold``."""
    workers = config.workers
    if workers == 0:
        workers = available_cpu_count()
    if workers <= 1 or multiprocessing is None:
        return 1
    if max_leaves < config.parallel_leaf_threshold:
        return 1
    return workers


def min_parallel_cells(config) -> int:
    """Per-operation cell floor below which a scan/scale stays
    serial even on a parallel-active store: IPC round trips only pay
    for themselves on large regions. Derived from the leaf threshold
    so tests that force ``parallel_leaf_threshold = 1`` route every
    operation through the shards."""
    threshold = config.parallel_leaf_threshold
    return max(1, min(262144, threshold * threshold))


def stripe_plan(n_rows: int, align: int, workers: int) -> List[Tuple[int, int]]:
    """Partition ``[0, n_rows)`` into per-worker contiguous stripes
    aligned to ``align``-row boundaries (the tile edge, so no tile is
    split across owners). Trailing workers may get empty stripes."""
    tile_rows = -(-n_rows // align) if n_rows else 0
    per = -(-tile_rows // workers) if tile_rows else 0
    stripes = []
    for w in range(workers):
        r0 = min(n_rows, w * per * align)
        r1 = min(n_rows, (w + 1) * per * align)
        stripes.append((r0, r1))
    return stripes


def stripe_owned_subtrees(root, stripes: List[Tuple[int, int]]) -> List[int]:
    """Per-stripe count of *maximal* subtrees a stripe wholly owns.

    The interval encoding makes a subtree's leaves the contiguous
    window ``[leaf_lo, leaf_hi)`` of the plane's row order, so "which
    subtrees does worker w own" is pure window containment: walk down
    from the root and stop at the first node whose window fits the
    stripe (its descendants are then owned transitively). Unindexed
    or gather-list (impure DAG) nodes recurse into their children.
    Purely observational — surfaced through ``describe()``/``--stats``
    so shard plans can be read in schema terms."""
    counts: List[int] = []
    for r0, r1 in stripes:
        owned = 0
        if r1 > r0:
            seen = set()
            stack = [root]
            while stack:
                node = stack.pop()
                if node.node_id in seen:
                    continue
                seen.add(node.node_id)
                if node._enc is None or node._leaf_ids is not None:
                    stack.extend(node.children)
                    continue
                lo, hi = node.leaf_lo, node.leaf_hi
                if lo >= r1 or hi <= r0 or lo >= hi:
                    continue  # disjoint (or empty): not this stripe's
                if r0 <= lo and hi <= r1:
                    owned += 1  # maximal: children owned transitively
                    continue
                stack.extend(node.children)
        counts.append(owned)
    return counts


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _PoisonedShard:
    """Stand-in for a shard whose (no-reply) setup or replay failed:
    the next reply-bearing request surfaces the original traceback."""

    def __init__(self, message: str) -> None:
        self.message = message

    def _raise(self, *_args, **_kwargs):
        raise RuntimeError(self.message)

    scan = scale = apply_ops = _raise

    def close(self) -> None:
        pass


class _FlatShard:
    """Worker-side view of a flat store's shared-memory planes."""

    def __init__(self, shm_name, n_s, n_t, wl, om, backend) -> None:
        self.shm = _shm.SharedMemory(name=shm_name)
        self.n_t = n_t
        self.wl = wl
        self.om = om
        self.use_numpy = backend == "numpy" and _np is not None
        size = n_s * n_t
        self._mv = memoryview(self.shm.buf).cast("d")
        self.S = self._mv[0:size]
        self.L = self._mv[size:2 * size]
        self.W = self._mv[2 * size:3 * size]
        if self.use_numpy:
            flat = _np.frombuffer(self.shm.buf, dtype=_np.float64,
                                  count=3 * size)
            self.Snp = flat[:size].reshape(n_s, n_t)
            self.Lnp = flat[size:2 * size].reshape(n_s, n_t)
            self.Wnp = flat[2 * size:3 * size].reshape(n_s, n_t)

    def scan(self, a0, a1, j0, j1, thaccept):
        """Strong-link bits for rows [a0, a1) of region cols [j0, j1):
        (per-row any-link bytes, per-column any-link bytes)."""
        if self.use_numpy:
            strong = self.Wnp[a0:a1, j0:j1] >= thaccept
            return (
                strong.any(axis=1).tobytes(),
                strong.any(axis=0).tobytes(),
            )
        W = self.W
        n_t = self.n_t
        row_bits = bytearray(a1 - a0)
        col_bits = bytearray(j1 - j0)
        for k, x in enumerate(range(a0, a1)):
            base = x * n_t
            for y in range(j0, j1):
                if W[base + y] >= thaccept:
                    row_bits[k] = 1
                    col_bits[y - j0] = 1
        # The row early-break of the serial scan is a pure speedup; the
        # column bits here come from the same full pass, and "any" is
        # order-independent, so the merged bits are identical.
        return bytes(row_bits), bytes(col_bits)

    def scale(self, a0, a1, j0, j1, factor, thaccept):
        """Clamped ssim multiply + wsim refresh over rows [a0, a1) of
        the region, in place on the shared planes. Returns
        (any_crossed, per-row crossed bytes, per-col crossed bytes)."""
        if self.use_numpy:
            rows = slice(a0, a1)
            cols = slice(j0, j1)
            wsim_block = self.Wnp[rows, cols]
            old_strong = wsim_block >= thaccept
            block = self.Snp[rows, cols]
            block *= factor
            _np.clip(block, 0.0, 1.0, out=block)
            wsim_block[...] = (
                self.wl * block + self.om * self.Lnp[rows, cols]
            )
            crossed = old_strong != (wsim_block >= thaccept)
            return (
                bool(crossed.any()),
                crossed.any(axis=1).tobytes(),
                crossed.any(axis=0).tobytes(),
            )
        S, L, W = self.S, self.L, self.W
        n_t = self.n_t
        wl, om = self.wl, self.om
        row_bits = bytearray(a1 - a0)
        col_bits = bytearray(j1 - j0)
        any_crossed = False
        for k, x in enumerate(range(a0, a1)):
            base = x * n_t
            for y in range(j0, j1):
                flat = base + y
                value = S[flat] * factor
                if value > 1.0:
                    value = 1.0
                elif value < 0.0:
                    value = 0.0
                S[flat] = value
                old_wsim = W[flat]
                new_wsim = wl * value + om * L[flat]
                W[flat] = new_wsim
                if (old_wsim >= thaccept) != (new_wsim >= thaccept):
                    any_crossed = True
                    row_bits[k] = 1
                    col_bits[y - j0] = 1
        return any_crossed, bytes(row_bits), bytes(col_bits)

    def apply_ops(self, _ops) -> None:  # flat planes are shared: no log
        raise RuntimeError("flat shards take no op log")

    def close(self) -> None:
        if self.use_numpy:
            self.Snp = self.Lnp = self.Wnp = None
        self.S = self.L = self.W = None
        self._mv.release()
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - view freed by gc soon
            pass


class _StripeReplica:
    """Worker-side replica of a blocked store's stripe.

    Holds solid ssim tiles only where replayed ops changed values;
    everything else reads from the same base-class table the main
    store gathers from. wsim is always recomputed as ``wl·s + om·l`` —
    recomputing the identical expression from identical operands
    yields the identical double (the invariant the blocked store
    itself relies on for virtual-cell reads).
    """

    def __init__(self, spec: Dict) -> None:
        self.r0, self.r1 = spec["stripe"]
        self.n_s = spec["n_s"]
        self.n_t = spec["n_t"]
        self.block = spec["block"]
        self.wl = spec["wl"]
        self.om = spec["om"]
        self.use_numpy = spec["backend"] == "numpy" and _np is not None
        self.tiles_t = -(-self.n_t // self.block) if self.n_t else 0
        self.n_col_classes = spec["n_col_classes"]
        self.base = array("d", spec["base"])
        self.row_base = spec["row_base"]
        self.col_class = spec["col_class"]
        self.factored = spec["factored"]
        if self.factored:
            self.p_s = spec["p_s"]
            self.p_t = spec["p_t"]
            self.profile_values = array("d", spec["profile_values"])
            self.row_prof_base = spec["row_prof_base"]
            self.col_prof = spec["col_prof"]
        else:
            self.lsim_cells = spec["lsim_cells"]
        #: tid -> solid ssim tile (block² doubles, padded edges).
        self.tiles: Dict[int, array] = {}
        self._np_ready = False

    # -- numpy side tables (lazy, mirrors BlockedSimilarityStore) ------

    def _ensure_np(self):
        if self._np_ready:
            return
        self.base_np = _np.frombuffer(
            self.base, dtype=_np.float64
        ).reshape(-1, max(1, self.n_col_classes))
        ncc = max(1, self.n_col_classes)
        self.row_class_np = _np.asarray(
            [rb // ncc for rb in self.row_base], dtype=_np.intp
        )
        self.col_class_np = _np.asarray(self.col_class, dtype=_np.intp)
        if self.factored:
            p_s, p_t = self.p_s, self.p_t
            padded = _np.zeros((p_s + 1, p_t + 1))
            if p_s and p_t:
                padded[:p_s, :p_t] = _np.frombuffer(
                    self.profile_values, dtype=_np.float64
                ).reshape(p_s, p_t)
            self.padded_np = padded
            self.row_prof_np = _np.asarray(
                [rb // p_t if rb >= 0 else p_s for rb in self.row_prof_base]
                if p_t
                else [0] * self.n_s,
                dtype=_np.intp,
            )
            self.col_prof_np = _np.asarray(
                [c if c >= 0 else p_t for c in self.col_prof],
                dtype=_np.intp,
            )
        self._np_ready = True

    # -- cell reads ----------------------------------------------------

    def _cell_ssim(self, i, j):
        tid = (i // self.block) * self.tiles_t + (j // self.block)
        tile = self.tiles.get(tid)
        if tile is not None:
            return tile[(i % self.block) * self.block + (j % self.block)]
        return self.base[self.row_base[i] + self.col_class[j]]

    def _cell_lsim(self, i, j):
        if self.factored:
            rb = self.row_prof_base[i]
            if rb < 0:
                return 0.0
            c = self.col_prof[j]
            if c < 0:
                return 0.0
            return self.profile_values[rb + c]
        return self.lsim_cells.get(i * self.n_t + j, 0.0)

    def _solid_tile(self, tid):
        """Materialize a tile from the base classes (no overlays here:
        the replica applies every write into solid tiles directly)."""
        tile = self.tiles.get(tid)
        if tile is not None:
            return tile
        block = self.block
        tile = array("d", bytes(8 * block * block))
        trow, tcol = divmod(tid, self.tiles_t)
        i0 = trow * block
        i1 = min(i0 + block, self.n_s)
        j0 = tcol * block
        j1 = min(j0 + block, self.n_t)
        base = self.base
        row_base = self.row_base
        col_class = self.col_class
        for i in range(i0, i1):
            rb = row_base[i]
            off = (i - i0) * block - j0
            for j in range(j0, j1):
                tile[off + j] = base[rb + col_class[j]]
        self.tiles[tid] = tile
        return tile

    # -- op replay -----------------------------------------------------

    def _decode_rows(self, spec):
        """Row ids of an op spec, clamped to the stripe."""
        if isinstance(spec, tuple):
            return range(max(spec[0], self.r0), min(spec[1], self.r1))
        return [i for i in spec if self.r0 <= i < self.r1]

    @staticmethod
    def _decode_cols(spec):
        if isinstance(spec, tuple):
            return range(spec[0], spec[1])
        return spec

    def apply_ops(self, ops) -> None:
        for op in ops:
            kind = op[0]
            if kind == "set":
                _, i, j, value = op
                if self.r0 <= i < self.r1 and value != self._cell_ssim(i, j):
                    tile = self._solid_tile(
                        (i // self.block) * self.tiles_t + (j // self.block)
                    )
                    tile[
                        (i % self.block) * self.block + (j % self.block)
                    ] = value
            elif kind == "scale":
                _, s_spec, t_spec, factor = op
                self._replay_scale(
                    self._decode_rows(s_spec),
                    self._decode_cols(t_spec),
                    factor,
                )

    def _replay_scale(self, rows, cols, factor) -> None:
        block = self.block
        tiles_t = self.tiles_t
        for x in rows:
            trow = (x // block) * tiles_t
            off_row = (x % block) * block
            rb = self.row_base[x]
            for y in cols:
                tid = trow + y // block
                tile = self.tiles.get(tid)
                if tile is not None:
                    off = off_row + y % block
                    old = tile[off]
                else:
                    old = self.base[rb + self.col_class[y]]
                value = old * factor
                if value > 1.0:
                    value = 1.0
                elif value < 0.0:
                    value = 0.0
                if value == old:
                    continue
                if tile is None:
                    tile = self._solid_tile(tid)
                    off = off_row + y % block
                tile[off] = value

    # -- scans ---------------------------------------------------------

    def scan(self, a0, a1, j0, j1, thaccept):
        """Strong-link bits for stripe rows [a0, a1) × cols [j0, j1)."""
        if self.use_numpy:
            self._ensure_np()
            return self._scan_np(a0, a1, j0, j1, thaccept)
        row_bits = bytearray(a1 - a0)
        col_bits = bytearray(j1 - j0)
        wl, om = self.wl, self.om
        for k, x in enumerate(range(a0, a1)):
            for y in range(j0, j1):
                wsim = wl * self._cell_ssim(x, y) + om * self._cell_lsim(x, y)
                if wsim >= thaccept:
                    row_bits[k] = 1
                    col_bits[y - j0] = 1
        return bytes(row_bits), bytes(col_bits)

    def _scan_np(self, a0, a1, j0, j1, thaccept):
        block = self.block
        tiles_t = self.tiles_t
        row_bits = _np.zeros(a1 - a0, dtype=bool)
        col_bits = _np.zeros(j1 - j0, dtype=bool)
        wl, om = self.wl, self.om
        for trow in range(a0 // block, (a1 - 1) // block + 1):
            ra0 = max(a0, trow * block)
            ra1 = min(a1, trow * block + block)
            for tcol in range(j0 // block, (j1 - 1) // block + 1):
                ca0 = max(j0, tcol * block)
                ca1 = min(j1, tcol * block + block)
                tid = trow * tiles_t + tcol
                tile = self.tiles.get(tid)
                la = ra0 - trow * block
                lb = ca0 - tcol * block
                if tile is not None:
                    tile_np = _np.frombuffer(
                        tile, dtype=_np.float64
                    ).reshape(block, block)
                    s_rect = tile_np[
                        la:la + (ra1 - ra0), lb:lb + (ca1 - ca0)
                    ]
                else:
                    s_rect = self.base_np[
                        self.row_class_np[ra0:ra1, None],
                        self.col_class_np[None, ca0:ca1],
                    ]
                strong = (wl * s_rect + om * self._lsim_rect(
                    ra0, ra1, ca0, ca1
                )) >= thaccept
                row_bits[ra0 - a0:ra1 - a0] |= strong.any(axis=1)
                col_bits[ca0 - j0:ca1 - j0] |= strong.any(axis=0)
        return row_bits.tobytes(), col_bits.tobytes()

    def _lsim_rect(self, i0, i1, j0, j1):
        if self.factored:
            return self.padded_np[
                self.row_prof_np[i0:i1, None],
                self.col_prof_np[None, j0:j1],
            ]
        scratch = _np.zeros((i1 - i0, j1 - j0))
        n_t = self.n_t
        for i in range(i0, i1):
            base = i * n_t
            for j in range(j0, j1):
                value = self.lsim_cells.get(base + j)
                if value is not None:
                    scratch[i - i0, j - j0] = value
        return scratch

    def scale(self, *_args, **_kwargs):
        raise RuntimeError(
            "blocked shards apply scales via the op log, not dispatch"
        )

    def close(self) -> None:
        self.tiles.clear()


def _worker_main(conn) -> None:
    """Worker process loop: apply no-reply state messages, answer
    scan/scale requests, exit on demand or when the pipe closes."""
    shards: Dict[int, object] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            break
        kind = msg[0]
        if kind == "exit":
            break
        if kind == "die":  # crash-injection hook for the test suite
            os._exit(17)
        reply_bearing = kind in ("scan", "scale", "ping")
        try:
            if kind == "flat":
                _, key, shm_name, n_s, n_t, wl, om, backend = msg
                shards[key] = _FlatShard(shm_name, n_s, n_t, wl, om, backend)
            elif kind == "blocked":
                _, key, spec = msg
                shards[key] = _StripeReplica(spec)
            elif kind == "ops":
                _, key, ops = msg
                shards[key].apply_ops(ops)
            elif kind == "detach":
                shard = shards.pop(msg[1], None)
                if shard is not None:
                    shard.close()
            elif kind == "scan":
                _, key, a0, a1, j0, j1, thaccept, want_trace = msg
                if want_trace:
                    # Spans are built standalone (no arming needed) and
                    # ride home inside the reply; the dispatching op
                    # span adopts them at the barrier. The dispatcher
                    # only sets want_trace when its own tracer is
                    # armed, so disarmed runs keep today's reply shape.
                    shard_span = trace.Span.begin(
                        "parallel.worker.scan",
                        rows=a1 - a0, cols=j1 - j0, row_lo=a0,
                    )
                    payload = shards[key].scan(a0, a1, j0, j1, thaccept)
                    shard_span.finish()
                    conn.send(("ok",) + payload + (shard_span.to_dict(),))
                else:
                    conn.send(
                        ("ok",) + shards[key].scan(a0, a1, j0, j1, thaccept)
                    )
            elif kind == "scale":
                _, key, a0, a1, j0, j1, factor, thaccept, want_trace = msg
                if want_trace:
                    shard_span = trace.Span.begin(
                        "parallel.worker.scale",
                        rows=a1 - a0, cols=j1 - j0, row_lo=a0,
                    )
                    payload = shards[key].scale(
                        a0, a1, j0, j1, factor, thaccept
                    )
                    shard_span.finish()
                    conn.send(("ok",) + payload + (shard_span.to_dict(),))
                else:
                    conn.send(
                        ("ok",)
                        + shards[key].scale(a0, a1, j0, j1, factor, thaccept)
                    )
            elif kind == "ping":
                conn.send(("ok",))
        except Exception:  # noqa: BLE001 - forwarded to the main process
            import traceback

            message = traceback.format_exc()
            if reply_bearing:
                try:
                    conn.send(("err", message))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    break
            else:
                # Defer: poison the shard so the next reply-bearing
                # request surfaces the original failure.
                key = msg[1] if len(msg) > 1 else None
                if key is not None:
                    shards[key] = _PoisonedShard(message)
    for shard in shards.values():
        shard.close()
    conn.close()


# ----------------------------------------------------------------------
# Main-process side: pools and per-store contexts
# ----------------------------------------------------------------------

class WorkerPool:
    """A fixed set of worker processes with one duplex pipe each."""

    def __init__(self, n_workers: int) -> None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.n_workers = n_workers
        self.dead = False
        # One transaction at a time: request() holds this across its
        # whole send-all/recv-all cycle so replies (which carry no
        # correlation ids) can never be claimed by the wrong thread.
        # RLock because a gc-triggered shard finalizer may post a
        # detach from inside the owning thread's transaction.
        self._lock = threading.RLock()
        self._conns = []
        self._procs = []
        for _ in range(n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def post(self, worker: int, msg) -> None:
        """Send a no-reply message."""
        with self._lock:
            self._post_locked(worker, msg)

    def _post_locked(self, worker: int, msg) -> None:
        if self.dead:
            raise ParallelError(
                f"worker pool ({self.n_workers} workers) is dead after an "
                f"earlier failure; cannot send {msg[0]!r}"
            )
        try:
            self._conns[worker].send(msg)
        except (BrokenPipeError, OSError) as exc:
            self._mark_dead()
            raise ParallelError(
                f"parallel worker {worker} is gone "
                f"(send of {msg[0]!r} failed: {exc})"
            ) from exc

    def request(self, targets: List[Tuple[int, tuple]]) -> List[tuple]:
        """Send one reply-bearing message per (worker, msg) target,
        then collect replies in order. Raises ParallelError if any
        worker dies or reports a shard failure. The whole transaction
        runs under the pool lock — concurrent sessions queue here
        rather than crossing replies on the shared pipes."""
        injected = faults.action("parallel.request")
        with self._lock:
            if injected == "kill_worker" and targets:
                # Deterministic worker death: the victim reads the die
                # message before this transaction's requests, so the
                # recv below finds a closed pipe — exactly the failure
                # shape of a worker OOM-killed mid-request.
                self._post_locked(targets[0][0], ("die",))
            for worker, msg in targets:
                self._post_locked(worker, msg)
            replies = []
            for worker, msg in targets:
                try:
                    reply = self._conns[worker].recv()
                except (EOFError, OSError) as exc:
                    self._mark_dead()
                    raise ParallelError(
                        f"parallel worker {worker} died during {msg[0]!r} "
                        f"(exit code "
                        f"{self._procs[worker].exitcode})"
                    ) from exc
                if reply[0] != "ok":
                    self._mark_dead()
                    raise ParallelError(
                        f"parallel worker {worker} failed during "
                        f"{msg[0]!r}:\n{reply[1]}"
                    )
                replies.append(reply)
            return replies

    def _mark_dead(self) -> None:
        """A broken pool is never reused: pending stores error out and
        the registry spawns a fresh pool for new stores."""
        self.dead = True
        _POOLS.pop(self.n_workers, None)

    def shutdown(self) -> None:
        with self._lock:
            if self.dead:
                for proc in self._procs:
                    if proc.is_alive():  # pragma: no cover - crash cleanup
                        proc.terminate()
                return
            self.dead = True
            _POOLS.pop(self.n_workers, None)
            for conn in self._conns:
                try:
                    conn.send(("exit",))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
            for proc in self._procs:
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
            for conn in self._conns:
                conn.close()


_POOLS: Dict[int, WorkerPool] = {}
_POOLS_LOCK = threading.Lock()
_STORE_KEYS = itertools.count(1)


def get_pool(n_workers: int) -> WorkerPool:
    """The shared pool for ``n_workers``, spawning it on first use.

    Creation is locked: two racing sessions must get the same pool,
    and only one thread may fork (forking concurrently with another
    thread's fork would duplicate half-set-up pipe fds into both
    children).
    """
    with _POOLS_LOCK:
        pool = _POOLS.get(n_workers)
        if pool is None or pool.dead:
            pool = WorkerPool(n_workers)
            _POOLS[n_workers] = pool
        return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_POOLS.values()):
        pool.shutdown()


def _detach_shards(pool: WorkerPool, key: int, workers: List[int]) -> None:
    """Finalizer half: tell the owning workers to drop their shards."""
    if pool.dead:
        return
    for worker in workers:
        try:
            pool.post(worker, ("detach", key))
        except ParallelError:  # pragma: no cover - pool died first
            return


class ShardContext:
    """Main-process handle for one store's sharded execution.

    Owns the stripe plan, the per-op dispatch/merge, the op log
    (blocked stores), and the shard/merge counters surfaced through
    ``describe()`` / ``--stats`` / ``MatchSession.cache_info()``.
    """

    def __init__(
        self,
        n_workers: int,
        stripes: List[Tuple[int, int]],
        min_cells: int,
        use_numpy: bool,
    ) -> None:
        self.pool = get_pool(n_workers)
        self.key = next(_STORE_KEYS)
        self.stripes = stripes
        self.min_cells = min_cells
        self.use_numpy = use_numpy
        self.counters = {
            "parallel_workers": n_workers,
            "parallel_scan_ops": 0,
            "parallel_scale_ops": 0,
            "parallel_shards_dispatched": 0,
            "parallel_ops_forwarded": 0,
            "parallel_stamp_merges": 0,
        }
        self._registered = False
        self._attach_msg = None
        self._blocked_specs = None
        self.pending_ops: Optional[List[tuple]] = None
        self._finalizer = None

    # -- registration --------------------------------------------------

    def attach_flat(self, shm_name, n_s, n_t, wl, om, backend) -> None:
        self._attach_msg = ("flat", self.key, shm_name, n_s, n_t, wl, om,
                            backend)

    def attach_blocked(self, spec_base: Dict) -> None:
        self._blocked_specs = spec_base
        self.pending_ops = []

    def _ensure_registered(self) -> None:
        if self._registered:
            return
        live = [
            w for w, (r0, r1) in enumerate(self.stripes) if r1 > r0
        ]
        if self._attach_msg is not None:
            for worker in live:
                self.pool.post(worker, self._attach_msg)
        else:
            for worker in live:
                spec = dict(self._blocked_specs)
                spec["stripe"] = self.stripes[worker]
                self.pool.post(worker, ("blocked", self.key, spec))
        self._registered = True
        self._finalizer_workers = live

    def register_finalizer(self, owner) -> None:
        """Detach worker shards when the owning store is collected."""
        pool, key = self.pool, self.key
        stripes = self.stripes

        def _cleanup():
            live = [w for w, (r0, r1) in enumerate(stripes) if r1 > r0]
            _detach_shards(pool, key, live)

        self._finalizer = weakref.finalize(owner, _cleanup)

    # -- op log (blocked stores) ---------------------------------------

    def record_op(self, op: tuple) -> None:
        self.pending_ops.append(op)

    @staticmethod
    def _op_rows(op) -> Tuple[int, int]:
        if op[0] == "set":
            return op[1], op[1] + 1
        spec = op[1]
        if isinstance(spec, tuple):
            return spec
        return spec[0], spec[-1] + 1

    def _flush_ops(self) -> None:
        ops = self.pending_ops
        if not ops:
            return
        for worker, (r0, r1) in enumerate(self.stripes):
            if r1 <= r0:
                continue
            mine = [
                op for op in ops
                if self._op_rows(op)[1] > r0 and self._op_rows(op)[0] < r1
            ]
            if mine:
                self.pool.post(worker, ("ops", self.key, mine))
                self.counters["parallel_ops_forwarded"] += len(mine)
        self.pending_ops = []

    # -- dispatch ------------------------------------------------------

    def _targets(self, i0: int, i1: int) -> List[Tuple[int, int, int]]:
        """(worker, a0, a1) stripe∩region row slices, ascending."""
        out = []
        for worker, (r0, r1) in enumerate(self.stripes):
            a0 = max(i0, r0)
            a1 = min(i1, r1)
            if a1 > a0:
                out.append((worker, a0, a1))
        return out

    def scan(self, i0, i1, j0, j1, thaccept):
        """Sharded strong-link scan: merged (row bits, col bits) over
        the region, ordered by ascending row / column."""
        self._ensure_registered()
        if self.pending_ops is not None:
            self._flush_ops()
        targets = self._targets(i0, i1)
        self.counters["parallel_scan_ops"] += 1
        self.counters["parallel_shards_dispatched"] += len(targets)
        op_span = trace.start_span("parallel.scan", shards=len(targets))
        want_trace = op_span is not None
        try:
            replies = self.pool.request(
                [
                    (w, ("scan", self.key, a0, a1, j0, j1, thaccept,
                         want_trace))
                    for w, a0, a1 in targets
                ]
            )
            if want_trace:
                # The op is the barrier: worker spans ride the replies
                # and re-parent here, under the dispatching span.
                trace.adopt(op_span, (reply[3] for reply in replies))
            row_bits = bytearray()
            col_bits = bytearray(j1 - j0)
            for reply in replies:
                rows, cols = reply[1], reply[2]
                row_bits.extend(rows)
                for k, bit in enumerate(cols):
                    if bit:
                        col_bits[k] = 1
            return row_bits, col_bits
        finally:
            trace.end_span(op_span)

    def scale(self, i0, i1, j0, j1, factor, thaccept):
        """Sharded clamped block multiply (flat stores only — the
        planes are shared, so workers write in place). Returns merged
        (any_crossed, row bits, col bits) for the barrier stamp."""
        self._ensure_registered()
        targets = self._targets(i0, i1)
        self.counters["parallel_scale_ops"] += 1
        self.counters["parallel_shards_dispatched"] += len(targets)
        op_span = trace.start_span("parallel.scale", shards=len(targets))
        want_trace = op_span is not None
        try:
            replies = self.pool.request(
                [
                    (w, ("scale", self.key, a0, a1, j0, j1, factor,
                         thaccept, want_trace))
                    for w, a0, a1 in targets
                ]
            )
            if want_trace:
                trace.adopt(op_span, (reply[4] for reply in replies))
            any_crossed = False
            row_bits = bytearray()
            col_bits = bytearray(j1 - j0)
            for reply in replies:
                crossed, rows, cols = reply[1], reply[2], reply[3]
                any_crossed = any_crossed or crossed
                row_bits.extend(rows)
                for k, bit in enumerate(cols):
                    if bit:
                        col_bits[k] = 1
            if any_crossed:
                self.counters["parallel_stamp_merges"] += 1
            return any_crossed, row_bits, col_bits
        finally:
            trace.end_span(op_span)
