"""Deterministic fault injection for the durability and self-healing
tests.

A long-lived match service dies in ways unit tests never exercise by
accident: the process killed between an artifact write and the
manifest publish, a segment file torn mid-write, a disk returning
``ENOSPC``, a worker process disappearing under a request. This module
makes those failures *reproducible*: a process-wide :class:`FaultPlan`
names injection **sites** threaded through the repository and serving
hot paths, and each armed rule fires a chosen failure on chosen
invocations of its site.

Sites currently wired (grep for the literal string to find the code)::

    repo.manifest       manifest write (repository.json)
    repo.artifact       prepared-schema artifact write
    repo.intent         write-ahead ingest-intent record
    repo.simcache       persistent similarity-cache write
    segment.write       index segment file write
    segment.read        index segment file read (open path)
    artifact.serialize  prepared-schema serialization
    artifact.restore    prepared-schema restoration
    parallel.request    worker-pool request transaction
    serve.execute       service request execution (pool thread)

Actions::

    oserror     raise OSError(EIO) at the site
    enospc      raise OSError(ENOSPC) — the disk-full probe
    delay       sleep 50 ms (races / deadline pressure)
    kill        os._exit(KILL_EXIT_CODE) at the site, before any bytes
    torn        publish HALF the payload bytes, then kill (write sites)
    kill_after  complete the write (rename + fsync), then kill
    corrupt     flip one payload byte after the rename (write sites)
    kill_worker publish a die message to one pool worker (parallel
                sites) so the next transaction finds it gone

The plan is **seeded and env-configurable**: ``REPRO_FAULTS`` is
parsed at import and armed automatically, so a subprocess inherits its
crash schedule through the environment — the transport the crash-sweep
tests (``tests/test_faults.py``) use. Spec grammar::

    REPRO_FAULTS="seed=7;segment.write:kill@2;repo.manifest:oserror@*"

``site:action@hits`` clauses name which invocations fire: ``@3`` the
third call ever, ``@1,4`` a list, ``@*`` every call; omitted = the
first. ``seed=N`` feeds the plan's RNG (corrupt-byte positions) and is
also readable via :func:`ambient_seed` — a plan carrying *only* a seed
has no rules and never fires, which is how a test parent process safely
passes a sweep seed through the same variable its subprocesses use.

When no plan is armed, :func:`check` / :func:`action` return on a
single ``None`` test — the hot paths pay one predictable branch.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from typing import Dict, List, Optional

#: Exit status of injected kills — distinct from Python tracebacks (1)
#: and the worker crash hook (17), and recognizable as SIGKILL-style.
KILL_EXIT_CODE = 137

#: Seconds the ``delay`` action sleeps.
DELAY_SECONDS = 0.05

#: Actions that shape a write in progress rather than firing at the
#: site entry; :func:`action` returns them for the writer to apply.
WRITE_SHAPING_ACTIONS = frozenset({"torn", "kill_after", "corrupt"})

#: Actions handled by the caller (not executed inside ``fire``).
DEFERRED_ACTIONS = WRITE_SHAPING_ACTIONS | {"kill_worker"}

ACTIONS = DEFERRED_ACTIONS | {"oserror", "enospc", "delay", "kill"}


class FaultSpecError(ValueError):
    """Raised for an unparseable ``REPRO_FAULTS`` spec."""


class FaultRule:
    """One ``site:action@hits`` clause with its invocation counter."""

    def __init__(
        self, site: str, fault: str, hits: Optional[frozenset] = frozenset({1})
    ) -> None:
        if fault not in ACTIONS:
            raise FaultSpecError(
                f"unknown fault action {fault!r} for site {site!r} "
                f"(expected one of {sorted(ACTIONS)})"
            )
        self.site = site
        self.fault = fault
        #: ``None`` fires on every invocation; otherwise the 1-based
        #: invocation numbers that fire.
        self.hits = hits
        self.count = 0

    def should_fire(self) -> bool:
        """Count one invocation of the site; True if this one fires."""
        self.count += 1
        return self.hits is None or self.count in self.hits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hits = "*" if self.hits is None else sorted(self.hits)
        return f"FaultRule({self.site}:{self.fault}@{hits})"


class FaultPlan:
    """A seeded set of rules, at most one per site."""

    def __init__(self, seed: int = 0, rules: Optional[List[FaultRule]] = None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.rules: Dict[str, FaultRule] = {}
        self._lock = threading.Lock()
        for rule in rules or []:
            self.add(rule)

    def add(self, rule: FaultRule) -> "FaultPlan":
        if rule.site in self.rules:
            raise FaultSpecError(
                f"duplicate fault rule for site {rule.site!r}"
            )
        self.rules[rule.site] = rule
        return self

    def fire(self, site: str) -> Optional[str]:
        """Count an invocation of ``site``; execute or return its fault.

        Immediate actions (``oserror``/``enospc``/``delay``/``kill``)
        happen right here; deferred ones (write shaping,
        ``kill_worker``) are returned for the caller to apply.
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._lock:
            fires = rule.should_fire()
        if not fires:
            return None
        fault = rule.fault
        if fault in DEFERRED_ACTIONS:
            return fault
        if fault == "delay":
            time.sleep(DELAY_SECONDS)
            return None
        if fault == "kill":
            hard_kill()
        if fault == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"injected ENOSPC at fault site {site!r}",
            )
        raise OSError(errno.EIO, f"injected I/O error at fault site {site!r}")

    def corrupt_offset(self, length: int) -> int:
        """Seed-deterministic byte position for the ``corrupt`` action."""
        with self._lock:
            return self.rng.randrange(length) if length > 0 else 0


def hard_kill() -> "None":
    """Die the way a power cut does: no atexit, no finally blocks."""
    os._exit(KILL_EXIT_CODE)


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` string into a :class:`FaultPlan`."""
    seed = 0
    rules: List[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad seed clause {clause!r} (expected seed=<int>)"
                ) from exc
            continue
        site, sep, rest = clause.partition(":")
        if not sep or not site or not rest:
            raise FaultSpecError(
                f"bad fault clause {clause!r} "
                "(expected site:action[@hits] or seed=N)"
            )
        fault, sep, hits_spec = rest.partition("@")
        hits: Optional[frozenset] = frozenset({1})
        if sep:
            if hits_spec == "*":
                hits = None
            else:
                try:
                    hits = frozenset(
                        int(part) for part in hits_spec.split(",") if part
                    )
                except ValueError as exc:
                    raise FaultSpecError(
                        f"bad hits spec {hits_spec!r} in {clause!r} "
                        "(expected N, N,M,..., or *)"
                    ) from exc
                if not hits or any(n < 1 for n in hits):
                    raise FaultSpecError(
                        f"hits must be 1-based positives in {clause!r}"
                    )
        rules.append(FaultRule(site.strip(), fault.strip(), hits))
    return FaultPlan(seed=seed, rules=rules)


# ----------------------------------------------------------------------
# Process-wide arming
# ----------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None


def arm(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide fault schedule."""
    global _PLAN
    _PLAN = plan


def disarm() -> None:
    """Remove the armed plan; every site returns to zero overhead."""
    global _PLAN
    _PLAN = None


def armed() -> bool:
    return _PLAN is not None


def ambient_seed() -> Optional[int]:
    """The armed plan's seed, or ``None`` — how a sweep parent reads
    the seed it was handed via ``REPRO_FAULTS=seed=N``."""
    plan = _PLAN
    return plan.seed if plan is not None else None


def action(site: str) -> Optional[str]:
    """Fire ``site``; returns a deferred action name or ``None``.

    Immediate faults raise/kill/sleep inside this call. Callers that
    cannot apply deferred actions use :func:`check` instead.
    """
    plan = _PLAN
    if plan is None:
        return None
    return plan.fire(site)


def check(site: str) -> None:
    """Fire ``site`` for its immediate faults only.

    Deferred (write-shaping / worker) actions are ignored here — a
    site checked through this helper has no write to shape.
    """
    plan = _PLAN
    if plan is None:
        return
    plan.fire(site)


def corrupt_offset(length: int) -> int:
    plan = _PLAN
    if plan is None:  # pragma: no cover - only called while armed
        return 0
    return plan.corrupt_offset(length)


def _bootstrap() -> None:
    """Arm from ``REPRO_FAULTS`` at import — the subprocess transport."""
    spec = os.environ.get("REPRO_FAULTS")
    if spec:
        arm(parse_spec(spec))


_bootstrap()
