"""Automatic parameter tuning (paper Section 10).

"Thus auto-tuning is an open problem, and a requirement for a robust
solution." Two tuners:

* :func:`auto_config` — deterministic heuristics from schema shape:
  ``cinc`` grows with schema depth (Table 1: "typically a function of
  maximum schema depth" — deep schemas give leaves more ancestor-driven
  increment opportunities, so each increment can be gentler; shallow
  ones need the increments the depth cannot supply), and the leaf-count
  pruning ratio is relaxed when referential constraints will add
  join-view nodes (whose leaf sets union two tables).
* :func:`tune_against_sample` — small grid search maximizing F1 on a
  user-validated sample mapping, the human-in-the-loop variant.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.datasets.gold import GoldMapping
from repro.model.schema import Schema
from repro.tree.construction import construct_schema_tree


def _schema_depth(schema: Schema) -> int:
    """Height of the expanded schema tree."""
    return construct_schema_tree(schema).root.subtree_depth()


def auto_config(
    source: Schema,
    target: Schema,
    base: Optional[CupidConfig] = None,
) -> CupidConfig:
    """Heuristic configuration from the shapes of the two schemas."""
    base = base or DEFAULT_CONFIG
    depth = max(2, min(_schema_depth(source), _schema_depth(target)))

    # Saturation heuristic: leaves under d levels of matching ancestors
    # see ~d increments (plus their own); to let a structure-only leaf
    # pair (lsim = 0) saturate ssim from 0.5 to 1.0 we need
    # cinc^d >= 2, i.e. cinc >= 2^(1/d) — with a safety margin for the
    # cdec hit a leaf pair takes from its own early comparison.
    saturating = 2.0 ** (1.0 / depth) / (base.cdec ** (1.0 / depth))
    cinc = max(base.cinc, min(1.5, round(saturating, 3)))

    # Join views union two tables' leaf sets, so comparing them against
    # a denormalized table routinely needs more than the 2× indicative
    # ratio (Orders ⋈ OrderDetails: 20 leaves vs Sales' 9).
    has_refints = bool(source.refint_elements() or target.refint_elements())
    leaf_ratio = max(base.leaf_count_ratio, 2.5) if has_refints else (
        base.leaf_count_ratio
    )

    return base.replace(cinc=cinc, leaf_count_ratio=leaf_ratio)


def tune_against_sample(
    source: Schema,
    target: Schema,
    sample: Iterable[Tuple[str, str]],
    base: Optional[CupidConfig] = None,
    cinc_grid: Sequence[float] = (1.2, 1.3, 1.4),
    wstruct_grid: Sequence[float] = (0.5, 0.55, 0.6),
    thesaurus=None,
) -> Tuple[CupidConfig, float]:
    """Grid-search (cinc × wstruct) maximizing *recall* on a sample.

    ``sample`` is a small set of user-confirmed (source path suffix,
    target path suffix) pairs — the same currency as initial mappings.
    Since the sample is a subset of the full truth, precision against
    it is not meaningful (correct-but-unsampled pairs would count as
    spurious); recall is the right objective. Returns (best config,
    best sample recall). Ties prefer values closest to the Table 1
    defaults (earlier grid entries).
    """
    from repro.core.cupid import CupidMatcher  # local: avoid cycle

    base = base or DEFAULT_CONFIG
    gold = GoldMapping.from_pairs(list(sample))
    if not len(gold):
        raise ValueError("tune_against_sample needs a non-empty sample")

    best_config = base
    best_recall = -1.0
    for cinc in cinc_grid:
        for wstruct in wstruct_grid:
            config = base.replace(cinc=cinc, wstruct=wstruct)
            matcher = CupidMatcher(thesaurus=thesaurus, config=config)
            result = matcher.match(source, target)
            found = gold.found_pairs(result.leaf_mapping)
            recall = len(found) / len(gold)
            if recall > best_recall + 1e-9:
                best_recall = recall
                best_config = config
    return best_config, best_recall
