"""End-to-end Cupid pipeline (paper Section 4).

"The coefficients ... are calculated in two phases": linguistic
matching produces ``lsim``; structural matching (TreeMatch over the
expanded schema trees) produces ``ssim``; their weighted mean ``wsim``
drives mapping generation. This module wires those phases together
behind one call:

>>> from repro import CupidMatcher
>>> matcher = CupidMatcher()
>>> result = matcher.match(source_schema, target_schema)  # doctest: +SKIP
>>> for element in result.leaf_mapping:                   # doctest: +SKIP
...     print(element)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.exceptions import MappingError
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.matcher import LinguisticMatcher, LsimTable
from repro.linguistic.thesaurus import Thesaurus
from repro.mapping.assignment import greedy_one_to_one
from repro.mapping.generator import MappingGenerator
from repro.mapping.mapping import Mapping
from repro.model.datatypes import TypeCompatibilityTable, default_compatibility_table
from repro.model.schema import Schema
from repro.structure.treematch import TreeMatch, TreeMatchResult
from repro.tree.construction import construct_schema_tree
from repro.tree.lazy import construct_schema_tree_lazy
from repro.tree.refint import augment_with_join_views
from repro.tree.schema_tree import SchemaTree, SchemaTreeNode

#: An initial-mapping hint: a (source, target) pair of containment
#: paths, each given as a dotted string ("POLines.Item.Qty") or a tuple
#: of names below the schema root.
PathLike = Union[str, Sequence[str]]
InitialMapping = Iterable[Tuple[PathLike, PathLike]]


@dataclass
class CupidResult:
    """All artifacts of one Cupid match run."""

    source_schema: Schema
    target_schema: Schema
    lsim_table: LsimTable
    source_tree: SchemaTree
    target_tree: SchemaTree
    treematch_result: TreeMatchResult
    leaf_mapping: Mapping
    nonleaf_mapping: Mapping
    #: Wall-clock seconds per pipeline phase (linguistic / trees /
    #: treematch / mapping), for benchmark and ``--stats`` reporting.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def mapping(self) -> Mapping:
        """Leaf + non-leaf mapping elements combined."""
        combined = Mapping(self.source_schema.name, self.target_schema.name)
        for element in self.leaf_mapping:
            combined.add(element)
        for element in self.nonleaf_mapping:
            combined.add(element)
        return combined

    def one_to_one(self) -> Mapping:
        """Greedy 1:1 extraction of the leaf mapping (Section 7)."""
        return greedy_one_to_one(self.leaf_mapping)

    def wsim(self, source_path: PathLike, target_path: PathLike) -> float:
        """Weighted similarity of two nodes addressed by path."""
        s = self._resolve(self.source_tree, source_path)
        t = self._resolve(self.target_tree, target_path)
        return self.treematch_result.wsim_of(s, t)

    def lsim(self, source_path: PathLike, target_path: PathLike) -> float:
        s = self._resolve(self.source_tree, source_path)
        t = self._resolve(self.target_tree, target_path)
        return self.lsim_table.get(s.element, t.element)

    @staticmethod
    def _resolve(tree: SchemaTree, path: PathLike) -> SchemaTreeNode:
        parts = _path_parts(path)
        return tree.node_for_path(*parts)


def _path_parts(path: PathLike) -> Tuple[str, ...]:
    if isinstance(path, str):
        return tuple(p for p in path.split(".") if p)
    return tuple(path)


class CupidMatcher:
    """The Cupid generic schema matcher.

    Parameters
    ----------
    thesaurus:
        Linguistic knowledge; defaults to the bundled lexicon. Pass
        :func:`repro.linguistic.thesaurus.empty_thesaurus` to reproduce
        the no-thesaurus ablation.
    config:
        Control parameters (Table 1 defaults).
    compat:
        Data-type compatibility table.
    """

    def __init__(
        self,
        thesaurus: Optional[Thesaurus] = None,
        config: Optional[CupidConfig] = None,
        compat: Optional[TypeCompatibilityTable] = None,
    ) -> None:
        self.thesaurus = thesaurus if thesaurus is not None else builtin_thesaurus()
        self.config = config or DEFAULT_CONFIG
        self.config.validate()
        self.compat = compat or default_compatibility_table()
        self.linguistic = LinguisticMatcher(self.thesaurus, self.config)
        self.treematch = TreeMatch(self.config, self.compat)
        self.generator = MappingGenerator(self.config)

    def match(
        self,
        source: Schema,
        target: Schema,
        initial_mapping: Optional[InitialMapping] = None,
    ) -> CupidResult:
        """Match ``source`` against ``target`` and return all artifacts.

        ``initial_mapping`` implements Section 8.4's user-interaction
        hook: the linguistic similarity of hinted pairs is raised to
        ``config.initial_mapping_lsim`` before structure matching, so
        a corrected result map can be fed back in for a better re-run.
        """
        phase_start = time.perf_counter()
        lsim_table = self.linguistic.compute(source, target)
        linguistic_time = time.perf_counter() - phase_start

        phase_start = time.perf_counter()
        build = (
            construct_schema_tree_lazy
            if self.config.lazy_expansion
            else construct_schema_tree
        )
        source_tree = build(source)
        target_tree = build(target)
        if self.config.use_refint_joins:
            augment_with_join_views(source_tree)
            augment_with_join_views(target_tree)

        if initial_mapping:
            self._apply_initial_mapping(
                lsim_table, source_tree, target_tree, initial_mapping
            )
        tree_time = time.perf_counter() - phase_start

        phase_start = time.perf_counter()
        tm_result = self.treematch.run(source_tree, target_tree, lsim_table)
        treematch_time = time.perf_counter() - phase_start

        phase_start = time.perf_counter()
        leaf_mapping = self.generator.leaf_mapping(tm_result)
        nonleaf_mapping = self.generator.nonleaf_mapping(
            tm_result, self.treematch
        )
        mapping_time = time.perf_counter() - phase_start
        return CupidResult(
            source_schema=source,
            target_schema=target,
            lsim_table=lsim_table,
            source_tree=source_tree,
            target_tree=target_tree,
            treematch_result=tm_result,
            leaf_mapping=leaf_mapping,
            nonleaf_mapping=nonleaf_mapping,
            timings={
                "linguistic": linguistic_time,
                "trees": tree_time,
                "treematch": treematch_time,
                "mapping": mapping_time,
            },
        )

    def run_stats(self, result: CupidResult) -> Dict[str, object]:
        """Counter dump for one match run (``python -m repro ... --stats``).

        Collects the TreeMatch pair counters, the dense store's shape,
        and the linguistic memo's hit rates — the numbers to eyeball
        when a perf regression needs triage.
        """
        tm = result.treematch_result
        sims = tm.sims
        stats: Dict[str, object] = {
            "engine": self.config.engine,
            "compared_pairs": tm.compared_pairs,
            "pruned_pairs": tm.pruned_pairs,
            "scaled_pairs": tm.scaled_pairs,
            "lsim_entries": len(result.lsim_table),
            "leaf_mappings": len(result.leaf_mapping),
            "nonleaf_mappings": len(result.nonleaf_mapping),
        }
        describe = getattr(sims, "describe", None)
        if describe is not None:
            stats.update(describe())
        memo = self.linguistic.memo
        if memo is not None:
            stats.update(memo.stats())
        for phase, seconds in result.timings.items():
            stats[f"time_{phase}_ms"] = round(seconds * 1000.0, 3)
        return stats

    def _apply_initial_mapping(
        self,
        lsim_table: LsimTable,
        source_tree: SchemaTree,
        target_tree: SchemaTree,
        initial_mapping: InitialMapping,
    ) -> None:
        value = self.config.initial_mapping_lsim
        for source_path, target_path in initial_mapping:
            try:
                s = source_tree.node_for_path(*_path_parts(source_path))
                t = target_tree.node_for_path(*_path_parts(target_path))
            except KeyError as exc:
                raise MappingError(
                    f"initial mapping refers to unknown path: {exc}"
                ) from exc
            lsim_table.set(s.element, t.element, value)
