"""The Cupid matcher facade (paper Section 4).

"The coefficients ... are calculated in two phases": linguistic
matching produces ``lsim``; structural matching (TreeMatch over the
expanded schema trees) produces ``ssim``; their weighted mean ``wsim``
drives mapping generation. Those phases now live as substitutable
stages in :mod:`repro.pipeline`; :class:`CupidMatcher` is the thin
backward-compatible facade over the default stage sequence:

>>> from repro import CupidMatcher
>>> matcher = CupidMatcher()
>>> result = matcher.match(source_schema, target_schema)  # doctest: +SKIP
>>> for element in result.leaf_mapping:                   # doctest: +SKIP
...     print(element)

For batch or iterative workloads prefer :class:`repro.MatchSession`,
which caches per-schema preparation across matches; for custom phase
sequences build a :class:`repro.MatchPipeline` directly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import CupidConfig
from repro.linguistic.thesaurus import Thesaurus
from repro.model.datatypes import TypeCompatibilityTable
from repro.model.schema import Schema
from repro.pipeline.context import InitialMapping, PathLike
from repro.pipeline.pipeline import MatchPipeline
from repro.pipeline.result import CupidResult

__all__ = ["CupidMatcher", "CupidResult", "InitialMapping", "PathLike"]


class CupidMatcher:
    """The Cupid generic schema matcher.

    A facade over ``MatchPipeline.default()``: one instance per
    configuration, ``match`` per schema pair. The pipeline's shared
    components stay reachable as ``linguistic`` / ``treematch`` /
    ``generator`` for introspection.

    Parameters
    ----------
    thesaurus:
        Linguistic knowledge; defaults to the bundled lexicon. Pass
        :func:`repro.linguistic.thesaurus.empty_thesaurus` to reproduce
        the no-thesaurus ablation.
    config:
        Control parameters (Table 1 defaults).
    compat:
        Data-type compatibility table.
    """

    def __init__(
        self,
        thesaurus: Optional[Thesaurus] = None,
        config: Optional[CupidConfig] = None,
        compat: Optional[TypeCompatibilityTable] = None,
    ) -> None:
        self.pipeline = MatchPipeline.default(
            thesaurus=thesaurus, config=config, compat=compat
        )
        self.thesaurus = self.pipeline.thesaurus
        self.config = self.pipeline.config
        self.compat = self.pipeline.compat
        self.linguistic = self.pipeline.linguistic
        self.treematch = self.pipeline.treematch
        self.generator = self.pipeline.generator

    def match(
        self,
        source: Schema,
        target: Schema,
        initial_mapping: Optional[InitialMapping] = None,
    ) -> CupidResult:
        """Match ``source`` against ``target`` and return all artifacts.

        ``initial_mapping`` implements Section 8.4's user-interaction
        hook: the linguistic similarity of hinted pairs is raised to
        ``config.initial_mapping_lsim`` before structure matching, so
        a corrected result map can be fed back in for a better re-run.
        """
        return self.pipeline.run(
            source, target, initial_mapping=initial_mapping
        )

    def run_stats(self, result: CupidResult) -> Dict[str, object]:
        """Counter dump for one match run (``python -m repro ... --stats``)."""
        return self.pipeline.run_stats(result)
