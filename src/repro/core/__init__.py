"""The Cupid matcher facade — the paper's primary contribution."""

from repro.core.cupid import CupidMatcher, CupidResult

__all__ = ["CupidMatcher", "CupidResult"]
