"""Schema-tree construction (Figure 4 of the paper).

Pre-order traversal of the schema graph that materializes one tree node
per containment path and performs *type substitution*: when an element
is reached through an IsDerivedFrom relationship, no node is created
for the type itself — its members are expanded in place under the
deriving element. Elements tagged not-instantiated (keys, RefInt
scaffolding) are skipped.

Cycles of containment/IsDerivedFrom (recursive types) make construction
fail with :class:`CyclicSchemaError`, matching the paper's explicit
deferral of cyclic schemas.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.exceptions import CyclicSchemaError
from repro.model.element import SchemaElement
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema
from repro.tree.schema_tree import SchemaTree, SchemaTreeNode


def construct_schema_tree(schema: Schema) -> SchemaTree:
    """Expand ``schema`` into a schema tree (Figure 4).

    Returns a :class:`SchemaTree` whose nodes wrap the graph's
    elements; a shared type used in *k* contexts yields *k* node
    subtrees, all wrapping the same underlying elements (so linguistic
    similarity is shared while structural similarity is per-context).
    """
    root_node = SchemaTreeNode(schema.root)
    _construct(schema, schema.root, root_node, via_containment=True,
               in_progress=set(), is_root=True)
    return SchemaTree(schema, root_node)


def _construct(
    schema: Schema,
    current_se: SchemaElement,
    current_stn: SchemaTreeNode,
    via_containment: bool,
    in_progress: Set[str],
    is_root: bool = False,
) -> None:
    """Recursive helper mirroring Figure 4's construct_schema_tree.

    ``current_stn`` is the tree node the expansion of ``current_se``'s
    members should attach to. When ``current_se`` was reached through
    containment (and is instantiated), a fresh node for it was already
    created by the caller; when reached through IsDerivedFrom, members
    attach directly to the deriving element's node (type substitution).
    """
    if current_se.element_id in in_progress:
        raise CyclicSchemaError(
            f"recursive type definition through {current_se.name!r} in "
            f"schema {schema.name!r}; cyclic schemas are not supported "
            "(paper Section 8.2)"
        )
    in_progress.add(current_se.element_id)
    try:
        for kind in (RelationshipKind.CONTAINMENT,
                     RelationshipKind.IS_DERIVED_FROM):
            for target in _outgoing(schema, current_se, kind):
                if kind is RelationshipKind.CONTAINMENT:
                    if target.not_instantiated:
                        # Keys, shared-type declarations, RefInt
                        # scaffolding: ignored during construction.
                        continue
                    child_node = SchemaTreeNode(target)
                    current_stn.add_child(child_node)
                    _construct(schema, target, child_node,
                               via_containment=True, in_progress=in_progress)
                else:
                    # IsDerivedFrom: substitute the type's members in
                    # place — no node for the type element itself.
                    _construct(schema, target, current_stn,
                               via_containment=False, in_progress=in_progress)
    finally:
        in_progress.discard(current_se.element_id)


def _outgoing(
    schema: Schema, element: SchemaElement, kind: RelationshipKind
) -> List[SchemaElement]:
    if kind is RelationshipKind.CONTAINMENT:
        return schema.contained_children(element)
    return schema.derived_bases(element)
