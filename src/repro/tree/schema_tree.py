"""Schema tree nodes and the tree/DAG container.

Each :class:`SchemaTreeNode` wraps one schema element *in one context*:
a shared type referenced from two places expands to two tree nodes
wrapping clones of the same elements, which is exactly what lets Cupid
produce context-dependent mappings (Section 8.2).

Join-view augmentation (Section 8.3) later attaches existing column
nodes as children of new join-view nodes, turning the tree into a DAG:
nodes can have one *primary* parent (their containment context, used
for paths) plus any number of extra parents.

Interval encoding
-----------------

"Which leaves lie under node n" is the question TreeMatch asks on every
strong-link count and cinc/cdec adjustment. Instead of caching per-node
leaf tuples (a design whose manual invalidation discipline hid a whole
class of stale-cache bugs), :meth:`SchemaTree.reindex` stamps the
XPath-accelerator window encoding onto every node once per structural
version of the tree:

* ``pre`` — position in the deduplicated first-visit pre-order DFS
  from the root (the traversal that also defines the global leaf
  order, i.e. the :class:`~repro.structure.dense.LeafLayout` row and
  column order);
* ``post`` — position in :meth:`SchemaTree.postorder`;
* ``level`` — depth along primary parents (root = 0);
* ``subtree_size`` — number of *distinct* nodes in the subtree;
* ``leaf_lo``/``leaf_hi`` — the subtree's leaves as the contiguous
  window ``[leaf_lo, leaf_hi)`` of the global leaf order. Set for
  every *pure* node (no proper descendant has extra parents: the
  global DFS enters such a subtree exactly once, so its leaves are
  numbered consecutively by construction) and for the root (whose
  leaf set is the whole order by definition). Impure DAG nodes carry
  an ascending gather tuple ``_leaf_ids`` instead.

Required-optional flags reduce to one comparison per leaf: the
encoding records, per node, the maximum level of any optional node on
its primary root path (self included; -1 when none). For a pure node
``n`` — whose subtree paths are exactly the primary-parent chains — a
leaf ``x`` is required from ``n`` iff ``opt_level(x) <= n.level``:
ancestors of ``n`` sit at strictly smaller levels, descendants at
strictly larger ones, so the comparison asks precisely "is there an
optional node strictly below n on the path to x". Depth-pruned
frontiers (Section 8.4 "Pruning leaves") become shrunken-window scans:
walk ``pre`` positions inside the subtree window and skip a stand-in's
whole ``subtree_size`` span.

Mutation never invalidates by hand: :meth:`SchemaTreeNode.add_child`
and :meth:`add_shared_child` *unindex* the mutated ancestry (DAG-safe
walk over primary + extra parents), and every accessor falls back to a
fresh DFS when a node is unindexed. A missed :meth:`SchemaTree.reindex`
therefore costs speed, never correctness — the failure mode the old
``invalidate_leaf_caches`` machinery could not offer. Nodes outside the
mutated ancestry keep their stamp: their leaf sets are unchanged and
the window still resolves against the encoding it was minted with.

``REPRO_INTERVAL_ORACLE=1`` makes every reindex cross-check itself
against independently recomputed descendant sets
(:func:`verify_interval_encoding`); the fuzz parity suite and
repository ``verify`` run the same oracle unconditionally.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import SchemaError
from repro.model.datatypes import DataType
from repro.model.element import SchemaElement
from repro.model.schema import Schema

_node_counter = itertools.count(1)


class _TreeEncoding:
    """One :meth:`SchemaTree.reindex` pass's tree-wide tables.

    Shared by every node stamped in that pass; a node's ``_enc``
    reference doubles as its validity flag (mutation resets it to
    None). ``leaves`` is the global leaf order; ``leaf_opt`` aligns
    with it; ``pre_nodes`` is the full pre-order node sequence with
    ``node_opt`` aligned to it (max optional level on the primary
    root path, -1 when the path has no optional node).
    """

    __slots__ = ("leaves", "leaf_opt", "pre_nodes", "node_opt")

    def __init__(
        self,
        leaves: Tuple["SchemaTreeNode", ...],
        leaf_opt: List[int],
        pre_nodes: Tuple["SchemaTreeNode", ...],
        node_opt: List[int],
    ) -> None:
        self.leaves = leaves
        self.leaf_opt = leaf_opt
        self.pre_nodes = pre_nodes
        self.node_opt = node_opt


class SchemaTreeNode:
    """One element occurrence in the expanded schema tree."""

    __slots__ = (
        "element",
        "parent",
        "extra_parents",
        "children",
        "node_id",
        "is_join_view",
        "pre",
        "post",
        "level",
        "subtree_size",
        "pure",
        "leaf_lo",
        "leaf_hi",
        "_leaf_ids",
        "_enc",
    )

    def __init__(
        self,
        element: SchemaElement,
        parent: Optional["SchemaTreeNode"] = None,
        is_join_view: bool = False,
    ) -> None:
        self.element = element
        self.parent = parent
        self.extra_parents: List["SchemaTreeNode"] = []
        self.children: List["SchemaTreeNode"] = []
        self.node_id: int = next(_node_counter)
        self.is_join_view = is_join_view
        # Interval encoding (see module docstring); -1 / None until the
        # owning SchemaTree's reindex() stamps this node.
        self.pre: int = -1
        self.post: int = -1
        self.level: int = -1
        self.subtree_size: int = 0
        self.pure: bool = False
        self.leaf_lo: int = -1
        self.leaf_hi: int = -1
        self._leaf_ids: Optional[Tuple[int, ...]] = None
        self._enc: Optional[_TreeEncoding] = None

    # -- element passthroughs ------------------------------------------------

    @property
    def name(self) -> str:
        return self.element.name

    @property
    def data_type(self) -> Optional[DataType]:
        return self.element.data_type

    @property
    def optional(self) -> bool:
        return self.element.optional

    @property
    def is_leaf(self) -> bool:
        return not self.children

    # -- structure -----------------------------------------------------------

    def add_child(self, child: "SchemaTreeNode") -> None:
        """Attach ``child`` with this node as primary parent."""
        if child.parent is not None:
            raise ValueError(
                f"{child!r} already has a primary parent {child.parent!r}"
            )
        child.parent = self
        self.children.append(child)
        self._unindex_ancestry()

    def add_shared_child(self, child: "SchemaTreeNode") -> None:
        """Attach an *existing* node as an extra child (join views)."""
        self.children.append(child)
        child.extra_parents.append(self)
        self._unindex_ancestry()

    def _unindex_ancestry(self) -> None:
        """Drop the interval stamp here and on every ancestor (all
        parents — the mutation changes their subtrees too). DAG-safe
        via visited set. Unindexed nodes answer through the DFS
        fallbacks until the next :meth:`SchemaTree.reindex`."""
        seen: Set[int] = set()
        stack: List[SchemaTreeNode] = [self]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            node._enc = None
            node.pre = -1
            if node.parent is not None:
                stack.append(node.parent)
            stack.extend(node.extra_parents)

    def path(self) -> Tuple[str, ...]:
        """Names from the root to this node along primary parents."""
        parts: List[str] = []
        node: Optional[SchemaTreeNode] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return tuple(reversed(parts))

    def path_string(self) -> str:
        return ".".join(self.path())

    def leaves(self) -> Tuple["SchemaTreeNode", ...]:
        """Leaf nodes of the subtree rooted here (deduped).

        "leaves(s) = set of leaves in the subtree rooted at s"
        (Section 6). Indexed nodes answer from the interval encoding:
        a window slice of the global leaf order (for the root, the
        order itself — also the LeafLayout row/column order), or the
        gather tuple for impure DAG nodes (ascending global order).
        Unindexed nodes fall back to a fresh DFS in discovery order.
        """
        enc = self._enc
        if enc is not None:
            if self._leaf_ids is not None:
                all_leaves = enc.leaves
                return tuple(all_leaves[i] for i in self._leaf_ids)
            if self.leaf_lo == 0 and self.leaf_hi == len(enc.leaves):
                return enc.leaves
            return enc.leaves[self.leaf_lo:self.leaf_hi]
        if not self.children:
            return (self,)
        collected: List[SchemaTreeNode] = []
        stack: List[SchemaTreeNode] = [self]
        visited: Set[int] = set()
        while stack:
            node = stack.pop()
            if node.node_id in visited:
                continue
            visited.add(node.node_id)
            if not node.children:
                collected.append(node)
            else:
                stack.extend(reversed(node.children))
        return tuple(collected)

    def leaf_count(self) -> int:
        enc = self._enc
        if enc is not None:
            if self._leaf_ids is not None:
                return len(self._leaf_ids)
            return self.leaf_hi - self.leaf_lo
        return len(self.leaves())

    def leaves_with_required_flag(self) -> Dict["SchemaTreeNode", bool]:
        """Map each leaf of this subtree to a *required* flag.

        Section 8.4 ("Optionality"): "A leaf is optional if it has at
        least one optional node on each path from n to the leaf."
        Equivalently, a leaf is required iff some path from here to it
        traverses no optional node (the starting node's own optionality
        does not count — it is the context, not the path).

        For pure indexed nodes this is one comparison per window
        position (``opt_level(leaf) <= self.level``, see the module
        docstring); impure DAG nodes — where a leaf may be reachable
        along several paths and the least-optional one wins — and
        unindexed nodes use the DFS. Callers must treat the returned
        dict as read-only; TreeMatch memoizes it per pass.
        """
        enc = self._enc
        if enc is not None and self.pure and self._leaf_ids is None:
            all_leaves = enc.leaves
            leaf_opt = enc.leaf_opt
            level = self.level
            return {
                all_leaves[i]: leaf_opt[i] <= level
                for i in range(self.leaf_lo, self.leaf_hi)
            }
        return self._required_flags_dfs()

    def _required_flags_dfs(self) -> Dict["SchemaTreeNode", bool]:
        """Reference required-flag computation (any node, any state)."""
        required: Dict[SchemaTreeNode, bool] = {}
        stack: List[Tuple[SchemaTreeNode, bool]] = [(self, False)]
        # Track the best (least-optional) way each node was reached so a
        # node revisited via a required path upgrades its leaves.
        best: Dict[int, bool] = {}
        while stack:
            node, saw_optional = stack.pop()
            previous = best.get(node.node_id)
            if previous is not None and previous <= saw_optional:
                continue  # already reached at least as cleanly
            best[node.node_id] = saw_optional
            if not node.children and node is not self:
                is_required = not saw_optional
                required[node] = required.get(node, False) or is_required
                continue
            if not node.children and node is self:
                required[node] = not saw_optional
                continue
            for child in node.children:
                stack.append((child, saw_optional or child.optional))
        return required

    def pruned_frontier(
        self, depth_limit: int
    ) -> Dict["SchemaTreeNode", bool]:
        """Effective leaves cut at ``depth_limit`` (Section 8.4
        "Pruning leaves"): leaves shallower than the limit plus the
        nodes at exactly that depth standing in for their subtrees,
        each with its required flag relative to this node.

        Pure indexed nodes scan their pre-order window and *shrink*
        it around stand-ins (skip ``subtree_size`` positions — the
        DMR-XPath shrunken-window trick); everything else uses the
        reference DFS.
        """
        if depth_limit <= 0:
            return self.leaves_with_required_flag()
        enc = self._enc
        if enc is None or not self.pure or self._leaf_ids is not None:
            return self._frontier_dfs(depth_limit)
        pre_nodes = enc.pre_nodes
        node_opt = enc.node_opt
        base_level = self.level
        cutoff = base_level + depth_limit
        frontier: Dict[SchemaTreeNode, bool] = {}
        i = self.pre
        end = self.pre + self.subtree_size
        while i < end:
            node = pre_nodes[i]
            if node.level >= cutoff:
                # Stand-in for its whole (pure) subtree: include it and
                # jump the window past its descendants.
                frontier[node] = node_opt[i] <= base_level
                i += node.subtree_size
                continue
            if not node.children:
                frontier[node] = node_opt[i] <= base_level
            i += 1
        return frontier

    def _frontier_dfs(
        self, depth_limit: int
    ) -> Dict["SchemaTreeNode", bool]:
        """Reference depth-pruned frontier (any node, any state)."""
        frontier: Dict[SchemaTreeNode, bool] = {}
        stack: List[Tuple[SchemaTreeNode, int, bool]] = [(self, 0, False)]
        while stack:
            current, depth, saw_optional = stack.pop()
            if not current.children or depth == depth_limit:
                required = not saw_optional
                frontier[current] = frontier.get(current, False) or required
                continue
            for child in current.children:
                stack.append(
                    (child, depth + 1, saw_optional or child.optional)
                )
        return frontier

    def iter_subtree(self) -> Iterator["SchemaTreeNode"]:
        """All nodes of this subtree (pre-order, deduped for DAGs)."""
        visited: Set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.node_id in visited:
                continue
            visited.add(node.node_id)
            yield node
            stack.extend(reversed(node.children))

    def subtree_depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if not self.children:
            return 0
        return 1 + max(child.subtree_depth() for child in self.children)

    def __repr__(self) -> str:
        marker = " (join)" if self.is_join_view else ""
        return f"<TreeNode {self.path_string()}{marker} n{self.node_id}>"


class SchemaTree:
    """The expanded schema tree (or DAG, after join-view augmentation)."""

    def __init__(self, schema: Schema, root: SchemaTreeNode) -> None:
        self.schema = schema
        self.root = root
        self.encoding: Optional[_TreeEncoding] = None
        self.reindex()

    def nodes(self) -> List[SchemaTreeNode]:
        """All nodes reachable from the root, pre-order, deduped."""
        return list(self.root.iter_subtree())

    def postorder(self) -> List[SchemaTreeNode]:
        """Deterministic inverse-topological (post-order) enumeration.

        For plain trees this is the unique post-order the paper uses.
        After join-view augmentation the structure is a DAG and
        post-order is no longer unique (the non-Church-Rosser caveat of
        Section 8.3); we fix determinism by visiting children in
        insertion order, which — because join views are appended after
        the ordinary children — compares join views after the tables
        they join, the ordering the paper suggests.
        """
        order: List[SchemaTreeNode] = []
        visited: Set[int] = set()
        # Iterative DFS with explicit phase to get true post-order.
        stack: List[Tuple[SchemaTreeNode, bool]] = [(self.root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if node.node_id in visited:
                continue
            visited.add(node.node_id)
            stack.append((node, True))
            for child in reversed(node.children):
                if child.node_id not in visited:
                    stack.append((child, False))
        return order

    def leaves(self) -> List[SchemaTreeNode]:
        return list(self.root.leaves())

    def node_for_path(self, *names: str) -> SchemaTreeNode:
        """Resolve a node by its name path below the root."""
        node = self.root
        for step in names:
            matches = [c for c in node.children if c.name == step]
            if len(matches) != 1:
                raise KeyError(
                    f"path step {step!r} under {node.path_string()!r} matched "
                    f"{len(matches)} children"
                )
            node = matches[0]
        return node

    def reindex(self) -> None:
        """(Re)compute the interval encoding for the current structure.

        Called at construction and after structural mutation batches
        (:func:`repro.tree.refint.augment_with_join_views`). Safe to
        skip after a mutation — unindexed nodes fall back to DFS — and
        safe to call repeatedly. ``REPRO_INTERVAL_ORACLE=1`` makes each
        pass verify itself against independent recomputation.
        """
        root = self.root
        # Pass 1 — global first-visit pre-order: assigns ``pre``,
        # collects the leaf order (this exact traversal is what
        # LeafLayout rows/columns are built from), resets levels.
        pre_nodes: List[SchemaTreeNode] = []
        leaves: List[SchemaTreeNode] = []
        visited: Set[int] = set()
        stack: List[SchemaTreeNode] = [root]
        while stack:
            node = stack.pop()
            if node.node_id in visited:
                continue
            visited.add(node.node_id)
            node.pre = len(pre_nodes)
            node.level = -1
            pre_nodes.append(node)
            if not node.children:
                node.leaf_lo = len(leaves)
                node.leaf_hi = len(leaves) + 1
                leaves.append(node)
            else:
                stack.extend(reversed(node.children))

        # Pass 2 — levels and optional-depths along primary chains
        # (chain-walk with memoization; construction order of the DAG
        # puts no useful bound on parent-before-child in pre-order).
        node_opt = [-1] * len(pre_nodes)
        root.level = 0
        node_opt[root.pre] = 0 if root.optional else -1
        for node in pre_nodes:
            if node.level >= 0:
                continue
            chain = [node]
            walker = node.parent
            while (
                walker is not None
                and walker.node_id in visited
                and walker.level < 0
            ):
                chain.append(walker)
                walker = walker.parent
            if walker is None or walker.node_id not in visited:
                base_level = -1  # detached chain head acts as a root
                base_opt = -1
            else:
                base_level = walker.level
                base_opt = node_opt[walker.pre]
            for link in reversed(chain):
                base_level += 1
                link.level = base_level
                if link.optional:
                    base_opt = base_level
                node_opt[link.pre] = base_opt
        leaf_opt = [node_opt[leaf.pre] for leaf in leaves]

        # Pass 3 — bottom-up over the post-order: ``post`` ids, purity,
        # subtree sizes, and leaf windows. A node is *pure* when no
        # proper descendant has extra parents (then child windows are
        # disjoint and adjacent, so the window is the children's union
        # and sizes simply add). Impure DAG nodes get an explicit
        # distinct-leaf gather tuple in ascending global order.
        for post, node in enumerate(self.postorder()):
            node.post = post
            children = node.children
            if not children:
                node.pure = True
                node.subtree_size = 1
                node._leaf_ids = None
                continue  # leaf window assigned in pass 1
            pure = True
            seen_children: Set[int] = set()
            for child in children:
                if child.node_id in seen_children:
                    pure = False  # duplicate edge: leaf sets overlap
                    continue
                seen_children.add(child.node_id)
                if child.extra_parents or not child.pure:
                    pure = False
            if pure:
                lo = min(child.leaf_lo for child in children)
                hi = max(child.leaf_hi for child in children)
                total = sum(
                    child.leaf_hi - child.leaf_lo for child in children
                )
                if hi - lo != total:
                    pure = False  # windows not adjacent: demote
                else:
                    node.pure = True
                    node.subtree_size = 1 + sum(
                        child.subtree_size for child in children
                    )
                    node.leaf_lo = lo
                    node.leaf_hi = hi
                    node._leaf_ids = None
            if not pure:
                node.pure = False
                count = 0
                gather: List[int] = []
                seen: Set[int] = set()
                walk: List[SchemaTreeNode] = [node]
                while walk:
                    current = walk.pop()
                    if current.node_id in seen:
                        continue
                    seen.add(current.node_id)
                    count += 1
                    if not current.children:
                        gather.append(current.leaf_lo)
                    else:
                        walk.extend(current.children)
                gather.sort()
                node.subtree_size = count
                node._leaf_ids = tuple(gather)
                node.leaf_lo = -1
                node.leaf_hi = -1

        # The root's leaf set IS the global order, pure or not: give it
        # the full window so LeafLayout construction and per-root block
        # addressing stay O(1) on DAGs too. (Purity still gates the
        # required-flag arithmetic, which needs unique paths.)
        root.leaf_lo = 0
        root.leaf_hi = len(leaves)
        root._leaf_ids = None

        enc = _TreeEncoding(tuple(leaves), leaf_opt, tuple(pre_nodes), node_opt)
        for node in pre_nodes:
            node._enc = enc
        self.encoding = enc

        if os.environ.get("REPRO_INTERVAL_ORACLE"):
            verify_interval_encoding(self)

    def __len__(self) -> int:
        return len(self.nodes())

    def __repr__(self) -> str:
        return f"<SchemaTree of {self.schema.name!r}: {len(self)} nodes>"


# ----------------------------------------------------------------------
# Migration oracle
# ----------------------------------------------------------------------

def _oracle_leaves(node: SchemaTreeNode) -> List[SchemaTreeNode]:
    """Independent dedup-DFS leaf collection (discovery order)."""
    collected: List[SchemaTreeNode] = []
    seen: Set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.node_id in seen:
            continue
        seen.add(current.node_id)
        if not current.children:
            collected.append(current)
        else:
            stack.extend(reversed(current.children))
    return collected


def _oracle_subtree(node: SchemaTreeNode) -> Set[int]:
    """Independent distinct-descendant id set (self included)."""
    seen: Set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.node_id in seen:
            continue
        seen.add(current.node_id)
        stack.extend(current.children)
    return seen


def verify_interval_encoding(tree: SchemaTree) -> None:
    """Cross-check the interval encoding against independent DFS.

    For every node: leaf sets, leaf counts, required flags, pruned
    frontiers (depths 1-3), subtree sizes, levels, and the purity
    claim are recomputed from the raw parent/child structure and
    compared with what the encoded accessors answer. Raises
    :class:`~repro.exceptions.SchemaError` on the first divergence.

    This is the migration oracle the fuzz parity suite and
    ``SchemaRepository.verify`` run on every generated tree/DAG, and
    what ``REPRO_INTERVAL_ORACLE=1`` arms on every reindex.
    """

    def fail(node: SchemaTreeNode, what: str) -> None:
        raise SchemaError(
            f"interval encoding mismatch at {node.path_string()!r} "
            f"(n{node.node_id}): {what}"
        )

    enc = tree.encoding
    root = tree.root
    by_id = {node.node_id: node for node in tree.nodes()}
    for node in by_id.values():
        expected_leaves = _oracle_leaves(node)
        got_leaves = node.leaves()
        if len(got_leaves) != len(set(got_leaves)):
            fail(node, "duplicate entries in leaves()")
        if set(got_leaves) != set(expected_leaves):
            fail(node, "leaves() set diverges from descendant DFS")
        if node.leaf_count() != len(expected_leaves):
            fail(node, "leaf_count() diverges from descendant DFS")
        if node is root and list(got_leaves) != expected_leaves:
            fail(node, "root leaves() must preserve global DFS order")
        if (
            node._enc is not None
            and node.pure
            and list(got_leaves) != expected_leaves
        ):
            # A pure window is the DFS order by construction.
            fail(node, "pure-window leaves() diverge from DFS order")

        if node.leaves_with_required_flag() != node._required_flags_dfs():
            fail(node, "required flags diverge from reference DFS")
        for depth in (1, 2, 3):
            if node.pruned_frontier(depth) != node._frontier_dfs(depth):
                fail(node, f"depth-{depth} frontier diverges from DFS")

        if node._enc is None:
            continue  # unindexed: DFS fallbacks already verified above
        if node._enc is not enc:
            fail(node, "stamped with a stale encoding")
        subtree = _oracle_subtree(node)
        if node.subtree_size != len(subtree):
            fail(node, "subtree_size diverges from distinct DFS count")
        if enc.pre_nodes[node.pre] is not node:
            fail(node, "pre index does not resolve back to the node")
        depth = 0
        walker = node
        while walker.parent is not None:
            depth += 1
            walker = walker.parent
        if node.level != depth:
            fail(node, "level diverges from primary-chain depth")
        if node.pure and any(
            by_id[other_id].extra_parents
            for other_id in subtree
            if other_id != node.node_id
        ):
            fail(node, "pure node has extra-parented descendant")
