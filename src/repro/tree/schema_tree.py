"""Schema tree nodes and the tree/DAG container.

Each :class:`SchemaTreeNode` wraps one schema element *in one context*:
a shared type referenced from two places expands to two tree nodes
wrapping clones of the same elements, which is exactly what lets Cupid
produce context-dependent mappings (Section 8.2).

Join-view augmentation (Section 8.3) later attaches existing column
nodes as children of new join-view nodes, turning the tree into a DAG:
nodes can have one *primary* parent (their containment context, used
for paths) plus any number of extra parents.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.model.datatypes import DataType
from repro.model.element import SchemaElement
from repro.model.schema import Schema

_node_counter = itertools.count(1)


class SchemaTreeNode:
    """One element occurrence in the expanded schema tree."""

    __slots__ = (
        "element",
        "parent",
        "extra_parents",
        "children",
        "node_id",
        "is_join_view",
        "_leaves_cache",
        "_required_cache",
        "_frontier_cache",
    )

    def __init__(
        self,
        element: SchemaElement,
        parent: Optional["SchemaTreeNode"] = None,
        is_join_view: bool = False,
    ) -> None:
        self.element = element
        self.parent = parent
        self.extra_parents: List["SchemaTreeNode"] = []
        self.children: List["SchemaTreeNode"] = []
        self.node_id: int = next(_node_counter)
        self.is_join_view = is_join_view
        self._leaves_cache: Optional[Tuple["SchemaTreeNode", ...]] = None
        self._required_cache: Optional[Dict["SchemaTreeNode", bool]] = None
        # (depth_limit, frontier) for TreeMatch's depth-k leaf pruning.
        self._frontier_cache: Optional[
            Tuple[int, Dict["SchemaTreeNode", bool]]
        ] = None

    # -- element passthroughs ------------------------------------------------

    @property
    def name(self) -> str:
        return self.element.name

    @property
    def data_type(self) -> Optional[DataType]:
        return self.element.data_type

    @property
    def optional(self) -> bool:
        return self.element.optional

    @property
    def is_leaf(self) -> bool:
        return not self.children

    # -- structure -----------------------------------------------------------

    def add_child(self, child: "SchemaTreeNode") -> None:
        """Attach ``child`` with this node as primary parent."""
        if child.parent is not None:
            raise ValueError(
                f"{child!r} already has a primary parent {child.parent!r}"
            )
        child.parent = self
        self.children.append(child)
        self._invalidate_ancestry_caches()

    def add_shared_child(self, child: "SchemaTreeNode") -> None:
        """Attach an *existing* node as an extra child (join views)."""
        self.children.append(child)
        child.extra_parents.append(self)
        self._invalidate_ancestry_caches()

    def _invalidate_own_caches(self) -> None:
        self._leaves_cache = None
        self._required_cache = None
        self._frontier_cache = None

    def _invalidate_ancestry_caches(self) -> None:
        """Clear leaf/required/frontier caches here and on every
        ancestor (all parents — the mutation changes their subtrees
        too). DAG-safe via visited set."""
        seen: Set[int] = set()
        stack: List[SchemaTreeNode] = [self]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            node._invalidate_own_caches()
            if node.parent is not None:
                stack.append(node.parent)
            stack.extend(node.extra_parents)

    def path(self) -> Tuple[str, ...]:
        """Names from the root to this node along primary parents."""
        parts: List[str] = []
        node: Optional[SchemaTreeNode] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return tuple(reversed(parts))

    def path_string(self) -> str:
        return ".".join(self.path())

    def leaves(self) -> Tuple["SchemaTreeNode", ...]:
        """Leaf nodes of the subtree rooted here (deduped, stable order).

        "leaves(s) = set of leaves in the subtree rooted at s"
        (Section 6). Cached: TreeMatch asks for leaf sets of every node
        pair in its double loop.
        """
        if self._leaves_cache is not None:
            return self._leaves_cache
        if not self.children:
            self._leaves_cache = (self,)
            return self._leaves_cache
        collected: List[SchemaTreeNode] = []
        stack: List[SchemaTreeNode] = [self]
        visited: Set[int] = set()
        while stack:
            node = stack.pop()
            if node.node_id in visited:
                continue
            visited.add(node.node_id)
            if not node.children:
                collected.append(node)
            else:
                stack.extend(reversed(node.children))
        self._leaves_cache = tuple(collected)
        return self._leaves_cache

    def leaf_count(self) -> int:
        return len(self.leaves())

    def leaves_with_required_flag(self) -> Dict["SchemaTreeNode", bool]:
        """Map each leaf of this subtree to a *required* flag.

        Section 8.4 ("Optionality"): "A leaf is optional if it has at
        least one optional node on each path from n to the leaf."
        Equivalently, a leaf is required iff some path from here to it
        traverses no optional node (the starting node's own optionality
        does not count — it is the context, not the path).

        Cached per node (TreeMatch consults the flags for every node
        pair); callers must treat the returned dict as read-only. The
        cache is cleared by :meth:`SchemaTree.invalidate_leaf_caches`
        and by structural mutation of this node.
        """
        if self._required_cache is not None:
            return self._required_cache
        required: Dict[SchemaTreeNode, bool] = {}
        stack: List[Tuple[SchemaTreeNode, bool]] = [(self, False)]
        # Track the best (least-optional) way each node was reached so a
        # node revisited via a required path upgrades its leaves.
        best: Dict[int, bool] = {}
        while stack:
            node, saw_optional = stack.pop()
            previous = best.get(node.node_id)
            if previous is not None and previous <= saw_optional:
                continue  # already reached at least as cleanly
            best[node.node_id] = saw_optional
            if not node.children and node is not self:
                is_required = not saw_optional
                required[node] = required.get(node, False) or is_required
                continue
            if not node.children and node is self:
                required[node] = not saw_optional
                continue
            for child in node.children:
                stack.append((child, saw_optional or child.optional))
        self._required_cache = required
        return required

    def iter_subtree(self) -> Iterator["SchemaTreeNode"]:
        """All nodes of this subtree (pre-order, deduped for DAGs)."""
        visited: Set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.node_id in visited:
                continue
            visited.add(node.node_id)
            yield node
            stack.extend(reversed(node.children))

    def subtree_depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if not self.children:
            return 0
        return 1 + max(child.subtree_depth() for child in self.children)

    def __repr__(self) -> str:
        marker = " (join)" if self.is_join_view else ""
        return f"<TreeNode {self.path_string()}{marker} n{self.node_id}>"


class SchemaTree:
    """The expanded schema tree (or DAG, after join-view augmentation)."""

    def __init__(self, schema: Schema, root: SchemaTreeNode) -> None:
        self.schema = schema
        self.root = root

    def nodes(self) -> List[SchemaTreeNode]:
        """All nodes reachable from the root, pre-order, deduped."""
        return list(self.root.iter_subtree())

    def postorder(self) -> List[SchemaTreeNode]:
        """Deterministic inverse-topological (post-order) enumeration.

        For plain trees this is the unique post-order the paper uses.
        After join-view augmentation the structure is a DAG and
        post-order is no longer unique (the non-Church-Rosser caveat of
        Section 8.3); we fix determinism by visiting children in
        insertion order, which — because join views are appended after
        the ordinary children — compares join views after the tables
        they join, the ordering the paper suggests.
        """
        order: List[SchemaTreeNode] = []
        visited: Set[int] = set()
        # Iterative DFS with explicit phase to get true post-order.
        stack: List[Tuple[SchemaTreeNode, bool]] = [(self.root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if node.node_id in visited:
                continue
            visited.add(node.node_id)
            stack.append((node, True))
            for child in reversed(node.children):
                if child.node_id not in visited:
                    stack.append((child, False))
        return order

    def leaves(self) -> List[SchemaTreeNode]:
        return list(self.root.leaves())

    def node_for_path(self, *names: str) -> SchemaTreeNode:
        """Resolve a node by its name path below the root."""
        node = self.root
        for step in names:
            matches = [c for c in node.children if c.name == step]
            if len(matches) != 1:
                raise KeyError(
                    f"path step {step!r} under {node.path_string()!r} matched "
                    f"{len(matches)} children"
                )
            node = matches[0]
        return node

    def invalidate_leaf_caches(self) -> None:
        for node in self.nodes():
            node._invalidate_own_caches()

    def __len__(self) -> int:
        return len(self.nodes())

    def __repr__(self) -> str:
        return f"<SchemaTree of {self.schema.name!r}: {len(self)} nodes>"
