"""Lazy schema-tree expansion (Section 8.4, "Lazy expansion").

Eager construction (Figure 4) duplicates a shared type's subtree into
every context, and TreeMatch then compares each duplicate separately.
The paper's lazy variant "compares elements of the schema graph before
converting it to a tree", avoiding the duplicate comparisons.

Our implementation realizes the same cost saving by building a
*compressed* tree: each shared type's subtree is constructed once and
attached to every deriving node as a shared child (a DAG, exactly like
join views). TreeMatch's deduplicating post-order then compares the
shared subtree once.

Trade-off (documented in DESIGN.md): within a shared subtree, leaf
nodes are physically shared across contexts, so ancestor-driven
similarity increments from different contexts accumulate on the same
nodes instead of differentiating per-context copies. When no two
contexts would have pulled a shared leaf in different directions, the
results are identical to eager expansion — the condition under which
the paper claims exactness. The E8 ablation benchmark measures both the
agreement and the speedup on schemas with heavy type sharing.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.exceptions import CyclicSchemaError
from repro.model.element import SchemaElement
from repro.model.schema import Schema
from repro.tree.schema_tree import SchemaTree, SchemaTreeNode


def construct_schema_tree_lazy(schema: Schema) -> SchemaTree:
    """Expand ``schema`` into a compressed tree with shared subtrees."""
    # One reusable subtree root per shared type element.
    built: Dict[str, SchemaTreeNode] = {}
    in_progress: Set[str] = set()

    def expand_members(element: SchemaElement, attach_to: SchemaTreeNode) -> None:
        """Attach element's members (containment + type substitution)."""
        if element.element_id in in_progress:
            raise CyclicSchemaError(
                f"recursive type definition through {element.name!r} in "
                f"schema {schema.name!r}; cyclic schemas are not supported"
            )
        in_progress.add(element.element_id)
        try:
            for child in schema.contained_children(element):
                if child.not_instantiated:
                    continue
                node = SchemaTreeNode(child)
                attach_to.add_child(node)
                expand_members(child, node)
            for base in schema.derived_bases(element):
                if base.element_id in in_progress:
                    # The memo would otherwise absorb the cycle silently
                    # (a half-built carrier looks like a finished one).
                    raise CyclicSchemaError(
                        f"recursive type definition through {base.name!r} "
                        f"in schema {schema.name!r}; cyclic schemas are "
                        "not supported"
                    )
                shared = built.get(base.element_id)
                if shared is None:
                    # Build the type's member subtree once, under a
                    # carrier node we then splice children from.
                    shared = SchemaTreeNode(base)
                    built[base.element_id] = shared
                    expand_members(base, shared)
                for member in shared.children:
                    if member.parent is shared:
                        # First context adopts the members as primary
                        # children; later contexts share them.
                        member.parent = None
                        attach_to.add_child(member)
                    else:
                        attach_to.add_shared_child(member)
        finally:
            in_progress.discard(element.element_id)

    root_node = SchemaTreeNode(schema.root)
    expand_members(schema.root, root_node)
    return SchemaTree(schema, root_node)
