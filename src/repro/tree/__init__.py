"""Schema trees (paper Sections 8.1–8.4).

Structure matching runs on *schema trees*: the schema graph is expanded
by type substitution so every containment/IsDerivedFrom path from the
root becomes an explicit node (context-dependent matching), and
referential constraints are reified as join-view nodes that make the
tree a DAG (Figure 6).
"""

from repro.tree.schema_tree import SchemaTree, SchemaTreeNode
from repro.tree.construction import construct_schema_tree
from repro.tree.refint import augment_with_join_views
from repro.tree.lazy import construct_schema_tree_lazy

__all__ = [
    "SchemaTree",
    "SchemaTreeNode",
    "augment_with_join_views",
    "construct_schema_tree",
    "construct_schema_tree_lazy",
]
