"""Join-view augmentation for referential constraints (Section 8.3).

"We interpret referential constraints as potential join views. For each
foreign key, we introduce a node that represents the join of the
participating tables. ... the join view node has as its children the
columns from both the tables. The common ancestor of the two tables is
made the parent of the new join view node." (Figure 6.)

The join-view children are the *same* tree nodes as the tables' columns
(not copies), so that matching a pair of join views increases the
structural similarity of the underlying columns — the paper's first
stated benefit. This turns the schema tree into a DAG, with the
determinism caveat handled by :meth:`SchemaTree.postorder`.

View definitions (Section 8.4 "Views") are "treated like referential
constraints": each VIEW element gets a node whose children are the
tree nodes of the elements the view aggregates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import SchemaError
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema
from repro.tree.schema_tree import SchemaTree, SchemaTreeNode


def augment_with_join_views(tree: SchemaTree) -> List[SchemaTreeNode]:
    """Add join-view nodes for every RefInt, and view nodes for views.

    Returns the nodes added. Idempotent inputs are the caller's
    responsibility (call once per tree).
    """
    schema = tree.schema
    node_of = _element_to_node_index(tree)
    added: List[SchemaTreeNode] = []

    for refint in schema.refint_elements():
        # Reference is 1:n (an IDREF may point at several IDs): one
        # join view per referenced target.
        for target in schema.reference_targets(refint):
            join_node = _add_join_view(tree, schema, refint, target, node_of)
            if join_node is not None:
                added.append(join_node)

    for view in (e for e in schema.elements if e.kind is ElementKind.VIEW):
        view_node = _add_view_node(tree, schema, view, node_of)
        if view_node is not None:
            added.append(view_node)

    if added:
        # Mutation unindexed the touched ancestry already (correctness
        # never depends on this call); re-stamping the interval
        # encoding here restores O(1) window addressing for the whole
        # DAG before any match runs.
        tree.reindex()
    return added


def _element_to_node_index(tree: SchemaTree) -> Dict[str, List[SchemaTreeNode]]:
    index: Dict[str, List[SchemaTreeNode]] = {}
    for node in tree.nodes():
        index.setdefault(node.element.element_id, []).append(node)
    return index


def _table_of(schema: Schema, element: SchemaElement) -> Optional[SchemaElement]:
    """The containment parent of a column/key element (its table)."""
    return schema.container_of(element)


def _add_join_view(
    tree: SchemaTree,
    schema: Schema,
    refint: SchemaElement,
    target: SchemaElement,
    node_of: Dict[str, List[SchemaTreeNode]],
) -> Optional[SchemaTreeNode]:
    """Reify one (constraint, target) pair as a join-view node."""
    sources = schema.aggregated_members(refint)
    if not sources:
        return None  # validation warns about these; skip quietly here

    source_table = _table_of(schema, sources[0])
    if target.kind is ElementKind.KEY:
        target_table = _table_of(schema, target)
    else:
        # The reference may point directly at a column or a table.
        target_table = (
            target if schema.contained_children(target) else _table_of(schema, target)
        )
    if source_table is None or target_table is None:
        return None
    if source_table is target_table:
        return None  # self-referencing FK: joining a table to itself
        # adds no leaf information, only cycles; skip.

    source_nodes = node_of.get(source_table.element_id, [])
    target_nodes = node_of.get(target_table.element_id, [])
    if not source_nodes or not target_nodes:
        return None
    source_node = source_nodes[0]
    target_node = target_nodes[0]

    ancestor = _lowest_common_ancestor(source_node, target_node)
    if ancestor is None:
        ancestor = tree.root

    join_element = SchemaElement(
        name=refint.name or f"{source_table.name}-{target_table.name}-join",
        kind=ElementKind.JOIN_VIEW,
    )
    join_node = SchemaTreeNode(join_element, is_join_view=True)
    # Children: the columns from both tables (the tables' child nodes).
    for child in source_node.children:
        join_node.add_shared_child(child)
    for child in target_node.children:
        join_node.add_shared_child(child)
    # Appended last so post-order compares the join view after both
    # tables (the ordering Section 8.3 suggests for determinism).
    ancestor.add_child(join_node)
    return join_node


def _add_view_node(
    tree: SchemaTree,
    schema: Schema,
    view: SchemaElement,
    node_of: Dict[str, List[SchemaTreeNode]],
) -> Optional[SchemaTreeNode]:
    """Reify a view definition as a node grouping its members' nodes."""
    members = schema.aggregated_members(view)
    if not members:
        return None
    member_nodes: List[SchemaTreeNode] = []
    for member in members:
        nodes = node_of.get(member.element_id, [])
        if nodes:
            member_nodes.append(nodes[0])
    if not member_nodes:
        return None

    view_element = SchemaElement(name=view.name, kind=ElementKind.VIEW)
    view_node = SchemaTreeNode(view_element)
    for node in member_nodes:
        view_node.add_shared_child(node)
    tree.root.add_child(view_node)
    return view_node


def _lowest_common_ancestor(
    a: SchemaTreeNode, b: SchemaTreeNode
) -> Optional[SchemaTreeNode]:
    """LCA along primary parents."""
    ancestors = set()
    node: Optional[SchemaTreeNode] = a
    while node is not None:
        ancestors.add(node.node_id)
        node = node.parent
    node = b
    while node is not None:
        if node.node_id in ancestors:
            return node
        node = node.parent
    return None
