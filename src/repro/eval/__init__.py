"""Evaluation harness: metrics, experiment runners, table rendering."""

from repro.eval.metrics import MatchQuality, evaluate_mapping
from repro.eval.reporting import render_table
from repro.eval.runner import (
    CanonicalVerdicts,
    run_canonical_example,
    run_cidx_excel,
    run_rdb_star,
)

__all__ = [
    "CanonicalVerdicts",
    "MatchQuality",
    "evaluate_mapping",
    "render_table",
    "run_canonical_example",
    "run_cidx_excel",
    "run_rdb_star",
]
