"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows the paper's tables report; this
module renders them as aligned ASCII tables so ``pytest benchmarks/``
output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    materialized: List[List[str]] = [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def format_row(cells: Sequence[str]) -> str:
        padded = [
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(format_row(list(headers)))
    lines.append(separator)
    for row in materialized:
        lines.append(format_row(row))
    lines.append(separator)
    return "\n".join(lines)
