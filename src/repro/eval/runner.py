"""Experiment runners for the paper's evaluation (Section 9).

Each runner reproduces one experiment and returns structured results
the benchmarks render. Verdict logic mirrors how the paper judged the
tools:

* **Cupid** — "Y" when the generated mapping covers every gold
  correspondence (context included).
* **DIKE** — elements are mapped "if the corresponding entities and
  attributes are merged together in the abstracted schema"; a merge
  group that lumps ≥3 entities (or two entities of the same schema)
  together is ambiguous, which is how the type-substitution example
  fails.
* **MOMIS** — elements are mapped "if the corresponding classes are
  clustered into a single global class and the corresponding attributes
  are fused together".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.dike import DikeMatcher, DikeResult, LSPD
from repro.baselines.momis import MomisMatcher, MomisResult
from repro.config import CupidConfig
from repro.core.cupid import CupidMatcher, CupidResult
from repro.datasets.canonical import CanonicalExample
from repro.datasets.cidx_excel import (
    cidx_excel_element_gold,
    cidx_excel_gold,
    cidx_schema,
    excel_schema,
)
from repro.datasets.rdb_star import (
    rdb_schema,
    rdb_star_column_gold,
    rdb_star_table_gold,
    star_schema,
)
from repro.eval.metrics import MatchQuality, evaluate_mapping
from repro.linguistic.lexicon import (
    builtin_thesaurus,
    paper_experiment_thesaurus,
)
from repro.linguistic.thesaurus import Thesaurus


@dataclass
class CanonicalVerdicts:
    """One row of Table 2, as produced by our implementations."""

    example_id: int
    title: str
    cupid: str
    dike: str
    momis: str
    expected: Dict[str, str]
    details: Dict[str, str] = field(default_factory=dict)

    def as_row(self) -> List[str]:
        return [str(self.example_id), self.title, self.cupid, self.dike, self.momis]

    def matches_paper(self) -> bool:
        """Compare verdict letters ignoring footnote annotations."""

        def letter(value: str) -> str:
            return value[0] if value else "?"

        return (
            letter(self.cupid) == letter(self.expected.get("cupid", "?"))
            and letter(self.dike) == letter(self.expected.get("dike", "?"))
            and letter(self.momis) == letter(self.expected.get("momis", "?"))
        )


# ----------------------------------------------------------------------
# Table 2 — canonical examples
# ----------------------------------------------------------------------

def run_canonical_example(
    example: CanonicalExample,
    with_aux: bool = True,
    config: Optional[CupidConfig] = None,
) -> CanonicalVerdicts:
    """Run Cupid, DIKE, and MOMIS on one canonical example.

    ``with_aux`` supplies the auxiliary input the paper's footnotes
    describe (LSPD entries for DIKE, sense annotations for MOMIS);
    without it, the footnote-marked rows should degrade to N.
    """
    cupid_verdict, cupid_detail = _cupid_verdict(example, config)
    dike_verdict, dike_detail = _dike_verdict(example, with_aux)
    momis_verdict, momis_detail = _momis_verdict(example, with_aux)
    return CanonicalVerdicts(
        example_id=example.example_id,
        title=example.title,
        cupid=cupid_verdict,
        dike=dike_verdict,
        momis=momis_verdict,
        expected=example.expected,
        details={
            "cupid": cupid_detail,
            "dike": dike_detail,
            "momis": momis_detail,
        },
    )


def _cupid_verdict(
    example: CanonicalExample, config: Optional[CupidConfig]
) -> Tuple[str, str]:
    matcher = CupidMatcher(thesaurus=builtin_thesaurus(), config=config)
    result = matcher.match(example.schema1, example.schema2)
    quality = evaluate_mapping(result.leaf_mapping, example.gold)
    verdict = "Y" if quality.recall == 1.0 else "N"
    return verdict, quality.summary()


def _dike_verdict(
    example: CanonicalExample, with_aux: bool
) -> Tuple[str, str]:
    lspd = LSPD(example.lspd_entries) if with_aux else LSPD()
    matcher = DikeMatcher(lspd=lspd)
    result = matcher.match(example.er1, example.er2)

    # Required attribute merges: the (name, name) pairs of the gold
    # leaves, matched against DIKE's owner-qualified attribute labels.
    required = {
        (source[-1].lower(), target[-1].lower())
        for source, target in example.gold.pairs
    }
    merged_names = {
        (label1.rsplit(".", 1)[-1], label2.rsplit(".", 1)[-1])
        for label1, label2 in result.attribute_pairs
    }
    missing = required - merged_names

    # Ambiguity: one schema-1 entity merged with two or more schema-2
    # entities means the abstracted schema cannot represent the
    # context-dependent mapping (the example-6 failure). Merging many
    # schema-1 entities into one schema-2 entity is ordinary
    # integration (the example-5 success) and is fine.
    targets_of: Dict[str, set] = {}
    for name1, name2 in result.entity_pairs:
        targets_of.setdefault(name1, set()).add(name2)
    ambiguous = any(len(targets) >= 2 for targets in targets_of.values())
    if missing:
        verdict = "N"
        detail = f"missing attribute merges: {sorted(missing)[:4]}"
    elif ambiguous:
        verdict = "N"
        detail = (
            "ambiguous entity merge groups: "
            f"{[sorted(g) for g in result.merged_entity_groups if len(g) >= 3]}"
        )
    else:
        verdict = "Y"
        detail = f"{len(result.attribute_pairs)} attribute merges"
    if verdict == "Y" and example.lspd_entries and with_aux:
        verdict = "Y(a)"  # needed LSPD input, footnote a
    return verdict, detail


def _momis_verdict(
    example: CanonicalExample, with_aux: bool
) -> Tuple[str, str]:
    annotations = example.momis_annotations if with_aux else []
    matcher = MomisMatcher(sense_annotations=annotations)
    result = matcher.match(example.schema1, example.schema2)

    # Required fusions: owner-qualified attribute pairs from the gold
    # paths. The owner is the class the attribute physically lives in
    # (second-to-last path component).
    missing: List[Tuple[str, str]] = []
    for source, target in example.gold.pairs:
        qual1 = ".".join(_owner_and_attr(source, example, 1))
        qual2 = ".".join(_owner_and_attr(target, example, 2))
        if not result.attributes_fused(qual1, qual2):
            missing.append((qual1, qual2))
    if missing:
        return "N", f"missing fusions: {missing[:4]}"
    verdict = "Y(b)" if (example.momis_annotations and with_aux) else "Y"
    return verdict, f"{len(result.clusters)} clusters"


def _owner_and_attr(
    path: Tuple[str, ...], example: CanonicalExample, schema_index: int
) -> Tuple[str, str]:
    """Resolve a gold path to MOMIS's (defining class, attribute) view.

    Gold paths are context paths (``PurchaseOrder.ShippingAddress.Street``);
    MOMIS sees class definitions, so the owner of Street is the class
    that defines it. For attribute steps that reference a shared class,
    the defining class is the *type*, which for our OO datasets is the
    attribute's IsDerivedFrom target.
    """
    schema = example.schema1 if schema_index == 1 else example.schema2
    node = None
    for element in schema.contained_children(schema.root):
        if element.name == path[0]:
            node = element
            break
    if node is None:
        return (path[-2] if len(path) >= 2 else path[0], path[-1])
    for step in path[1:-1]:
        children = [
            c for c in schema.contained_children(node) if c.name == step
        ]
        if not children:
            return (path[-2], path[-1])
        node = children[0]
        bases = schema.derived_bases(node)
        if bases:
            node = bases[0]
    return (node.name, path[-1])


# ----------------------------------------------------------------------
# Table 3 — CIDX vs Excel
# ----------------------------------------------------------------------

#: The element-level rows of Table 3, as (CIDX path, Excel path).
TABLE3_ROWS = [
    ("POHeader", "Header"),
    ("POLines.Item", "Items.Item"),
    ("POLines", "Items"),
    ("POBillTo", "InvoiceTo"),
    ("POShipTo", "DeliverTo"),
    ("Contact", "DeliverTo.Contact"),
    ("PO", "PurchaseOrder"),
]


def run_cidx_excel(
    thesaurus: Optional[Thesaurus] = None,
    config: Optional[CupidConfig] = None,
) -> Dict[str, object]:
    """Run Cupid on the Figure 7 schemas; score against Table 3.

    The default configuration follows the paper's CIDX–Excel run: the
    six-entry experiment thesaurus and ``cinc`` raised per Table 1's
    guidance ("typically a function of maximum schema depth") so that
    leaves under consistently matching ancestors saturate — which is
    what makes the structure-only line→itemNumber match reachable.
    """
    thesaurus = thesaurus or paper_experiment_thesaurus()
    config = config or CupidConfig(cinc=1.35)
    matcher = CupidMatcher(thesaurus=thesaurus, config=config)
    result = matcher.match(cidx_schema(), excel_schema())

    leaf_quality = evaluate_mapping(result.leaf_mapping, cidx_excel_gold())
    element_rows: List[Tuple[str, str, str]] = []
    nonleaf_pairs = result.nonleaf_mapping.path_pairs()
    for cidx_path, excel_path in TABLE3_ROWS:
        # A row counts when the pair is in the generated non-leaf
        # mapping, or when it is a *valid mapping element* by the
        # paper's own criterion (wsim ≥ thaccept, Table 1) — "the
        # XML-element mappings in Table 3 are reported based on their
        # respective structural similarity values".
        in_mapping = any(
            source.endswith(cidx_path) and target.endswith(excel_path)
            for source, target in nonleaf_pairs
        )
        found = in_mapping or _pair_wsim(
            result, cidx_path, excel_path
        ) >= matcher.config.thaccept
        element_rows.append(
            (cidx_path, excel_path, "Yes" if found else "No")
        )
    return {
        "result": result,
        "leaf_quality": leaf_quality,
        "element_rows": element_rows,
        "leaf_mapping": result.leaf_mapping,
    }


def _pair_wsim(result: CupidResult, source_path: str, target_path: str) -> float:
    """wsim of two nodes addressed by root-relative dotted paths.

    A single-component path equal to the schema name addresses the
    root node itself.
    """

    def resolve(tree, path: str):
        parts = path.split(".")
        if len(parts) == 1 and parts[0] == tree.schema.name:
            return tree.root
        return tree.node_for_path(*parts)

    try:
        s = resolve(result.source_tree, source_path)
        t = resolve(result.target_tree, target_path)
    except KeyError:
        return 0.0
    return result.treematch_result.wsim_of(s, t)


# ----------------------------------------------------------------------
# Section 9.2 — RDB vs Star
# ----------------------------------------------------------------------

#: The narrative claims of Section 9.2, each as (description, list of
#: acceptable (RDB path, Star path) pairs — any one valid pair counts).
RDB_STAR_CLAIMS = [
    (
        "Orders ⋈ OrderDetails (or either table) → Sales",
        [
            ("ORDERDETAILS-ORDERS-fk", "SALES"),
            ("ORDERS", "SALES"),
            ("ORDERDETAILS", "SALES"),
        ],
    ),
    ("Customers → Customers", [("CUSTOMERS", "CUSTOMERS")]),
    ("Products → Products", [("PRODUCTS", "PRODUCTS")]),
    (
        "Territories ⋈ Region → Geography",
        [
            ("TERRITORYREGION-REGION-fk", "GEOGRAPHY"),
            ("TERRITORYREGION-TERRITORIES-fk", "GEOGRAPHY"),
        ],
    ),
]


def run_rdb_star(
    thesaurus: Optional[Thesaurus] = None,
    config: Optional[CupidConfig] = None,
    use_refint_joins: bool = True,
) -> Dict[str, object]:
    """Run Cupid on the Figure 8 schemas; score tables and columns.

    "There were no relevant synonym and hypernym entries in the
    thesaurus" for this example — the builtin lexicon's business
    vocabulary plays the same role as Cupid's stock thesaurus.

    ``leaf_count_ratio`` is raised to 2.5 for this experiment: a join
    view over two tables compared against a fact table routinely
    exceeds the paper's indicative "factor of 2" (Orders ⋈ OrderDetails
    has 20 leaves vs Sales' 9), and the paper's own result — "Cupid
    matches the join of Orders and OrderDetails to the Sales table" —
    requires that comparison to happen.
    """
    thesaurus = thesaurus if thesaurus is not None else builtin_thesaurus()
    config = config or CupidConfig(cinc=1.35)
    config = config.replace(
        use_refint_joins=use_refint_joins, leaf_count_ratio=2.5
    )
    matcher = CupidMatcher(thesaurus=thesaurus, config=config)
    result = matcher.match(rdb_schema(), star_schema())

    column_gold = rdb_star_column_gold()
    column_quality = evaluate_mapping(result.leaf_mapping, column_gold)
    table_quality = evaluate_mapping(
        result.nonleaf_mapping, rdb_star_table_gold()
    )

    claim_rows: List[Tuple[str, str]] = []
    for description, alternatives in RDB_STAR_CLAIMS:
        achieved = any(
            _pair_wsim(result, source, target) >= matcher.config.thaccept
            for source, target in alternatives
        )
        claim_rows.append((description, "Yes" if achieved else "No"))

    # The three Star PostalCode columns should all map back to
    # Customers.PostalCode in the RDB schema.
    postal_targets = [
        "CUSTOMERS.PostalCode", "GEOGRAPHY.PostalCode", "SALES.PostalCode",
    ]
    postal_ok = all(
        any(
            ".".join(e.source_path).endswith("CUSTOMERS.PostalCode")
            and ".".join(e.target_path).endswith(target)
            for e in result.leaf_mapping
        )
        for target in postal_targets
    )
    claim_rows.append(
        ("PostalCode ×3 → Customers.PostalCode", "Yes" if postal_ok else "No")
    )

    return {
        "result": result,
        "column_quality": column_quality,
        "column_target_recall": column_gold.target_recall(result.leaf_mapping),
        "unmatched_columns": column_gold.unmatched_targets(result.leaf_mapping),
        "table_quality": table_quality,
        "claim_rows": claim_rows,
    }
