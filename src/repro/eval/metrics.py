"""Match-quality metrics.

The paper's comparison is qualitative (Y/N per capability, per-pair
inspection); follow-on schema-matching literature standardized on
precision/recall/F1 against a gold mapping, which is also what our
quantitative benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.datasets.gold import GoldMapping
from repro.mapping.mapping import Mapping, MappingElement


@dataclass(frozen=True)
class MatchQuality:
    """Precision/recall/F1 of a mapping against a gold standard."""

    true_positives: int
    false_positives: int
    gold_total: int
    gold_found: int

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        return self.gold_found / self.gold_total if self.gold_total else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def summary(self) -> str:
        return (
            f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f} "
            f"({self.gold_found}/{self.gold_total} gold, "
            f"{self.false_positives} spurious)"
        )


def evaluate_mapping(mapping: Mapping, gold: GoldMapping) -> MatchQuality:
    """Score ``mapping`` against ``gold``.

    A mapping element is a true positive if some gold pair covers it
    (suffix match on both paths); recall counts how many distinct gold
    pairs were found (a 1:n gold pair found twice counts once).
    """
    true_positives = sum(1 for element in mapping if gold.covers(element))
    false_positives = len(mapping) - true_positives
    found = gold.found_pairs(mapping)
    return MatchQuality(
        true_positives=true_positives,
        false_positives=false_positives,
        gold_total=len(gold),
        gold_found=len(found),
    )
