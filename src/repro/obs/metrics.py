"""Central metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` per process (or per service — the match
service owns one) absorbs the counters and histograms that used to
live scattered across the serving layer. Instruments are created
get-or-create by ``(family name, label set)``:

* :class:`Counter` — monotonically increasing; name by convention
  ends in ``_total``;
* :class:`Gauge` — settable level (in-flight requests);
* :class:`CallbackGauge` — read-at-scrape gauge for values owned
  elsewhere (uptime, pool sizes);
* :class:`LatencyHistogram` — fixed log-spaced buckets over
  [0.05 ms, 120 s]; recording is O(log buckets), snapshots report
  count / mean and p50/p95/p99 off the bucket boundaries (≤ ~12%
  resolution error by construction), constant memory forever.

Because ``/stats`` snapshots and ``GET /metrics`` exposition read the
*same* instrument objects, their counts agree by construction — there
is no second bookkeeping path to drift or double-count.

:func:`MetricsRegistry.render_prometheus` emits text exposition
format version 0.0.4: ``# HELP`` / ``# TYPE`` headers per family,
``name{label="value"} value`` samples, and for histograms the
cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
Only non-empty buckets are emitted (any subset of boundaries is
valid exposition), keeping scrapes compact.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "CallbackGauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "search_latency_schema",
]

#: Histogram range and resolution: bucket upper bounds grow
#: geometrically from 0.05 ms to ~120 s. GROWTH**2 ≈ 1.26, so a
#: reported percentile is within ~12% of the true value — plenty for
#: p50/p95/p99 dashboards, constant memory regardless of traffic.
_MIN_SECONDS = 0.00005
_MAX_SECONDS = 120.0
_GROWTH = 1.12


def _bucket_bounds() -> List[float]:
    bounds = []
    upper = _MIN_SECONDS
    while upper < _MAX_SECONDS:
        bounds.append(upper)
        upper *= _GROWTH
    bounds.append(float("inf"))
    return bounds


_BOUNDS = _bucket_bounds()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def _samples(self) -> List[Tuple[str, str, float]]:
        return [("", "", float(self._value))]


class Gauge:
    """A settable level (in-flight requests, queue depth)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _samples(self) -> List[Tuple[str, str, float]]:
        return [("", "", float(self._value))]


class CallbackGauge:
    """A gauge whose value is computed at scrape time."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn())

    def _samples(self) -> List[Tuple[str, str, float]]:
        return [("", "", self.value)]


class LatencyHistogram:
    """Log-bucketed latency distribution with percentile readout."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * len(_BOUNDS)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        # Bisect over geometric bounds == log lookup; linear scan is
        # cache-friendly but O(buckets) — use bisect for O(log n).
        low, high = 0, len(_BOUNDS) - 1
        while low < high:
            mid = (low + high) // 2
            if seconds <= _BOUNDS[mid]:
                high = mid
            else:
                low = mid + 1
        with self._lock:
            self._counts[low] += 1
            self._count += 1
            self._total += seconds
            self._min = min(self._min, seconds)
            self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, fraction: float) -> float:
        """The latency (seconds) at ``fraction`` of the distribution
        (0.5 = p50). Returns the matching bucket's upper bound, 0.0
        when nothing was recorded."""
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, math.ceil(self._count * fraction))
            seen = 0
            for i, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    # The overflow bucket has no finite bound; report
                    # the observed max instead of inf.
                    bound = _BOUNDS[i]
                    return self._max if math.isinf(bound) else bound
            return self._max

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            count, total = self._count, self._total
            minimum = 0.0 if math.isinf(self._min) else self._min
            maximum = self._max
        return {
            "count": count,
            "mean_ms": round(total / count * 1000.0, 3) if count else 0.0,
            "min_ms": round(minimum * 1000.0, 3),
            "max_ms": round(maximum * 1000.0, 3),
            "p50_ms": round(self.percentile(0.50) * 1000.0, 3),
            "p95_ms": round(self.percentile(0.95) * 1000.0, 3),
            "p99_ms": round(self.percentile(0.99) * 1000.0, 3),
        }

    def _samples(self) -> List[Tuple[str, str, float]]:
        """Prometheus histogram series: cumulative non-empty buckets,
        the +Inf bucket, then _sum and _count."""
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._total
        samples: List[Tuple[str, str, float]] = []
        cumulative = 0
        for bound, bucket in zip(_BOUNDS, counts):
            cumulative += bucket
            if bucket and not math.isinf(bound):
                samples.append(("_bucket", _format_float(bound), cumulative))
        samples.append(("_bucket", "+Inf", float(count)))
        samples.append(("_sum", "", total))
        samples.append(("_count", "", float(count)))
        return samples


def _format_float(value: float) -> str:
    text = repr(round(value, 9))
    return text


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class _Family:
    __slots__ = ("name", "kind", "help", "metrics")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        # label tuple (sorted (k, v) pairs) -> instrument
        self.metrics: Dict[Tuple[Tuple[str, str], ...], Any] = {}


class MetricsRegistry:
    """Get-or-create registry of labelled instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _instrument(
        self,
        kind: str,
        factory: Callable[[], Any],
        name: str,
        help_text: str,
        labels: Dict[str, str],
    ) -> Any:
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, help_text)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            instrument = family.metrics.get(key)
            if instrument is None:
                instrument = family.metrics[key] = factory()
            return instrument

    def counter(
        self, name: str, help_text: str = "", **labels: str
    ) -> Counter:
        return self._instrument("counter", Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._instrument("gauge", Gauge, name, help_text, labels)

    def callback_gauge(
        self,
        name: str,
        fn: Callable[[], float],
        help_text: str = "",
        **labels: str,
    ) -> CallbackGauge:
        return self._instrument(
            "gauge", lambda: CallbackGauge(fn), name, help_text, labels
        )

    def histogram(
        self, name: str, help_text: str = "", **labels: str
    ) -> LatencyHistogram:
        return self._instrument(
            "histogram", LatencyHistogram, name, help_text, labels
        )

    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4 over every instrument."""
        with self._lock:
            families = [
                (family, list(family.metrics.items()))
                for _, family in sorted(self._families.items())
            ]
        lines: List[str] = []
        for family, instruments in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, instrument in sorted(instruments):
                base_labels = list(key)
                for suffix, le, value in instrument._samples():
                    labels = list(base_labels)
                    if le:
                        labels.append(("le", le))
                    if labels:
                        rendered = ",".join(
                            f'{k}="{_escape_label(v)}"' for k, v in labels
                        )
                        label_text = "{" + rendered + "}"
                    else:
                        label_text = ""
                    if value == int(value) and math.isfinite(value):
                        value_text = str(int(value))
                    else:
                        value_text = repr(value)
                    lines.append(
                        f"{family.name}{suffix}{label_text} {value_text}"
                    )
        return "\n".join(lines) + "\n"


def search_latency_schema(
    stats: Dict[str, Any],
    total_seconds: float,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, float]:
    """The shared CLI/daemon timing block for one search request.

    ``total_ms`` is the caller-observed wall time; ``index_ms`` /
    ``match_ms`` are the repository's own phase timings from the
    search stats. The CLI's ``repro search --format json`` and the
    daemon's ``/search`` response carry exactly this dict under
    ``latency_ms``, so timing dashboards read both identically.

    When ``registry`` is given, the three phases are also observed
    into ``repro_search_phase_seconds{phase=...}`` histograms — the
    one recording site feeding ``GET /metrics``, so exposition and
    response bodies come from the same measurement.
    """
    block = {
        "total_ms": round(total_seconds * 1000.0, 3),
        "index_ms": float(stats.get("time_index_ms", 0.0)),
        "match_ms": float(stats.get("time_match_ms", 0.0)),
    }
    if registry is not None:
        help_text = "Search phase timings observed per request."
        for phase in ("total", "index", "match"):
            registry.histogram(
                "repro_search_phase_seconds", help_text, phase=phase
            ).record(block[f"{phase}_ms"] / 1000.0)
    return block


_GLOBAL_REGISTRY: Optional[MetricsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (CLI runs; anything without
    a service-owned registry)."""
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        if _GLOBAL_REGISTRY is None:
            _GLOBAL_REGISTRY = MetricsRegistry()
        return _GLOBAL_REGISTRY
