"""Span-based tracing with request correlation.

The tracer mirrors the arming discipline of :mod:`repro.faults`: a
single module-global state object, ``None`` when disarmed, checked
once per instrumentation site. Disarmed, every site costs one global
read and one ``is None`` branch — no allocation, no locking, no
contextvar traffic — so tracing can stay compiled into every layer
of the stack permanently.

Armed (:func:`arm`, or ``REPRO_FORCE_TRACE=1`` in the environment,
which subprocesses inherit), sites open :class:`Span` records that
form trees: the active span lives in a :class:`contextvars.ContextVar`
so nesting follows call structure, survives ``contextvars.copy_context``
into executor threads, and never leaks across concurrent requests.
Finished root spans collect in a bounded deque for export.

Spans carry wall time, thread CPU time, a counter dict, the pid/tid
they ran on, and the request id bound at the time they started
(:func:`bind_request_id` — minted at the HTTP edge). Worker processes
build spans *standalone* (``Span.begin()`` / ``finish()`` /
``to_dict()`` — no arming required) and ship them back inside the
sharded-op reply; :func:`adopt` re-parents them under the dispatching
op span at the barrier, re-stamping the request id so one traced
request yields one connected tree across process boundaries.

Export: :func:`chrome_trace_events` / :func:`write_chrome_trace`
render span trees as Chrome trace-event JSON (the ``chrome://tracing``
/ Perfetto ``"X"`` complete-event format); :func:`span_tree` renders
one span as a nested dict for JSON responses; :func:`log_event` emits
one structured JSON log line stamped with the bound request id.

Tracing is observational only: no site may alter control flow or
data, so results are bit-identical armed or disarmed (held in CI by
a tier-1 job running under ``REPRO_FORCE_TRACE=1``).
"""

from __future__ import annotations

import collections
import contextvars
import json
import os
import sys
import threading
import time
from typing import Any, Deque, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "arm",
    "disarm",
    "armed",
    "reset",
    "span",
    "start_span",
    "end_span",
    "annotate",
    "current_span",
    "adopt",
    "bind_request_id",
    "unbind_request_id",
    "request_id",
    "roots",
    "take_roots",
    "span_tree",
    "chrome_trace_events",
    "write_chrome_trace",
    "log_event",
]

#: Request id bound at the serving edge (or by the CLI); stamped on
#: every span started while bound and on every structured log line.
_REQUEST_ID: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_obs_request_id", default=None
)

#: The innermost open span in this execution context.
_ACTIVE: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)


class Span:
    """One timed operation: a node in a per-request span tree.

    Usable standalone (worker processes build spans without any armed
    global state): ``Span.begin(name)`` starts the clocks,
    ``finish()`` stops them, ``to_dict()`` / ``from_dict()`` round-trip
    through the worker-pool pipe. Parenting is the tracer's job.
    """

    __slots__ = (
        "name",
        "ts_us",
        "pid",
        "tid",
        "request_id",
        "wall_s",
        "cpu_s",
        "counters",
        "children",
        "_t0",
        "_cpu0",
        "_parent",
        "_token",
        "_state",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.ts_us = 0
        self.pid = 0
        self.tid = 0
        self.request_id: Optional[str] = None
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.counters: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self._t0 = 0.0
        self._cpu0 = 0.0
        self._parent: Optional["Span"] = None
        self._token: Optional[contextvars.Token] = None
        self._state: Optional["_TraceState"] = None

    @classmethod
    def begin(cls, name: str, **counters: Any) -> "Span":
        span = cls(name)
        if counters:
            span.counters.update(counters)
        span.pid = os.getpid()
        span.tid = threading.get_native_id()
        # Epoch microseconds anchor the span on a clock shared across
        # processes, so worker spans line up with the dispatching op
        # in one Chrome trace; perf_counter supplies the duration.
        span.ts_us = int(time.time() * 1e6)
        span._cpu0 = time.thread_time()
        span._t0 = time.perf_counter()
        return span

    def finish(self, **counters: Any) -> "Span":
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.thread_time() - self._cpu0
        if counters:
            self.counters.update(counters)
        return self

    def annotate(self, **counters: Any) -> None:
        self.counters.update(counters)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ts_us": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
            "request_id": self.request_id,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        span = cls(str(payload["name"]))
        span.ts_us = int(payload.get("ts_us", 0))
        span.pid = int(payload.get("pid", 0))
        span.tid = int(payload.get("tid", 0))
        span.request_id = payload.get("request_id")
        span.wall_s = float(payload.get("wall_s", 0.0))
        span.cpu_s = float(payload.get("cpu_s", 0.0))
        span.counters = dict(payload.get("counters", {}))
        span.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, wall={self.wall_s * 1000.0:.3f}ms, "
            f"children={len(self.children)})"
        )


class _TraceState:
    """Armed-tracer state: finished root spans, bounded."""

    __slots__ = ("lock", "roots")

    def __init__(self, max_roots: int) -> None:
        self.lock = threading.Lock()
        self.roots: Deque[Span] = collections.deque(maxlen=max_roots)


#: The armed tracer, or None. Every site reads this once; disarmed
#: tracing is exactly that read plus an ``is None`` branch (the
#: faults.py pattern).
_STATE: Optional[_TraceState] = None


def arm(max_roots: int = 256) -> None:
    """Arm the tracer process-wide. Idempotent; keeps existing roots."""
    global _STATE
    if _STATE is None:
        _STATE = _TraceState(max_roots)


def disarm() -> None:
    """Disarm and drop any collected root spans."""
    global _STATE
    _STATE = None


def armed() -> bool:
    return _STATE is not None


def reset() -> None:
    """Drop collected roots; keep the tracer armed."""
    state = _STATE
    if state is not None:
        with state.lock:
            state.roots.clear()


class _NoopScope:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NOOP = _NoopScope()


class _SpanScope:
    __slots__ = ("_state", "_name", "_counters", "span")

    def __init__(
        self, state: _TraceState, name: str, counters: Dict[str, Any]
    ) -> None:
        self._state = state
        self._name = name
        self._counters = counters
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        opened = Span.begin(self._name, **self._counters)
        opened.request_id = _REQUEST_ID.get()
        opened._parent = _ACTIVE.get()
        opened._state = self._state
        opened._token = _ACTIVE.set(opened)
        self.span = opened
        return opened

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        opened = self.span
        if opened is not None:
            end_span(opened)
        return False


def span(name: str, **counters: Any) -> Any:
    """Context manager opening a child span of the current context.

    Disarmed: returns a shared no-op scope (one ``None``-check)."""
    state = _STATE
    if state is None:
        return _NOOP
    return _SpanScope(state, name, counters)


def start_span(name: str, **counters: Any) -> Optional[Span]:
    """Explicit-lifetime twin of :func:`span` for awkward control
    flow (HTTP handlers). Returns None when disarmed; pair with
    :func:`end_span`, which tolerates None."""
    state = _STATE
    if state is None:
        return None
    opened = Span.begin(name, **counters)
    opened.request_id = _REQUEST_ID.get()
    opened._parent = _ACTIVE.get()
    opened._state = state
    opened._token = _ACTIVE.set(opened)
    return opened


def end_span(opened: Optional[Span], **counters: Any) -> None:
    if opened is None:
        return
    opened.finish(**counters)
    if opened._token is not None:
        try:
            _ACTIVE.reset(opened._token)
        except ValueError:
            # Ended in a different context than it started in; the
            # parent link below still threads the tree correctly.
            _ACTIVE.set(opened._parent)
        opened._token = None
    parent = opened._parent
    if parent is not None:
        parent.children.append(opened)
    elif opened._state is not None:
        with opened._state.lock:
            opened._state.roots.append(opened)


def annotate(**counters: Any) -> None:
    """Attach counters to the innermost open span, if tracing is on."""
    if _STATE is None:
        return
    opened = _ACTIVE.get()
    if opened is not None:
        opened.counters.update(counters)


def current_span() -> Optional[Span]:
    if _STATE is None:
        return None
    return _ACTIVE.get()


def _restamp(opened: Span, rid: Optional[str]) -> None:
    opened.request_id = rid
    for child in opened.children:
        _restamp(child, rid)


def adopt(
    parent: Optional[Span], payloads: Iterable[Dict[str, Any]]
) -> None:
    """Re-parent serialized worker spans under ``parent``.

    Used at the sharded-op barrier: workers return span dicts in
    their replies; the dispatching op span adopts them, re-stamping
    its own request id so the whole tree correlates."""
    if parent is None:
        return
    for payload in payloads:
        child = Span.from_dict(payload)
        _restamp(child, parent.request_id)
        parent.children.append(child)


def bind_request_id(rid: Optional[str]) -> contextvars.Token:
    """Bind the request id for this execution context; returns a
    token for :func:`unbind_request_id`. Always available — request
    correlation works (in logs and error messages) even when span
    collection is disarmed."""
    return _REQUEST_ID.set(rid)


def unbind_request_id(token: contextvars.Token) -> None:
    try:
        _REQUEST_ID.reset(token)
    except ValueError:  # pragma: no cover - cross-context unbind
        _REQUEST_ID.set(None)


def request_id() -> Optional[str]:
    return _REQUEST_ID.get()


def roots() -> List[Span]:
    """Snapshot of finished root spans (oldest first)."""
    state = _STATE
    if state is None:
        return []
    with state.lock:
        return list(state.roots)


def take_roots() -> List[Span]:
    """Drain and return finished root spans."""
    state = _STATE
    if state is None:
        return []
    with state.lock:
        drained = list(state.roots)
        state.roots.clear()
    return drained


def span_tree(opened: Span) -> Dict[str, Any]:
    """Nested-dict rendering for JSON responses and walkthroughs."""
    node: Dict[str, Any] = {
        "name": opened.name,
        "wall_ms": round(opened.wall_s * 1000.0, 3),
        "cpu_ms": round(opened.cpu_s * 1000.0, 3),
    }
    if opened.request_id is not None:
        node["request_id"] = opened.request_id
    if opened.counters:
        node["counters"] = dict(opened.counters)
    if opened.children:
        node["children"] = [span_tree(child) for child in opened.children]
    return node


def chrome_trace_events(
    spans: Iterable[Span],
) -> List[Dict[str, Any]]:
    """Flatten span trees into Chrome trace-event ``"X"`` records."""
    events: List[Dict[str, Any]] = []

    def walk(opened: Span) -> None:
        args: Dict[str, Any] = dict(opened.counters)
        if opened.request_id is not None:
            args["request_id"] = opened.request_id
        args["cpu_ms"] = round(opened.cpu_s * 1000.0, 3)
        events.append(
            {
                "name": opened.name,
                "cat": "repro",
                "ph": "X",
                "ts": opened.ts_us,
                "dur": max(0, int(opened.wall_s * 1e6)),
                "pid": opened.pid,
                "tid": opened.tid,
                "args": args,
            }
        )
        for child in opened.children:
            walk(child)

    for opened in spans:
        walk(opened)
    return events


def write_chrome_trace(
    path: str, spans: Optional[Iterable[Span]] = None
) -> int:
    """Write collected (or given) span trees as a Chrome trace file.

    Returns the number of trace events written. The output loads in
    ``chrome://tracing`` and Perfetto as-is."""
    if spans is None:
        spans = roots()
    events = chrome_trace_events(spans)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return len(events)


def log_event(event: str, stream: Any = None, **fields: Any) -> None:
    """Emit one structured JSON log line, request-id stamped."""
    record: Dict[str, Any] = {
        "ts": round(time.time(), 6),
        "event": event,
    }
    rid = _REQUEST_ID.get()
    if rid is not None:
        record["request_id"] = rid
    record.update(fields)
    out = stream if stream is not None else sys.stderr
    out.write(json.dumps(record, default=str) + "\n")


def _bootstrap() -> None:
    """Arm from the environment at import, mirroring faults.py, so
    spawned subprocesses and CI jobs inherit arming without code."""
    if os.environ.get("REPRO_FORCE_TRACE"):
        arm()


_bootstrap()
