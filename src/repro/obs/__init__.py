"""repro.obs — unified observability: tracing, metrics, correlation.

Three concerns, one package:

* request-correlated span trees (:mod:`repro.obs.trace`) — armed via
  :func:`arm` or ``REPRO_FORCE_TRACE=1``, zero-overhead disarmed
  (one ``None``-check per site, the :mod:`repro.faults` pattern),
  exportable as Chrome trace-event JSON;
* a central :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) with
  Prometheus text exposition — the single source behind ``/stats``
  and ``GET /metrics``;
* request ids (:func:`bind_request_id` / :func:`request_id`) minted
  at the HTTP edge and stamped on spans, structured log lines
  (:func:`log_event`), and serving error messages.
"""

from repro.obs.metrics import (
    CallbackGauge,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    global_registry,
    search_latency_schema,
)
from repro.obs.trace import (
    Span,
    adopt,
    annotate,
    arm,
    armed,
    bind_request_id,
    chrome_trace_events,
    current_span,
    disarm,
    end_span,
    log_event,
    request_id,
    reset,
    roots,
    span,
    span_tree,
    start_span,
    take_roots,
    unbind_request_id,
    write_chrome_trace,
)

__all__ = [
    "CallbackGauge",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "Span",
    "adopt",
    "annotate",
    "arm",
    "armed",
    "bind_request_id",
    "chrome_trace_events",
    "current_span",
    "disarm",
    "end_span",
    "global_registry",
    "log_event",
    "request_id",
    "reset",
    "roots",
    "search_latency_schema",
    "span",
    "span_tree",
    "start_span",
    "take_roots",
    "unbind_request_id",
    "write_chrome_trace",
]
