"""The persistent schema repository: ingest once, search forever.

Cupid frames Match as a service over a *repository* of schemas
(Section 2), but an in-process :class:`~repro.pipeline.session.
MatchSession` forgets everything at exit. :class:`SchemaRepository`
makes the session's cache tiers durable:

* **ingest(schema)** prepares the schema eagerly and serializes every
  persistent tier (:mod:`repro.repository.artifacts`) under a
  content-addressed id — the cold-start cost is paid once per schema
  *ever*, not once per process;
* a **vocabulary index** (:mod:`repro.repository.index`) ranks the
  corpus against a query without matching it;
* **search(query, k, candidates=C)** runs the full pipeline only on
  the top-C candidates and returns ranked results with pruning stats;
* a **persistent similarity cache** stores the linguistic memo's
  token/element tiers between processes, keyed by thesaurus + config
  fingerprints, amortizing the cold-token cost of the category scan.

Everything restored is bit-identical to freshly-prepared state, so a
search against a reopened repository returns exactly the results the
in-memory path produces (``tests/test_repository.py`` asserts both).

Directory layout (all JSON, human-diffable)::

    <root>/repository.json    manifest: versions, config, fingerprints,
                              schema catalog, index segment sequence
    <root>/schemas/<id>.json  one artifact file per ingested schema
    <root>/index/seg-*.json   append-only index segments (one per
                              ingest batch; compaction folds them)
    <root>/simcache.json      persistent name-similarity cache
    <root>/ingest.intent.json write-ahead ingest intents (present only
                              between an ingest and its manifest
                              publish; resolved on reopen)

Since PR 7 the vocabulary index persists as **append-only segments**
(:mod:`repro.repository.segments`) instead of one rewritten
``index.json``: each flush appends a segment holding only the batch's
profiles, opening replays the checksummed segment sequence instead of
re-scanning artifacts, and compaction folds the sequence back to one
file. The repository is also safe for concurrent use from multiple
threads (the serving subsystem's shape): catalog/index mutations are
guarded by one short-held lock, while schema preparation and candidate
matching — the expensive parts — run outside it, optionally on a
caller-supplied :class:`~repro.pipeline.session.MatchSession` so a
session *pool* can search and ingest concurrently.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.config import CupidConfig
from repro.exceptions import (
    RepositoryError,
    RepositoryReadOnlyError,
    SchemaError,
    SegmentError,
)
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.thesaurus import Thesaurus
from repro.obs import trace
from repro.model.schema import Schema
from repro.pipeline.prepared import PreparedSchema
from repro.pipeline.result import CupidResult
from repro.pipeline.session import MatchSession
from repro.repository.artifacts import (
    FORMAT_VERSION,
    SEMANTIC_CONFIG_FIELDS,
    canonical_category_key,
    canonical_schema_dict,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    prepared_from_dict,
    prepared_to_dict,
    schema_fingerprint,
)
from repro.repository.durability import atomic_write_json
from repro.repository.index import VocabularyIndex, token_profile
from repro.tree.schema_tree import verify_interval_encoding
from repro.repository.segments import (
    IndexSegment,
    compact_segments,
    load_index_from_segments,
    next_segment_id,
    read_segment,
    remove_segment_files,
    write_segment,
)

MANIFEST_FILE = "repository.json"
#: Legacy single-file index (pre-segment repositories); read-only
#: backward compatibility — new saves always write segments, and the
#: first post-migration manifest write deletes the stale file.
INDEX_FILE = "index.json"
SIMCACHE_FILE = "simcache.json"
SCHEMAS_DIR = "schemas"
#: Write-ahead record of ingests whose artifacts may be on disk but
#: whose manifest publication has not happened yet. Reopening a
#: repository resolves every entry: completed (artifact verifies
#: against its content-addressed id) or rolled back — a crash between
#: the artifact write and the manifest publish is never half-visible.
INTENT_FILE = "ingest.intent.json"

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(name: str) -> str:
    slug = _SLUG_RE.sub("-", name.lower()).strip("-")
    return slug[:40] or "schema"


def match_score(result: CupidResult) -> float:
    """One number ranking a query/candidate match: the root pair's
    wsim.

    The roots are always compared (never pruned), and their weighted
    similarity is Cupid's own aggregate of how much of the two trees
    links strongly — the natural "how similar are these schemas"
    readout. Falls back to the mean leaf-mapping similarity for
    pipelines without a TreeMatch result (adapted baselines).
    """
    tm = result.treematch_result
    if tm is not None:
        return tm.wsim_of(tm.source_tree.root, tm.target_tree.root)
    elements = list(result.leaf_mapping)
    if not elements:
        return 0.0
    return sum(e.similarity for e in elements) / len(elements)


@dataclass
class RankedMatch:
    """One search hit: a corpus schema with its full match result."""

    schema_id: str
    schema_name: str
    score: float
    result: CupidResult


@dataclass
class RepositorySearchResult:
    """Ranked top-k matches plus per-stage search statistics."""

    query_name: str
    k: int
    matches: List[RankedMatch]
    #: Full index ranking ``(schema_id, candidate score)`` — what the
    #: pruning decision was based on.
    candidate_scores: List[Tuple[str, float]] = field(default_factory=list)
    #: corpus_size / candidates_considered / candidates_pruned /
    #: time_index_ms / time_match_ms ...
    stats: Dict[str, Any] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)


class SchemaRepository:
    """A searchable on-disk corpus of prepared schemas.

    >>> repo = SchemaRepository(path)          # create or reopen
    >>> repo.ingest(schema)                    # pay cold start once
    >>> hits = repo.search(query, k=3, candidates=16)
    >>> repo.save()                            # flush manifest+caches

    Construction opens an existing repository (validating format
    version, config, and thesaurus fingerprints) or initializes an
    empty one. ``config``/``thesaurus`` follow the session defaults;
    when reopening, the persisted config is used unless an explicitly
    passed one matches the stored semantic fingerprint. The repository
    works as a context manager (``with SchemaRepository(p) as repo:``)
    and flushes on exit.
    """

    def __init__(
        self,
        path: str,
        config: Optional[CupidConfig] = None,
        thesaurus: Optional[Thesaurus] = None,
        must_exist: bool = False,
    ) -> None:
        self.path = os.path.abspath(path)
        self.thesaurus = (
            thesaurus if thesaurus is not None else builtin_thesaurus()
        )
        manifest_path = os.path.join(self.path, MANIFEST_FILE)
        exists = os.path.exists(manifest_path)
        if must_exist and not exists:
            raise RepositoryError(
                f"no schema repository at {self.path!r} "
                f"(missing {MANIFEST_FILE})"
            )
        self._counters: Dict[str, int] = {
            "ingests": 0,
            "ingest_duplicates": 0,
            "artifact_loads": 0,
            "searches": 0,
            "search_candidates_matched": 0,
            "search_candidates_pruned": 0,
            "simcache_preloaded_entries": 0,
            "simcache_discarded": 0,
            "simcache_write_failures": 0,
            "index_rebuilds": 0,
            "segments_loaded": 0,
            "segments_written": 0,
            "segment_fallbacks": 0,
            "segment_compactions": 0,
            "recovered_ingests": 0,
            "rolled_back_ingests": 0,
            "write_failures": 0,
        }
        # Guards the catalog, index, segment bookkeeping, counters,
        # and the loaded-artifact cache. Held only for in-memory
        # mutation and manifest/segment writes — preparation and
        # matching (the expensive work) always run outside it.
        self._lock = threading.RLock()
        #: Manifest entries of the on-disk segment sequence, in replay
        #: order.
        self._segment_entries: List[Dict[str, Any]] = []
        #: Profiles added since the last segment flush (the next
        #: segment's contents). Keys are also live in self._index.
        self._pending_adds: Dict[str, Dict[str, int]] = {}
        self._rebuild_index_pending = False
        #: Unpublished ingest intents (mirrored in INTENT_FILE), keyed
        #: by schema id; entries drop out once a manifest write makes
        #: their ingest durable.
        self._intent: Dict[str, Dict[str, Any]] = {}
        #: Why the repository is read-only, or None. Set on any failed
        #: durable write, cleared by the next successful one — the
        #: degradation re-probes the disk instead of latching.
        self._read_only_reason: Optional[str] = None
        self._dirty = False
        if exists:
            self._open_existing(manifest_path, config)
        else:
            self._initialize(config)
        self.session = MatchSession(
            thesaurus=self.thesaurus, config=self.config
        )
        #: schema_id -> restored/ingested PreparedSchema, bounded by
        #: the same LRU limit the session honors.
        self._loaded: Dict[str, PreparedSchema] = {}
        # Intent recovery marks the repository dirty so the recovered
        # (or rolled-back) state reaches the manifest on the next save.
        self._dirty = self._dirty or not exists
        self._load_simcache()
        if self._rebuild_index_pending:
            self._rebuild_index()

    # ------------------------------------------------------------------
    # Open / create
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        config: Optional[CupidConfig] = None,
        thesaurus: Optional[Thesaurus] = None,
    ) -> "SchemaRepository":
        """Open an existing repository (raises if ``path`` has none)."""
        return cls(path, config=config, thesaurus=thesaurus, must_exist=True)

    @staticmethod
    def _default_config() -> CupidConfig:
        """This process's defaults with the repository store policy.

        Repository search is the workload ``store="auto"`` exists for:
        query sizes are unknown and most candidate pairs are
        dissimilar, where lazily-tiled planes stay virtual.
        """
        return CupidConfig().replace(store="auto")

    def _initialize(self, config: Optional[CupidConfig]) -> None:
        if config is None:
            config = self._default_config()
        config.validate()
        self.config = config
        self._schemas: Dict[str, Dict[str, Any]] = {}
        self._index = VocabularyIndex()
        os.makedirs(os.path.join(self.path, SCHEMAS_DIR), exist_ok=True)

    def _open_existing(
        self, manifest_path: str, config: Optional[CupidConfig]
    ) -> None:
        manifest = _read_json(manifest_path, "repository manifest")
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise RepositoryError(
                f"repository format version {version!r} is not supported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        try:
            stored_config = config_from_dict(manifest["config"])
            stored_thesaurus_fp = manifest["thesaurus_fingerprint"]
            self._schemas = dict(manifest["schemas"])
        except (KeyError, ValueError, TypeError) as exc:
            raise RepositoryError(
                f"repository manifest is corrupt: {exc!r}"
            ) from exc
        if self.thesaurus.fingerprint() != stored_thesaurus_fp:
            raise RepositoryError(
                "thesaurus mismatch: this repository's artifacts were "
                "prepared under different linguistic knowledge (open it "
                "with the thesaurus it was created with)"
            )
        if config is not None:
            if config_fingerprint(config) != config_fingerprint(
                stored_config
            ):
                raise RepositoryError(
                    "config mismatch: the passed config's result-"
                    "affecting parameters differ from the ones this "
                    "repository's artifacts were prepared under"
                )
            self.config = config
        else:
            # Restore only the result-affecting fields. Runtime knobs
            # (engine, backend, block size, cache bounds) come from
            # this process's defaults: pinning e.g. a stdlib backend
            # recorded at create time would silently slow every later
            # open on a numpy machine. The store keeps the repository
            # default ("auto") via _default_config().
            self.config = self._default_config().replace(**{
                name: getattr(stored_config, name)
                for name in SEMANTIC_CONFIG_FIELDS
            })
        entries = manifest.get("index_segments")
        if entries is not None:
            # The normal open path since PR 7: replay the checksummed
            # segment sequence — O(index size), no artifact bytes read.
            replay_span = trace.start_span(
                "repo.segment_replay", segments=len(entries)
            )
            try:
                self._index = load_index_from_segments(self.path, entries)
                self._segment_entries = [dict(entry) for entry in entries]
                self._counters["segments_loaded"] += len(
                    self._segment_entries
                )
            except SegmentError:
                # A segment the manifest names is missing, torn, or
                # fails its checksum: the artifacts are the source of
                # truth, so fall back to the full re-scan.
                self._counters["segment_fallbacks"] += 1
                self._index = VocabularyIndex()
                self._segment_entries = []
                if replay_span is not None:
                    replay_span.annotate(fallback=True)
            finally:
                trace.end_span(replay_span)
            if os.path.exists(os.path.join(self.path, INDEX_FILE)):
                # A crash between the first segment-bearing manifest
                # and the legacy-file cleanup left a stale index.json
                # behind; mark dirty so the next save finishes the
                # migration (the segment sequence is authoritative).
                self._dirty = True
        else:
            # Pre-segment repository: read the legacy single-file
            # index once; the next save persists it as a segment.
            index_path = os.path.join(self.path, INDEX_FILE)
            if os.path.exists(index_path):
                self._index = VocabularyIndex.from_dict(
                    _read_json(index_path, "repository index")
                )
                self._pending_adds = {
                    schema_id: dict(profile)
                    for schema_id, profile in self._index.profile_items()
                }
            else:
                self._index = VocabularyIndex()
        self._recover_intent()
        if self._index.indexed_ids() != set(self._schemas):
            # A missing or stale index (crash between the index and
            # manifest writes): searching through it would silently
            # drop or over-rank schemas, so rebuild from the artifact
            # files — they are the source of truth.
            self._index = VocabularyIndex()
            self._segment_entries = []
            self._pending_adds = {}
            if self._schemas:
                self._rebuild_index_pending = True

    def _recover_intent(self) -> None:
        """Resolve the write-ahead intent record left by a crash.

        Every pending entry is either **completed** — its artifact file
        parses and hashes back to the content-addressed id the intent
        named, so the ingest is finished by registering it in the
        catalog and index — or **rolled back**: the partial artifact
        (missing, torn, or wrong content) is deleted. Either way the
        reopened repository is a consistent prefix-plus-recoveries of
        the ingest order; nothing is ever half-visible.

        Idempotent under re-crash: completed entries stay in the
        intent record until a manifest write publishes them, so dying
        again before that write just re-runs the same recovery.
        """
        path = os.path.join(self.path, INTENT_FILE)
        if not os.path.exists(path):
            return
        try:
            pending = list(_read_json(path, "ingest intent record")["pending"])
        except (RepositoryError, KeyError, TypeError):
            # A torn intent record was being written when the process
            # died — the artifact writes it would have covered never
            # started, so there is nothing to resolve.
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return
        for entry in pending:
            schema_id = (
                entry.get("schema_id") if isinstance(entry, dict) else None
            )
            if not isinstance(schema_id, str):
                continue
            if schema_id in self._schemas:
                # Published before the crash; only the record cleanup
                # was lost. The next save rewrites the intent file.
                continue
            if self._artifact_is_complete(schema_id):
                try:
                    meta = dict(entry["meta"])
                    profile = {
                        str(token): int(count)
                        for token, count in entry["profile"].items()
                    }
                except (KeyError, TypeError, ValueError):
                    continue
                self._schemas[schema_id] = meta
                self._index.add(schema_id, profile)
                self._pending_adds[schema_id] = profile
                self._intent[schema_id] = dict(entry)
                self._counters["recovered_ingests"] += 1
            else:
                try:
                    os.remove(self._artifact_path(schema_id))
                except OSError:
                    pass
                self._counters["rolled_back_ingests"] += 1
            self._dirty = True
        if not self._intent:
            # Nothing left pending (all entries were published or
            # rolled back); the record has done its job.
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _artifact_is_complete(self, schema_id: str) -> bool:
        """True if the artifact file hashes back to its own id.

        Ids are content-addressed (``<slug>-<fingerprint[:12]>``), so a
        complete artifact proves itself: the canonical schema payload
        inside must fingerprint to the id's suffix. A torn or foreign
        file cannot.
        """
        try:
            payload = _read_json(
                self._artifact_path(schema_id), f"artifact {schema_id!r}"
            )
            fingerprint = schema_fingerprint(payload["schema"])
        except (RepositoryError, KeyError, TypeError):
            return False
        return schema_id.endswith(fingerprint[:12])

    def _disown_foreign(
        self, schema: Union[Schema, PreparedSchema]
    ) -> Union[Schema, PreparedSchema]:
        """Strip a ``PreparedSchema`` built by someone else's matcher.

        Foreign artifacts (different thesaurus/config) would slip past
        every fingerprint guard: ingest would persist them, search
        would build a query token profile missing the expansions the
        corpus was indexed under. Falling back to the raw schema makes
        both paths re-prepare under this repository's components.
        """
        if isinstance(schema, PreparedSchema) and not schema.prepared_by(
            self.session.pipeline.linguistic
        ):
            return schema.schema
        return schema

    def _rebuild_index(self) -> None:
        """Recreate the vocabulary index from the artifact files.

        The artifacts are the source of truth; the index is a derived
        view, so losing ``index.json`` (crash between the manifest and
        index writes) is recoverable rather than fatal. Loads every
        artifact once — the one open path that is not lazy, taken only
        in this degraded state.
        """
        for schema_id in self._schemas:
            profile = token_profile(self.load(schema_id).linguistic)
            self._index.add(schema_id, profile)
            self._pending_adds[schema_id] = profile
        self._counters["index_rebuilds"] += 1
        self._rebuild_index_pending = False
        self._dirty = True

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self,
        schema: Union[Schema, PreparedSchema],
        session: Optional[MatchSession] = None,
    ) -> str:
        """Add ``schema`` to the corpus; returns its repository id.

        Preparation is forced eagerly and every persistent tier is
        serialized to ``schemas/<id>.json``. Ids are content-addressed
        (canonical schema hash), so re-ingesting an identical schema is
        a cheap no-op returning the existing id — the duplicate check
        runs on the raw schema, before any preparation.

        Concurrent ingest never takes a long-held lock: preparation
        and the artifact write happen outside the repository lock
        (idempotent — both are pure functions of the schema), and only
        the catalog/index registration is serialized. ``session``
        selects which :class:`MatchSession` pays the preparation (a
        serving pool passes its per-worker session; default is the
        repository's own).

        Durability ordering: a write-ahead intent record (everything a
        reopen needs to finish or undo this ingest) is durable *before*
        the artifact write starts, and cleared only after a manifest
        write publishes the schema — a crash anywhere in between is
        resolved on reopen, never half-visible. A failed durable write
        (disk full) raises :class:`RepositoryReadOnlyError`.
        """
        ingest_span = trace.start_span("repo.ingest")
        if ingest_span is None:
            return self._ingest_impl(schema, session)
        try:
            schema_id = self._ingest_impl(schema, session)
        finally:
            trace.end_span(ingest_span)
        ingest_span.annotate(schema_id=schema_id)
        return schema_id

    def _ingest_impl(
        self,
        schema: Union[Schema, PreparedSchema],
        session: Optional[MatchSession] = None,
    ) -> str:
        schema = self._disown_foreign(schema)
        raw = schema.schema if isinstance(schema, PreparedSchema) else schema
        canonical = canonical_schema_dict(raw)
        fingerprint = schema_fingerprint(canonical)
        schema_id = f"{_slug(raw.name)}-{fingerprint[:12]}"
        with self._lock:
            if schema_id in self._schemas:
                self._counters["ingest_duplicates"] += 1
                return schema_id
        prepared = (session or self.session).prepare(schema)
        payload = prepared_to_dict(prepared, canonical=canonical)
        profile = token_profile(prepared.linguistic)
        meta = {
            "name": prepared.schema.name,
            "file": f"{SCHEMAS_DIR}/{schema_id}.json",
            "elements": len(prepared.schema.elements),
            "leaves": len(prepared.leaf_layout.leaves),
        }
        with self._lock:
            if schema_id in self._schemas:
                self._counters["ingest_duplicates"] += 1
                return schema_id
            self._intent[schema_id] = {
                "schema_id": schema_id,
                "meta": meta,
                "profile": profile,
            }
            try:
                self._write_intent_locked()
            except Exception:
                self._intent.pop(schema_id, None)
                raise
        artifact_path = self._artifact_path(schema_id)
        try:
            self._durable(
                lambda: atomic_write_json(
                    artifact_path, payload, site="repo.artifact"
                ),
                f"artifact write for {schema_id!r}",
            )
        except Exception:
            with self._lock:
                self._intent.pop(schema_id, None)
                try:
                    self._write_intent_locked()
                except RepositoryReadOnlyError:
                    # Disk still refusing writes; the stale record is
                    # harmless — a reopen rolls it back (no artifact).
                    pass
            raise
        with self._lock:
            if schema_id in self._schemas:
                # Lost a race against another ingest of the same
                # schema; the artifact write was byte-identical.
                self._counters["ingest_duplicates"] += 1
                return schema_id
            # Catalog and index are published together under the lock,
            # so any reader snapshot sees a consistent prefix of the
            # ingest order — never a schema that ranks but can't load
            # (or the reverse).
            self._schemas[schema_id] = meta
            self._index.add(schema_id, profile)
            self._pending_adds[schema_id] = profile
            self._cache_loaded(schema_id, prepared)
            self._counters["ingests"] += 1
            self._dirty = True
        return schema_id

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def schema_ids(self) -> List[str]:
        """Ingested ids, sorted (the corpus catalog)."""
        with self._lock:
            return sorted(self._schemas)

    def describe(self, schema_id: str) -> Dict[str, Any]:
        """Catalog metadata for one schema id."""
        with self._lock:
            meta = self._schemas.get(schema_id)
            if meta is None:
                raise RepositoryError(
                    f"repository has no schema {schema_id!r}"
                )
            return dict(meta)

    def __len__(self) -> int:
        with self._lock:
            return len(self._schemas)

    def __contains__(self, schema_id: str) -> bool:
        with self._lock:
            return schema_id in self._schemas

    def load(self, schema_id: str) -> PreparedSchema:
        """The restored :class:`PreparedSchema` for ``schema_id``.

        Reads the artifact file on first use (lazily — opening a
        repository loads no schema bytes at all) and caches the
        restored object for the repository's lifetime, subject to the
        session's LRU bound. Restoration runs outside the lock (two
        racing loads restore twice and one result wins — wasted work,
        never a torn artifact).
        """
        with self._lock:
            prepared = self._loaded.get(schema_id)
            if prepared is not None:
                # LRU refresh mirrors the session's policy.
                self._loaded[schema_id] = self._loaded.pop(schema_id)
                return prepared
            if schema_id not in self._schemas:
                raise RepositoryError(
                    f"repository has no schema {schema_id!r}"
                )
        payload = _read_json(
            self._artifact_path(schema_id), f"artifact {schema_id!r}"
        )
        with self._lock:
            racing = self._loaded.get(schema_id)
            if racing is not None:
                return racing
        prepared = prepared_from_dict(
            payload, self.session.pipeline.linguistic, self.config
        )
        with self._lock:
            racing = self._loaded.get(schema_id)
            if racing is not None:
                # First restore published wins; every later match of
                # this id shares its lazy tiers.
                return racing
            self._counters["artifact_loads"] += 1
            self._cache_loaded(schema_id, prepared)
        return prepared

    def _cache_loaded(
        self, schema_id: str, prepared: PreparedSchema
    ) -> None:
        self._loaded[schema_id] = prepared
        limit = self.config.max_prepared_schemas
        while limit and len(self._loaded) > limit:
            victim = next(iter(self._loaded))
            if victim == schema_id:
                break
            del self._loaded[victim]

    def _artifact_path(self, schema_id: str) -> str:
        return os.path.join(self.path, SCHEMAS_DIR, f"{schema_id}.json")

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self,
        query: Union[Schema, PreparedSchema],
        k: int = 5,
        candidates: Optional[int] = None,
        session: Optional[MatchSession] = None,
        deadline: Optional[Any] = None,
    ) -> RepositorySearchResult:
        """Top-k most similar corpus schemas for ``query``.

        The vocabulary index ranks the whole corpus cheaply; the full
        Cupid pipeline then runs only against the top ``candidates``
        schemas (``None`` = all of them — the brute-force baseline the
        benchmark's recall is measured against). Results are ranked by
        :func:`match_score` and carry their complete
        :class:`CupidResult`, so callers can inspect every mapping.

        ``session`` selects which :class:`MatchSession` executes the
        matches (a serving pool passes its per-worker session), and
        ``deadline`` — any object with a ``check(context)`` method
        raising on expiry, e.g. :class:`repro.serving.Deadline` — is
        consulted between candidate matches so a timed-out search
        stops burning its session promptly. The ranking snapshot is
        taken under the repository lock, so a search concurrent with
        ingest sees a consistent prefix of the corpus: every ranked id
        is loadable, and no half-registered schema ranks.
        """
        if k < 1:
            raise RepositoryError(f"search k must be >= 1 (got {k})")
        if candidates is not None and candidates < 1:
            raise RepositoryError(
                f"search candidates must be >= 1 (got {candidates})"
            )
        search_span = trace.start_span("repo.search", k=k)
        try:
            session = session or self.session
            prep_q = session.prepare(self._disown_foreign(query))
            # The index/match child spans share the exact boundaries of
            # the time_index_ms / time_match_ms stats, so the span tree
            # and the latency block always tell the same story.
            index_span = trace.start_span("repo.search.index")
            index_start = time.perf_counter()
            try:
                with self._lock:
                    ranking = self._index.score(
                        token_profile(prep_q.linguistic), self.thesaurus
                    )
                    names = {
                        sid: self._schemas[sid]["name"]
                        for sid, _ in ranking
                    }
                    corpus = len(self._schemas)
            finally:
                trace.end_span(index_span)
            index_elapsed = time.perf_counter() - index_start
            shortlist = [sid for sid, _ in ranking]
            if candidates is not None:
                shortlist = shortlist[:candidates]

            match_span = trace.start_span(
                "repo.search.match", candidates=len(shortlist)
            )
            match_start = time.perf_counter()
            try:
                matches = []
                for position, sid in enumerate(shortlist):
                    if deadline is not None:
                        deadline.check(
                            f"search {prep_q.schema.name!r} after "
                            f"{position} of {len(shortlist)} candidate "
                            "matches"
                        )
                    matches.append(
                        RankedMatch(
                            schema_id=sid,
                            schema_name=names[sid],
                            score=0.0,
                            result=session.match(prep_q, self.load(sid)),
                        )
                    )
                for match in matches:
                    match.score = match_score(match.result)
            finally:
                trace.end_span(match_span)
            match_elapsed = time.perf_counter() - match_start
            matches.sort(key=lambda m: (-m.score, m.schema_id))

            with self._lock:
                self._counters["searches"] += 1
                self._counters["search_candidates_matched"] += len(shortlist)
                self._counters["search_candidates_pruned"] += (
                    corpus - len(shortlist)
                )
            if search_span is not None:
                search_span.annotate(
                    corpus_size=corpus,
                    candidates_considered=len(shortlist),
                    candidates_pruned=corpus - len(shortlist),
                )
            return RepositorySearchResult(
                query_name=prep_q.schema.name,
                k=k,
                matches=matches[:k],
                candidate_scores=ranking,
                stats={
                    "corpus_size": corpus,
                    "candidates_considered": len(shortlist),
                    "candidates_pruned": corpus - len(shortlist),
                    "time_index_ms": round(index_elapsed * 1000.0, 3),
                    "time_match_ms": round(match_elapsed * 1000.0, 3),
                },
            )
        finally:
            trace.end_span(search_span)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self, schema_id: str) -> None:
        """Check ``schema_id``'s artifacts against a fresh preparation.

        Restores the schema from its artifact *file* (never the
        in-memory cache — what is verified is what a future process
        will see), re-prepares it from scratch, and compares every
        persisted tier (normalized names, category tables, vocabulary,
        leaf order). Raises :class:`RepositoryError` on any drift —
        the invariant behind the repository's bit-parity contract.
        """
        if schema_id not in self:
            raise RepositoryError(
                f"repository has no schema {schema_id!r}"
            )
        payload = _read_json(
            self._artifact_path(schema_id), f"artifact {schema_id!r}"
        )
        restored = prepared_from_dict(
            payload, self.session.pipeline.linguistic, self.config
        )
        matcher = self.session.pipeline.linguistic
        fresh = matcher.prepare(restored.schema)
        stored = restored.linguistic

        fresh_names = {
            eid: name for eid, name in fresh.normalized.items()
        }
        if fresh_names != dict(stored.normalized):
            raise RepositoryError(
                f"{schema_id!r}: restored normalized names differ from "
                "a fresh preparation"
            )
        # Fresh category keys embed this process's element ids; map
        # them to the canonical form artifacts persist.
        canonical_of = {
            element.element_id: f"n{i}"
            for i, element in enumerate(restored.schema.elements)
        }
        fresh_keys = [
            canonical_category_key(key, canonical_of)
            for key in fresh.categories.keys()
        ]
        if fresh_keys != list(stored.categories.keys()):
            raise RepositoryError(
                f"{schema_id!r}: restored category order differs from "
                "a fresh preparation"
            )
        for key, fresh_cat in zip(fresh_keys, fresh.categories.values()):
            stored_cat = stored.categories[key]
            if (
                fresh_cat.keywords != stored_cat.keywords
                or fresh_cat.source != stored_cat.source
                or [m.element_id for m in fresh_cat.members]
                != [m.element_id for m in stored_cat.members]
            ):
                raise RepositoryError(
                    f"{schema_id!r}: restored category {key!r} differs "
                    "from a fresh preparation"
                )
        if stored.vocabulary is not None:
            from repro.linguistic.kernel import SchemaVocabulary

            rebuilt = SchemaVocabulary(fresh)
            vocabulary = stored.vocabulary
            if (
                [n.raw for n in rebuilt.names]
                != [n.raw for n in vocabulary.names]
                or rebuilt.class_is_dtype != vocabulary.class_is_dtype
                or rebuilt.class_texts != vocabulary.class_texts
                or rebuilt.class_profiles != vocabulary.class_profiles
                or rebuilt.profile_names != vocabulary.profile_names
                or rebuilt.profile_members != vocabulary.profile_members
                or rebuilt.profile_of != vocabulary.profile_of
            ):
                raise RepositoryError(
                    f"{schema_id!r}: restored vocabulary differs from "
                    "a fresh factoring"
                )
        leaf_order = [
            canonical_of[leaf.element.element_id]
            for leaf in restored.leaf_layout.leaves
        ]
        if leaf_order != payload["artifacts"]["leaf_order"]:
            raise RepositoryError(
                f"{schema_id!r}: rebuilt leaf layout order differs from "
                "the ingested one"
            )
        # The tree tier is never serialized — it rebuilds (and its
        # interval encoding re-derives) deterministically from the
        # schema, which is exactly why the encoding needed no artifact
        # format bump. Cross-check the restored tree's encoding against
        # independent descendant recomputation so a restore can never
        # serve interval-addressed answers that drifted from the
        # structure.
        try:
            verify_interval_encoding(restored.tree)
        except SchemaError as exc:
            raise RepositoryError(
                f"{schema_id!r}: restored tree fails the interval-"
                f"encoding oracle: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, auto_compact: bool = True) -> None:
        """Flush the index segment, manifest, and similarity cache.

        Profiles added since the last flush become **one** append-only
        segment — the "per ingest batch" unit — and the manifest's
        segment sequence grows by one entry. When the sequence exceeds
        ``config.segment_compaction_threshold`` it is folded into a
        single compacted segment first; ``auto_compact=False`` skips
        that (the serving subsystem flushes on the request path and
        compacts from a background thread instead).
        """
        stale: List[str] = []
        with self._lock:
            self._flush_pending_segment()
            threshold = self.config.segment_compaction_threshold
            if (
                auto_compact
                and threshold
                and len(self._segment_entries) > threshold
            ):
                stale = self._compact_segments_locked()
            if self._dirty:
                self._write_manifest()
                self._dirty = False
                self._finish_publish_locked()
        remove_segment_files(self.path, stale)
        self._save_simcache()

    def compact(self) -> int:
        """Fold the segment sequence into one compacted segment now.

        Flushes any pending batch first, persists the new manifest,
        then deletes the superseded files. Returns the number of live
        segments after compaction (always 1 for a non-empty index, 0
        for an empty one). Idempotent on the index contents — a
        compacted repository compacts to the same profiles again.
        """
        compact_span = trace.start_span("repo.compact")
        try:
            with self._lock:
                self._flush_pending_segment()
                stale = self._compact_segments_locked()
                self._write_manifest()
                self._dirty = False
                self._finish_publish_locked()
                count = len(self._segment_entries)
            remove_segment_files(self.path, stale)
            self._save_simcache()
            if compact_span is not None:
                compact_span.annotate(
                    live_segments=count, removed_segments=len(stale)
                )
            return count
        finally:
            trace.end_span(compact_span)

    def segment_count(self) -> int:
        """Live segments plus the pending (unflushed) batch, if any."""
        with self._lock:
            return len(self._segment_entries) + (
                1 if self._pending_adds else 0
            )

    def _flush_pending_segment(self) -> None:
        """Write the pending batch as one new segment (lock held)."""
        if not self._pending_adds:
            return
        segment = IndexSegment(
            segment_id=next_segment_id(self._segment_entries),
            profiles=self._pending_adds,
        )
        entry = self._durable(
            lambda: write_segment(self.path, segment),
            "index segment write",
        )
        self._segment_entries.append(entry)
        self._pending_adds = {}
        self._counters["segments_written"] += 1
        self._dirty = True

    def _compact_segments_locked(self) -> List[str]:
        """Fold the on-disk sequence into one segment (lock held).

        Returns the superseded files for post-manifest deletion.
        """
        if len(self._segment_entries) <= 1:
            return []
        entries, stale = self._durable(
            lambda: compact_segments(
                self.path, self._index, self._segment_entries
            ),
            "segment compaction write",
        )
        self._segment_entries = entries
        self._counters["segment_compactions"] += 1
        self._counters["segments_written"] += 1
        self._dirty = True
        return stale

    def _write_manifest(self) -> None:
        self._durable(
            lambda: atomic_write_json(
                os.path.join(self.path, MANIFEST_FILE),
                {
                    "format_version": FORMAT_VERSION,
                    "config": config_to_dict(self.config),
                    "config_fingerprint": config_fingerprint(self.config),
                    "thesaurus_fingerprint": self.thesaurus.fingerprint(),
                    "schemas": self._schemas,
                    "index_segments": self._segment_entries,
                },
                site="repo.manifest",
            ),
            "manifest write",
        )

    def _finish_publish_locked(self) -> None:
        """Post-manifest cleanup (lock held, manifest durable).

        Drops intent entries the manifest just published (and rewrites
        or removes the intent record), then deletes the legacy
        single-file index — every new manifest carries the segment
        sequence, so ``index.json`` is stale the moment one lands. A
        crash before this cleanup loses nothing: reopening resolves
        published intent entries as no-ops and ignores the legacy file
        whenever the manifest names segments.
        """
        published = [sid for sid in self._intent if sid in self._schemas]
        for schema_id in published:
            del self._intent[schema_id]
        intent_path = os.path.join(self.path, INTENT_FILE)
        if published or (not self._intent and os.path.exists(intent_path)):
            try:
                self._write_intent_locked()
            except RepositoryReadOnlyError:
                # The manifest is durable; a stale intent record is
                # re-resolved (and found published) on the next open.
                pass
        try:
            os.remove(os.path.join(self.path, INDEX_FILE))
        except OSError:
            pass

    def _write_intent_locked(self) -> None:
        """Persist (or clear) the write-ahead intent record."""
        path = os.path.join(self.path, INTENT_FILE)
        if not self._intent:
            try:
                os.remove(path)
            except OSError:
                pass
            return
        self._durable(
            lambda: atomic_write_json(
                path,
                {
                    "format_version": FORMAT_VERSION,
                    "pending": [
                        self._intent[schema_id]
                        for schema_id in sorted(self._intent)
                    ],
                },
                site="repo.intent",
            ),
            "ingest intent write",
        )

    def _durable(self, write, what: str):
        """Run a durable-write thunk with read-only degradation.

        A failed write (``OSError`` — disk full, read-only mount)
        counts against ``write_failures``, records the reason, and
        surfaces :class:`RepositoryReadOnlyError`; a successful one
        clears the flag. Non-sticky by design: every durable write
        re-probes the disk, so the repository exits read-only the
        moment the condition does.
        """
        try:
            result = write()
        except OSError as exc:
            with self._lock:
                self._counters["write_failures"] += 1
                self._read_only_reason = f"{what} failed: {exc}"
            raise RepositoryReadOnlyError(
                f"{what} failed ({exc}); the repository is serving "
                "read-only until a durable write succeeds"
            ) from exc
        with self._lock:
            self._read_only_reason = None
        return result

    def close(self) -> None:
        """Alias for :meth:`save` (the context-manager exit hook)."""
        self.save()

    def __enter__(self) -> "SchemaRepository":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Flush even when unwinding an exception: every ingest leaves
        # the in-memory catalog consistent with the artifact files
        # already on disk, so persisting it can only *reduce* the loss
        # (e.g. a CLI piped into `head` dying of BrokenPipeError after
        # a successful bulk ingest). Save errors must not mask the
        # original exception, though.
        try:
            self.save()
        except Exception:
            if exc_type is None:
                raise

    def _memo_computed_entries(self) -> int:
        """How many similarity entries this process computed itself.

        Every memo miss computes (and stores) exactly one token or
        element entry; preloaded entries arrive without misses. Used to
        skip rewriting ``simcache.json`` when a session added nothing.
        """
        memo = self.session.pipeline.linguistic.memo
        if memo is None:
            return 0
        return memo.token_misses + memo.element_misses

    def _load_simcache(self) -> None:
        self._simcache_baseline = self._memo_computed_entries()
        memo = self.session.pipeline.linguistic.memo
        path = os.path.join(self.path, SIMCACHE_FILE)
        if memo is None or not os.path.exists(path):
            return
        try:
            data = _read_json(path, "similarity cache")
        except RepositoryError:
            # A torn cache is a cache miss, not a broken repository.
            self._counters["simcache_discarded"] += 1
            return
        if (
            data.get("format_version") != FORMAT_VERSION
            or data.get("thesaurus_fingerprint")
            != self.thesaurus.fingerprint()
            or data.get("config_fingerprint")
            != config_fingerprint(self.config)
        ):
            # Entries computed under other knowledge would poison
            # bit-parity; a stale cache is silently dropped.
            self._counters["simcache_discarded"] += 1
            return
        self._counters["simcache_preloaded_entries"] += memo.preload_cache(
            data.get("caches", {})
        )

    def _save_simcache(self) -> None:
        memo = self.session.pipeline.linguistic.memo
        if memo is None:
            return
        if self._memo_computed_entries() == self._simcache_baseline:
            # Nothing new computed since the preload (e.g. a fully
            # cache-warm search): the file on disk is already current.
            return
        try:
            atomic_write_json(
                os.path.join(self.path, SIMCACHE_FILE),
                {
                    "format_version": FORMAT_VERSION,
                    "thesaurus_fingerprint": self.thesaurus.fingerprint(),
                    "config_fingerprint": config_fingerprint(self.config),
                    "caches": memo.export_cache(),
                },
                site="repo.simcache",
            )
        except OSError:
            # The simcache is a pure optimization: failing to persist
            # it (read-only mount, missing permissions) must not fail
            # an otherwise-successful read-only command. Manifest and
            # index writes still raise — those ARE the data.
            self._counters["simcache_write_failures"] += 1
            return
        self._simcache_baseline = self._memo_computed_entries()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cache_info(self) -> Dict[str, Any]:
        """Repository counters merged with the session's cache tiers."""
        with self._lock:
            info: Dict[str, Any] = dict(self._counters)
            info["repository_schemas"] = len(self._schemas)
            info["repository_loaded"] = len(self._loaded)
            info["index_tokens"] = self._index.n_tokens
            info["index_postings"] = self._index.n_postings
            info["index_segments"] = len(self._segment_entries)
            info["pending_index_adds"] = len(self._pending_adds)
            info["read_only"] = self._read_only_reason is not None
        info.update(self.session.cache_info())
        return info

    @property
    def read_only(self) -> bool:
        """True while the last durable write failed (degraded mode)."""
        with self._lock:
            return self._read_only_reason is not None

    def recovery_info(self) -> Dict[str, Any]:
        """The durability/recovery story in one dict.

        What ``GET /stats`` and ``repro search --stats`` surface: the
        fallback and recovery counters, pending intent entries, and
        the read-only degradation state.
        """
        with self._lock:
            return {
                "segment_fallbacks": self._counters["segment_fallbacks"],
                "index_rebuilds": self._counters["index_rebuilds"],
                "recovered_ingests": self._counters["recovered_ingests"],
                "rolled_back_ingests": (
                    self._counters["rolled_back_ingests"]
                ),
                "write_failures": self._counters["write_failures"],
                "pending_intents": len(self._intent),
                "read_only": self._read_only_reason is not None,
                "read_only_reason": self._read_only_reason,
            }

    def audit_segments(self) -> List[str]:
        """Verify every manifest-named segment checksum from disk.

        Re-reads the manifest *file* (not the in-memory entries — a
        fallback open has already emptied those) so the audit reports
        exactly what the next process will find. Also checks that every
        cataloged schema's artifact file exists. Returns human-readable
        problem strings; an empty list is a clean bill.
        """
        problems: List[str] = []
        manifest_path = os.path.join(self.path, MANIFEST_FILE)
        try:
            manifest = _read_json(manifest_path, "repository manifest")
        except RepositoryError as exc:
            return [str(exc)]
        for entry in manifest.get("index_segments") or []:
            try:
                read_segment(self.path, entry)
            except SegmentError as exc:
                problems.append(str(exc))
        catalog = manifest.get("schemas")
        if isinstance(catalog, dict):
            for schema_id in sorted(catalog):
                if not os.path.exists(self._artifact_path(schema_id)):
                    problems.append(
                        f"artifact file missing for {schema_id!r}"
                    )
        return problems


# ----------------------------------------------------------------------
# JSON read helper (uniform corruption errors); writes go through
# repro.repository.durability so every file shares one crash-safe path.
# ----------------------------------------------------------------------

def _read_json(path: str, what: str) -> Any:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError as exc:
        raise RepositoryError(f"{what} missing: {path}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise RepositoryError(
            f"{what} at {path} is unreadable or corrupt: {exc}"
        ) from exc
