"""Vocabulary-token candidate index for repository search.

Running full Cupid (linguistic + TreeMatch) against every schema in a
corpus is the brute-force baseline; the paper's framing of Match as a
service over a schema repository only scales if most of the corpus can
be dismissed without matching it. This module provides that pruning
tier:

* an **inverted index** from normalized name tokens to schema
  postings. Tokens come from each schema's distinct-name vocabulary
  (the PR 3 kernel factoring), so a token posts once per distinct
  name, not once per element — wide fact tables repeating "id" 200
  times count once. Normalization has already expanded abbreviations
  and tagged concepts, so "Qty" and "Quantity" land on the same
  posting, and Price/Cost share their "money" concept token.
* a **profile-overlap scorer**: TF-IDF cosine between the query's
  token profile and each posted schema, with query tokens additionally
  expanded through the thesaurus synset (``related_terms``) at the
  entry's strength — a query naming "bill" reaches schemas indexed
  under "invoice". Scores are meaningless as similarities; they only
  *rank* the corpus so the expensive pipeline runs on a top-C
  candidate set.

The index is tiny (strings and counts), serializes to one JSON file,
and rebuilds incrementally on ingest.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import RepositoryError
from repro.linguistic.matcher import LinguisticPreparation
from repro.linguistic.thesaurus import Thesaurus

#: Version stamp of the serialized index layout.
INDEX_VERSION = 1


def token_profile(linguistic: LinguisticPreparation) -> Dict[str, int]:
    """A schema's indexable token profile: token → distinct-name count.

    Derived from the deduplicated normalized names (the same distinct
    set the kernel vocabulary factors over): each comparable token of
    each distinct name contributes one count, so the profile reflects
    the schema's *vocabulary*, not its element multiplicity. Pure in
    the linguistic preparation — ingest-time and query-time profiles
    agree by construction.
    """
    profile: Dict[str, int] = {}
    seen_names = set()
    for normalized in linguistic.normalized.values():
        if normalized.raw in seen_names:
            continue
        seen_names.add(normalized.raw)
        for text in set(normalized.token_texts()):
            profile[text] = profile.get(text, 0) + 1
    return profile


class VocabularyIndex:
    """Inverted token index + TF-IDF overlap ranking over a corpus."""

    def __init__(self) -> None:
        #: token -> {schema_id: count}
        self._postings: Dict[str, Dict[str, int]] = {}
        #: schema_id -> its full profile (kept for norms and removal).
        self._profiles: Dict[str, Dict[str, int]] = {}
        #: Corpus mutation stamp; any add/remove shifts every idf, so
        #: the norm cache below is keyed by it.
        self._version = 0
        #: (version, {schema_id: norm}) — document norms are O(total
        #: corpus tokens) to compute; one build serves every score()
        #: call until the corpus changes.
        self._norm_cache: Tuple[int, Dict[str, float]] = (-1, {})

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add(self, schema_id: str, profile: Dict[str, int]) -> None:
        """(Re-)index ``schema_id`` under ``profile``."""
        if schema_id in self._profiles:
            self.remove(schema_id)
        self._profiles[schema_id] = dict(profile)
        for token, count in profile.items():
            self._postings.setdefault(token, {})[schema_id] = count
        self._version += 1

    def remove(self, schema_id: str) -> None:
        profile = self._profiles.pop(schema_id, None)
        if profile is None:
            return
        for token in profile:
            postings = self._postings.get(token)
            if postings is not None:
                postings.pop(schema_id, None)
                if not postings:
                    del self._postings[token]
        self._version += 1

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, schema_id: str) -> bool:
        return schema_id in self._profiles

    def indexed_ids(self):
        """The set of schema ids currently carrying postings."""
        return set(self._profiles)

    def profile_items(self):
        """``(schema_id, profile)`` pairs in sorted id order — the live
        contents a compacted segment persists."""
        return sorted(self._profiles.items())

    @property
    def n_tokens(self) -> int:
        return len(self._postings)

    @property
    def n_postings(self) -> int:
        return sum(len(p) for p in self._postings.values())

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _idf(self, token: str) -> float:
        postings = self._postings.get(token)
        if not postings:
            return 0.0
        return math.log(1.0 + len(self._profiles) / len(postings))

    def _norms(self) -> Dict[str, float]:
        """Per-schema TF-IDF norms, cached until the corpus mutates."""
        version, norms = self._norm_cache
        if version == self._version:
            return norms
        idf = {token: self._idf(token) for token in self._postings}
        norms = {}
        for schema_id, profile in self._profiles.items():
            total = 0.0
            for token, count in profile.items():
                weighted = count * idf[token]
                total += weighted * weighted
            norms[schema_id] = math.sqrt(total) if total > 0.0 else 1.0
        self._norm_cache = (self._version, norms)
        return norms

    def expand_query(
        self,
        profile: Dict[str, int],
        thesaurus: Optional[Thesaurus] = None,
    ) -> Dict[str, float]:
        """Query weights with thesaurus-synset expansion.

        Each query token contributes its own count at weight 1 and
        adds every related term at ``count × strength`` (max-merged, so
        a term reachable twice keeps its strongest path). Only the
        query side expands: expanding at ingest would bake one
        thesaurus into the postings forever.
        """
        weights: Dict[str, float] = {
            token: float(count) for token, count in profile.items()
        }
        if thesaurus is None:
            return weights
        for token, count in profile.items():
            for term, strength in thesaurus.related_terms(token):
                contributed = count * strength
                if contributed > weights.get(term, 0.0):
                    weights[term] = contributed
        return weights

    def score(
        self,
        profile: Dict[str, int],
        thesaurus: Optional[Thesaurus] = None,
    ) -> List[Tuple[str, float]]:
        """Rank every indexed schema against a query profile.

        TF-IDF cosine over the (synset-expanded) query weights.
        Returns ``(schema_id, score)`` sorted by (-score, schema_id);
        schemas sharing no token with the query score 0 and still
        appear (deterministic full ranking simplifies pruning stats).
        """
        weights = self.expand_query(profile, thesaurus)
        # One idf per query token for both the norm and the dot loop.
        query_idf = {token: self._idf(token) for token in weights}
        query_norm = math.sqrt(
            sum(
                (w * query_idf[token]) ** 2
                for token, w in weights.items()
            )
        ) or 1.0
        dots: Dict[str, float] = {sid: 0.0 for sid in self._profiles}
        for token, weight in weights.items():
            postings = self._postings.get(token)
            if not postings:
                continue
            idf_sq = query_idf[token] ** 2
            for schema_id, count in postings.items():
                dots[schema_id] += weight * count * idf_sq
        norms = self._norms()
        ranked = [
            (schema_id, dot / (query_norm * norms[schema_id]))
            for schema_id, dot in dots.items()
        ]
        ranked.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranked

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dump (profiles only; postings rebuild)."""
        return {
            "index_version": INDEX_VERSION,
            "profiles": {
                schema_id: dict(profile)
                for schema_id, profile in sorted(self._profiles.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VocabularyIndex":
        if not isinstance(data, dict):
            raise RepositoryError(
                f"index payload is {type(data).__name__}, expected an object"
            )
        version = data.get("index_version")
        if version != INDEX_VERSION:
            raise RepositoryError(
                f"index version {version!r} is not supported "
                f"(this build reads version {INDEX_VERSION})"
            )
        index = cls()
        try:
            for schema_id, profile in data["profiles"].items():
                index.add(
                    schema_id,
                    {str(t): int(c) for t, c in profile.items()},
                )
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            raise RepositoryError(
                f"index payload is corrupt: {exc!r}"
            ) from exc
        return index
