"""Crash-safe file writes — the one atomic-write implementation every
repository file goes through.

Before this module each writer open-coded ``tmp + os.replace``, which
is atomic against *readers* but not durable against *power loss*: the
rename can be on disk before the data blocks, leaving a zero-length or
half-written file under the final name after a crash. The sequence
here is the standard journaling discipline:

1. write the full payload to ``<path>.tmp``,
2. ``fsync`` the temp file (data blocks durable before any rename),
3. ``os.replace`` onto the final name (atomic visibility),
4. ``fsync`` the containing directory (the rename itself durable).

Fault-injection sites (:mod:`repro.faults`) thread through the middle
of the sequence, which is what lets ``tests/test_faults.py`` kill the
process between any two steps and assert the repository's recovery
story instead of trusting it: ``torn`` publishes half the bytes then
kills (a checksummed reader must reject the file), ``kill_after``
dies right after the rename (the next writes never happened), and
``corrupt`` flips one published byte (bit rot).
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from repro import faults


def fsync_directory(directory: str) -> None:
    """Make a rename in ``directory`` durable; best-effort on
    filesystems that reject directory fds."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic fs
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic fs
        pass
    finally:
        os.close(fd)


def _flip_byte(path: str, blob_length: int) -> None:
    """The ``corrupt`` action: invert one byte of the published file."""
    offset = faults.corrupt_offset(blob_length)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]) if byte else b"\xff")


def atomic_write_bytes(
    path: str, blob: bytes, site: Optional[str] = None
) -> None:
    """Write ``blob`` to ``path`` atomically and durably.

    ``site`` names the fault-injection point; ``None`` writes without
    consulting the fault plan (still atomic + fsynced).
    """
    shaping = faults.action(site) if site is not None else None
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        if shaping == "torn":
            # Simulate the failure atomic rename alone cannot rule
            # out (a misordering disk publishing half the data):
            # expose the truncated payload under the final name, then
            # die. Only checksums catch this downstream.
            handle.write(blob[: len(blob) // 2])
            handle.flush()
            os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            faults.hard_kill()
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    if shaping == "corrupt":
        _flip_byte(path, len(blob))
    fsync_directory(directory)
    if shaping == "kill_after":
        faults.hard_kill()


def atomic_write_json(
    path: str, payload: Any, site: Optional[str] = None, indent: int = 1
) -> None:
    """Serialize ``payload`` (sorted keys, trailing newline — the
    repository's human-diffable house format) and write it atomically."""
    blob = (
        json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    ).encode("utf-8")
    atomic_write_bytes(path, blob, site=site)
