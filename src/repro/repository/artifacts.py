"""(De)serialization of prepared-schema artifacts — the repository's
on-disk format.

A :class:`~repro.pipeline.prepared.PreparedSchema` captures the
expensive per-schema work (name normalization, categorization, the
distinct-name vocabulary, tree + leaf layout). All of it is a pure
function of (schema, thesaurus, config), so it can be serialized once
at ingest and restored in any later process — *if* the round trip is
exact. This module owes that exactness to two properties:

* nothing float-valued is stored for the linguistic tiers — tokens,
  categories, and vocabulary tables are strings, enums, bools, and
  integer index arrays, all of which JSON round-trips losslessly;
* everything order-sensitive (the category dict, member lists, profile
  tables) is serialized as ordered lists and rebuilt in that exact
  order, so downstream iteration — including the kernel's
  profile-matrix build — replays the in-memory original operation for
  operation.

The restored :class:`PreparedSchema` therefore matches a
freshly-prepared one **bit-identically** in every lsim/wsim/mapping it
produces (asserted by ``tests/test_repository.py``).

Element ids are process-unique, so artifacts reference elements by
*canonical* ids (``n0``, ``n1``, ... in element order); the same
canonicalization makes the schema payload content-addressable —
:func:`schema_fingerprint` is stable across processes and is what a
repository uses as the schema's identity.

``FORMAT_VERSION`` stamps every artifact file. Readers reject any
other version (and any structurally broken payload) with
:class:`~repro.exceptions.RepositoryError` rather than hand back
half-restored artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Tuple

from repro import faults
from repro.config import CupidConfig
from repro.exceptions import RepositoryError
from repro.io.json_io import schema_from_dict_with_ids, schema_to_dict
from repro.linguistic.categorization import Category
from repro.linguistic.kernel import SchemaVocabulary
from repro.linguistic.matcher import LinguisticMatcher, LinguisticPreparation
from repro.linguistic.normalizer import NormalizedName
from repro.linguistic.tokens import Token, TokenType
from repro.model.schema import Schema
from repro.pipeline.prepared import PreparedSchema

#: Version stamp of the artifact file layout. Bump on any change to
#: the serialized structure; readers hard-reject other versions.
FORMAT_VERSION = 1

#: Config fields that change match *results*. The fingerprint guarding
#: persisted artifacts covers exactly these; engine/store/backend
#: choices are excluded because every combination is parity-tested to
#: produce bit-identical output.
SEMANTIC_CONFIG_FIELDS = (
    "thns", "thhigh", "thlow", "cinc", "cdec", "thaccept",
    "wstruct", "wstruct_leaf", "leaf_count_ratio", "prune_by_leaf_count",
    "leaf_prune_depth", "initial_mapping_lsim", "use_refint_joins",
    "lazy_expansion", "discount_optional_leaves", "token_type_weights",
    "use_key_affinity", "key_affinity_bonus", "use_descriptions",
    "description_weight", "substring_sim_ceiling", "min_token_sim",
)


# ----------------------------------------------------------------------
# Config round-trip + fingerprints
# ----------------------------------------------------------------------

def config_to_dict(config: CupidConfig) -> Dict[str, Any]:
    """Every config field as JSON-compatible values."""
    data = {
        f.name: getattr(config, f.name)
        for f in dataclass_fields(config)
    }
    data["token_type_weights"] = {
        token_type.value: weight
        for token_type, weight in config.token_type_weights.items()
    }
    return data


def config_from_dict(data: Dict[str, Any]) -> CupidConfig:
    """Rebuild a validated :class:`CupidConfig` from
    :func:`config_to_dict` output."""
    known = {f.name for f in dataclass_fields(CupidConfig)}
    kwargs = {k: v for k, v in data.items() if k in known}
    kwargs["token_type_weights"] = {
        TokenType(value): weight
        for value, weight in data["token_type_weights"].items()
    }
    config = CupidConfig(**kwargs)
    config.validate()
    return config


def config_fingerprint(config: CupidConfig) -> str:
    """Hash of the result-affecting config fields.

    Artifacts prepared under one fingerprint are only valid under the
    same one; runtime knobs (engine, store, backend, cache bounds) may
    differ freely — those are parity-guaranteed not to change values.
    """
    full = config_to_dict(config)
    payload = {
        name: full[name] for name in SEMANTIC_CONFIG_FIELDS
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Canonical schema payload (content-addressed identity)
# ----------------------------------------------------------------------

def canonical_schema_dict(schema: Schema) -> Dict[str, Any]:
    """:func:`schema_to_dict` with ids remapped to ``n0, n1, ...``.

    Element ids are minted per process, so the raw dict of the same
    schema differs run to run; canonical ids (element order) make the
    payload — and therefore :func:`schema_fingerprint` — stable, and
    give artifacts a vocabulary for referencing elements.
    """
    data = schema_to_dict(schema)
    rename = {
        spec["id"]: f"n{i}" for i, spec in enumerate(data["elements"])
    }
    for spec in data["elements"]:
        spec["id"] = rename[spec["id"]]
    for rel in data["relationships"]:
        rel["source"] = rename[rel["source"]]
        rel["target"] = rename[rel["target"]]
    data["root"] = rename[data["root"]]
    return data


def schema_fingerprint(canonical: Dict[str, Any]) -> str:
    """Content hash of a :func:`canonical_schema_dict` payload."""
    blob = json.dumps(canonical, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _canonical_id_map(schema: Schema) -> Dict[str, str]:
    """Live element id → canonical id, in element order."""
    return {
        element.element_id: f"n{i}"
        for i, element in enumerate(schema.elements)
    }


def canonical_category_key(key: str, id_map: Dict[str, str]) -> str:
    """Rewrite element ids embedded in category keys.

    Container categories are keyed ``container:<element_id>`` with a
    process-unique id; persisting that verbatim would leak a dangling
    id into the artifact. Category keys are opaque to all matching
    math (compatibility reads keywords and source only), so the
    canonical form is safe and makes artifacts stable across
    processes.
    """
    prefix, _, suffix = key.partition(":")
    if prefix == "container" and suffix in id_map:
        return f"container:{id_map[suffix]}"
    return key


# ----------------------------------------------------------------------
# Token / name / category encoding
# ----------------------------------------------------------------------

def _tokens_to_list(tokens) -> List[List[Any]]:
    return [[t.text, t.token_type.value, t.ignored] for t in tokens]


def _tokens_from_list(data) -> Tuple[Token, ...]:
    return tuple(
        Token(text, TokenType(type_value), bool(ignored))
        for text, type_value, ignored in data
    )


def _name_to_dict(name: NormalizedName) -> Dict[str, Any]:
    return {
        "raw": name.raw,
        "tokens": _tokens_to_list(name.tokens),
        "concepts": sorted(name.concepts),
    }


def _name_from_dict(data: Dict[str, Any]) -> NormalizedName:
    return NormalizedName(
        raw=data["raw"],
        tokens=_tokens_from_list(data["tokens"]),
        concepts=frozenset(data["concepts"]),
    )


# ----------------------------------------------------------------------
# PreparedSchema → dict
# ----------------------------------------------------------------------

def prepared_to_dict(
    prepared: PreparedSchema,
    canonical: Dict[str, Any] = None,
) -> Dict[str, Any]:
    """Serialize a prepared schema's persistent tiers.

    Forces the lazy tiers first (:meth:`PreparedSchema.build_all`), so
    ingest pays the full cold-start cost exactly once. The payload
    holds the canonical schema, the deduplicated normalized names, the
    ordered category list, the kernel vocabulary (when built), and the
    leaf layout's element order (stored for verification — the layout
    itself rebuilds deterministically from the schema). ``canonical``
    accepts a precomputed :func:`canonical_schema_dict` of the same
    schema (the ingest path builds it early for the duplicate check).
    """
    faults.check("artifact.serialize")
    prepared.build_all()
    linguistic = prepared.linguistic
    if canonical is None:
        canonical = canonical_schema_dict(prepared.schema)
    id_map = _canonical_id_map(prepared.schema)

    # Distinct normalized names, first-seen in element order — mirrors
    # the sharing the in-memory normalizer cache produces.
    names: List[NormalizedName] = []
    name_slot: Dict[str, int] = {}
    name_of: Dict[str, int] = {}
    for element in prepared.schema.elements:
        normalized = linguistic.normalized[element.element_id]
        slot = name_slot.get(normalized.raw)
        if slot is None:
            slot = name_slot[normalized.raw] = len(names)
            names.append(normalized)
        name_of[id_map[element.element_id]] = slot

    categories = [
        {
            "key": canonical_category_key(category.key, id_map),
            "source": category.source,
            "keywords": _tokens_to_list(category.keywords),
            "members": [
                id_map[member.element_id] for member in category.members
            ],
        }
        for category in linguistic.categories.values()
    ]
    category_slot = {
        key: i for i, key in enumerate(linguistic.categories.keys())
    }

    artifacts: Dict[str, Any] = {
        "names": [_name_to_dict(name) for name in names],
        "name_of": name_of,
        "categories": categories,
        # The layout order IS the tree's pre-order interval encoding
        # (global first-visit leaf order): persisting it pins the
        # window addressing a restored schema re-derives, with no
        # format bump — verify() runs the interval oracle against it.
        "leaf_order": [
            id_map[leaf.element.element_id]
            for leaf in prepared.leaf_layout.leaves
        ],
    }

    vocabulary = prepared.vocabulary
    if vocabulary is not None:
        artifacts["vocabulary"] = {
            # vocab id -> distinct-name slot (names are keyed by raw).
            "names": [name_slot[name.raw] for name in vocabulary.names],
            # class id -> serialized category slot of its representative.
            "classes": [
                category_slot[category.key]
                for category in vocabulary.classes
            ],
            "class_is_dtype": list(vocabulary.class_is_dtype),
            "class_profiles": [
                list(pids) for pids in vocabulary.class_profiles
            ],
            "profile_names": list(vocabulary.profile_names),
            "profile_members": [
                [id_map[element_id] for element_id in members]
                for members in vocabulary.profile_members
            ],
            "profile_of": {
                id_map[element_id]: pid
                for element_id, pid in vocabulary.profile_of.items()
            },
        }

    return {
        "format_version": FORMAT_VERSION,
        "schema": canonical,
        "artifacts": artifacts,
    }


# ----------------------------------------------------------------------
# dict → PreparedSchema
# ----------------------------------------------------------------------

def prepared_from_dict(
    data: Dict[str, Any],
    matcher: LinguisticMatcher,
    config: CupidConfig,
) -> PreparedSchema:
    """Restore a :func:`prepared_to_dict` payload.

    The returned :class:`PreparedSchema` carries the deserialized
    linguistic tier (and vocabulary, when present); tree and leaf
    layout stay lazy. Raises :class:`RepositoryError` on a version
    mismatch or a structurally broken payload.
    """
    faults.check("artifact.restore")
    if not isinstance(data, dict):
        raise RepositoryError(
            f"artifact payload is {type(data).__name__}, expected an object"
        )
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise RepositoryError(
            f"artifact format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    try:
        return _restore(data, matcher, config)
    except RepositoryError:
        raise
    except (KeyError, ValueError, TypeError, IndexError) as exc:
        raise RepositoryError(
            f"artifact payload is corrupt: {exc!r}"
        ) from exc


def _restore(
    data: Dict[str, Any],
    matcher: LinguisticMatcher,
    config: CupidConfig,
) -> PreparedSchema:
    schema, by_sid = schema_from_dict_with_ids(data["schema"])
    artifacts = data["artifacts"]

    names = [_name_from_dict(spec) for spec in artifacts["names"]]
    normalized = {
        by_sid[canonical_id].element_id: names[slot]
        for canonical_id, slot in artifacts["name_of"].items()
    }
    # Fresh preparation builds `normalized` over schema.elements; keep
    # that insertion order on restore (dict order is observable).
    normalized = {
        element.element_id: normalized[element.element_id]
        for element in schema.elements
    }

    categories: Dict[str, Category] = {}
    category_list: List[Category] = []
    for spec in artifacts["categories"]:
        category = Category(
            key=spec["key"],
            keywords=_tokens_from_list(spec["keywords"]),
            source=spec["source"],
            members=[by_sid[cid] for cid in spec["members"]],
        )
        categories[category.key] = category
        category_list.append(category)

    linguistic = LinguisticPreparation(
        schema=schema,
        categories=categories,
        normalized=normalized,
        elements_by_id={e.element_id: e for e in schema.elements},
        described=[
            e for e in schema.elements
            if e.description and not e.not_instantiated
        ],
    )

    vocab_spec = artifacts.get("vocabulary")
    if vocab_spec is not None:
        linguistic.vocabulary = _restore_vocabulary(
            vocab_spec, names, category_list, by_sid, linguistic
        )

    return PreparedSchema.from_artifacts(
        schema, matcher, config, linguistic
    )


def _restore_vocabulary(
    spec: Dict[str, Any],
    names: List[NormalizedName],
    category_list: List[Category],
    by_sid,
    linguistic: LinguisticPreparation,
) -> SchemaVocabulary:
    """Fill a :class:`SchemaVocabulary` from its serialized tables.

    Bypasses ``_build`` (that is the point — the factoring came off
    disk) and reconstructs the derived keyword/text tuples exactly the
    way the builder does.
    """
    vocabulary = SchemaVocabulary.__new__(SchemaVocabulary)
    vocabulary.names = [names[slot] for slot in spec["names"]]
    vocabulary.name_index = {
        name.raw: i for i, name in enumerate(vocabulary.names)
    }
    vocabulary.classes = [
        category_list[slot] for slot in spec["classes"]
    ]
    vocabulary.class_is_dtype = [
        bool(flag) for flag in spec["class_is_dtype"]
    ]
    vocabulary.class_keywords = []
    vocabulary.class_texts = []
    for category in vocabulary.classes:
        filtered = tuple(t for t in category.keywords if not t.ignored)
        vocabulary.class_keywords.append(filtered)
        vocabulary.class_texts.append(tuple(t.text for t in filtered))
    vocabulary.class_profiles = [
        list(pids) for pids in spec["class_profiles"]
    ]
    vocabulary.profile_names = list(spec["profile_names"])
    vocabulary.profile_members = [
        [by_sid[cid].element_id for cid in members]
        for members in spec["profile_members"]
    ]
    vocabulary.profile_of = {
        by_sid[cid].element_id: pid
        for cid, pid in spec["profile_of"].items()
    }
    vocabulary.n_elements = len(linguistic.elements_by_id)
    return vocabulary
