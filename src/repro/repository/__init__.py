"""Persistent, searchable schema repository (the paper's Section 2
deployment shape made durable).

Three layers over the existing engine:

* :mod:`repro.repository.artifacts` — versioned (de)serialization of
  :class:`~repro.pipeline.prepared.PreparedSchema` tiers; restored
  schemas match freshly-prepared ones bit-identically.
* :mod:`repro.repository.index` — an inverted vocabulary-token index
  with a TF-IDF overlap scorer that prunes a corpus to a candidate
  set without running TreeMatch.
* :mod:`repro.repository.store` — :class:`SchemaRepository`:
  ``ingest`` / ``load`` / ``search(query, k, candidates=C)`` plus the
  persistent cross-process name-similarity cache.

CLI: ``repro index <paths> --repo DIR`` and ``repro search <schema>
--repo DIR -k N``.
"""

from repro.repository.artifacts import (
    FORMAT_VERSION,
    config_fingerprint,
    prepared_from_dict,
    prepared_to_dict,
    schema_fingerprint,
)
from repro.repository.index import VocabularyIndex, token_profile
from repro.repository.store import (
    RankedMatch,
    RepositorySearchResult,
    SchemaRepository,
    match_score,
)

__all__ = [
    "FORMAT_VERSION",
    "RankedMatch",
    "RepositorySearchResult",
    "SchemaRepository",
    "VocabularyIndex",
    "config_fingerprint",
    "match_score",
    "prepared_from_dict",
    "prepared_to_dict",
    "schema_fingerprint",
    "token_profile",
]
