"""Append-only index segments — incremental persistence for the
vocabulary index.

PR 5 persisted the whole :class:`~repro.repository.index.
VocabularyIndex` as one ``index.json`` rewritten on every save: a
10⁵-schema corpus would rewrite megabytes to ingest one schema, and
two writers would clobber each other's work wholesale. This module
replaces that with the structure every serving-grade index uses
(an LSM-style log of immutable runs):

* each ingest **batch** appends one immutable segment file
  (``index/seg-<n>.json``) holding only the profiles added (and ids
  removed) by that batch — ingest cost is proportional to the batch,
  not the corpus;
* the repository manifest records the segment sequence with a
  **sha256 checksum per file**; opening a repository replays the
  segments in order instead of re-scanning artifact files, and any
  mismatch (missing file, torn write, checksum drift) raises
  :class:`~repro.exceptions.SegmentError` so the caller falls back to
  the artifact re-scan — segments are a derived view, never the
  source of truth;
* **compaction** folds the whole sequence into a single segment
  carrying the live profiles, dropping superseded adds and tombstoned
  ids. Compacting an already-compacted sequence is a no-op on the
  index contents (idempotent by construction — the output is a pure
  function of the live profiles).

Segment payloads are canonical JSON (sorted keys, fixed separators),
so a segment's checksum is reproducible from its logical contents and
two processes writing the same batch produce byte-identical files.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro import faults
from repro.exceptions import SegmentError
from repro.repository.durability import atomic_write_bytes
from repro.repository.index import VocabularyIndex

#: Version stamp of the segment file layout; readers reject others.
SEGMENT_VERSION = 1

#: Subdirectory (under the repository root) holding segment files.
SEGMENTS_DIR = "index"


def segment_file_name(segment_id: int) -> str:
    return f"seg-{segment_id:08d}.json"


@dataclass
class IndexSegment:
    """One immutable batch of index mutations.

    ``profiles`` maps schema ids added (or re-indexed) by the batch to
    their token profiles; ``removed`` lists ids tombstoned by it.
    Replay order is: apply removals, then adds — a segment that
    re-indexes an id it also tombstones ends with the new profile.
    """

    segment_id: int
    profiles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    removed: List[str] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.profiles and not self.removed

    def apply_to(self, index: VocabularyIndex) -> None:
        for schema_id in self.removed:
            index.remove(schema_id)
        for schema_id, profile in self.profiles.items():
            index.add(schema_id, profile)


def _canonical_payload(segment: IndexSegment) -> bytes:
    payload = {
        "segment_version": SEGMENT_VERSION,
        "segment_id": segment.segment_id,
        "profiles": {
            schema_id: dict(profile)
            for schema_id, profile in sorted(segment.profiles.items())
        },
        "removed": sorted(segment.removed),
    }
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":"))
        + "\n"
    ).encode("utf-8")


def write_segment(root: str, segment: IndexSegment) -> Dict[str, Any]:
    """Write ``segment`` under ``root`` and return its manifest entry.

    The entry (``file``/``checksum``/``schemas``/``removed``) is what
    the repository manifest records; :func:`read_segment` verifies the
    checksum against the bytes on disk. Writes go through the shared
    crash-safe path (tmp file → fsync → rename → dir fsync), fault
    site ``segment.write``.
    """
    blob = _canonical_payload(segment)
    directory = os.path.join(root, SEGMENTS_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, segment_file_name(segment.segment_id))
    atomic_write_bytes(path, blob, site="segment.write")
    return {
        "file": f"{SEGMENTS_DIR}/{segment_file_name(segment.segment_id)}",
        "checksum": hashlib.sha256(blob).hexdigest(),
        "schemas": len(segment.profiles),
        "removed": len(segment.removed),
    }


def read_segment(root: str, entry: Dict[str, Any]) -> IndexSegment:
    """Load and verify the segment named by a manifest ``entry``.

    Raises :class:`SegmentError` on a missing file, checksum mismatch,
    unsupported version, or structurally broken payload — the signals
    that tell the repository to rebuild from artifacts instead.
    """
    rel = entry.get("file")
    if not isinstance(rel, str) or not rel:
        raise SegmentError(f"segment manifest entry is malformed: {entry!r}")
    path = os.path.join(root, rel)
    try:
        # The injected OSError lands in this handler on purpose: a
        # faulted read must look exactly like a missing file — the
        # signal for the artifact re-scan fallback.
        faults.check("segment.read")
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise SegmentError(f"segment file missing: {path} ({exc})") from exc
    checksum = hashlib.sha256(blob).hexdigest()
    if checksum != entry.get("checksum"):
        raise SegmentError(
            f"segment checksum mismatch for {path}: manifest says "
            f"{entry.get('checksum')!r}, file hashes to {checksum!r}"
        )
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SegmentError(f"segment {path} is corrupt: {exc}") from exc
    if payload.get("segment_version") != SEGMENT_VERSION:
        raise SegmentError(
            f"segment version {payload.get('segment_version')!r} is not "
            f"supported (this build reads version {SEGMENT_VERSION})"
        )
    try:
        return IndexSegment(
            segment_id=int(payload["segment_id"]),
            profiles={
                str(schema_id): {str(t): int(c) for t, c in profile.items()}
                for schema_id, profile in payload["profiles"].items()
            },
            removed=[str(schema_id) for schema_id in payload["removed"]],
        )
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise SegmentError(f"segment {path} is corrupt: {exc!r}") from exc


def load_index_from_segments(
    root: str, entries: Iterable[Dict[str, Any]]
) -> VocabularyIndex:
    """Replay a manifest's segment sequence into a fresh index.

    Verifies every checksum before applying anything; raises
    :class:`SegmentError` on the first untrustworthy segment.
    """
    segments = [read_segment(root, entry) for entry in entries]
    index = VocabularyIndex()
    for segment in segments:
        segment.apply_to(index)
    return index


def next_segment_id(entries: Iterable[Dict[str, Any]]) -> int:
    """The id for the next segment after ``entries`` (monotonic even
    across compactions, so a stale reader can never mistake an old
    file for a new one)."""
    highest = -1
    for entry in entries:
        name = os.path.basename(str(entry.get("file", "")))
        stem = name[len("seg-"):-len(".json")]
        try:
            highest = max(highest, int(stem))
        except ValueError:
            continue
    return highest + 1


def compact_segments(
    root: str,
    index: VocabularyIndex,
    entries: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Fold ``entries`` into one segment holding the live profiles.

    Writes the compacted segment (id = one past the current highest,
    keeping ids monotonic) and returns the new one-entry list plus the
    superseded files' relative paths. The *caller* deletes those after
    persisting a manifest that no longer references them — crash-safe
    ordering (a crash in between leaves unreferenced files, never a
    manifest naming missing ones). The output is a pure function of
    the index's live profiles, so compacting twice leaves the index
    contents identical — the idempotence the tests round-trip.
    """
    merged = IndexSegment(
        segment_id=next_segment_id(entries),
        profiles={
            schema_id: dict(profile)
            for schema_id, profile in index.profile_items()
        },
    )
    new_entry = write_segment(root, merged)
    stale = [
        str(entry.get("file"))
        for entry in entries
        if entry.get("file") and entry["file"] != new_entry["file"]
    ]
    return [new_entry], stale


def remove_segment_files(root: str, stale: Iterable[str]) -> None:
    """Delete superseded segment files (post-manifest-write cleanup).

    A file already gone cannot make the sequence stale — the manifest
    no longer references it — so missing files are ignored.
    """
    for rel in stale:
        try:
            os.remove(os.path.join(root, rel))
        except OSError:
            pass
