"""Datasets transcribed from the paper's figures and examples.

* :mod:`repro.datasets.figure1` — the PO/POrder fragment of Figure 1.
* :mod:`repro.datasets.figure2` — the PO / PurchaseOrder XML schemas of
  Figure 2 (the running example of Section 4).
* :mod:`repro.datasets.canonical` — the six canonical examples of
  Section 9.1 (Table 2).
* :mod:`repro.datasets.cidx_excel` — the CIDX and Excel purchase-order
  schemas of Figure 7 (Table 3), including the shared Address/Contact
  types of the Excel schema.
* :mod:`repro.datasets.rdb_star` — the RDB and Star warehouse schemas
  of Figure 8, expressed as SQL DDL and imported through the mini DDL
  parser.
* :mod:`repro.datasets.gold` — gold-standard mappings for all of the
  above.
* :mod:`repro.datasets.generator` — seeded synthetic schema generation
  and perturbation for property tests and the scalability benchmark.
"""

from repro.datasets.figure1 import figure1_po, figure1_porder
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.canonical import CanonicalExample, canonical_examples
from repro.datasets.cidx_excel import cidx_schema, excel_schema
from repro.datasets.rdb_star import rdb_schema, star_schema
from repro.datasets.gold import GoldMapping
from repro.datasets.generator import SchemaGenerator, PerturbationConfig

__all__ = [
    "CanonicalExample",
    "GoldMapping",
    "PerturbationConfig",
    "SchemaGenerator",
    "canonical_examples",
    "cidx_schema",
    "excel_schema",
    "figure1_po",
    "figure1_porder",
    "figure2_po",
    "figure2_purchase_order",
    "rdb_schema",
    "star_schema",
]
