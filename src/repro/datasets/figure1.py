"""Figure 1 — the introductory PO / POrder schemas.

::

    PO                      POrder
      Lines                   Items
        Item                    Item
          Line                    ItemNumber
          Qty                     Quantity
          Uom                     UnitOfMeasure

The paper's first example mapping element relates
``Lines.Item.Line`` to ``Items.Item.ItemNumber``.
"""

from __future__ import annotations

from repro.model.builder import schema_from_tree
from repro.model.schema import Schema


def figure1_po() -> Schema:
    return schema_from_tree(
        "PO",
        {
            "Lines": {
                "Item": {
                    "Line": "integer",
                    "Qty": "integer",
                    "Uom": "string",
                },
            },
        },
    )


def figure1_porder() -> Schema:
    return schema_from_tree(
        "POrder",
        {
            "Items": {
                "Item": {
                    "ItemNumber": "integer",
                    "Quantity": "integer",
                    "UnitOfMeasure": "string",
                },
            },
        },
    )
