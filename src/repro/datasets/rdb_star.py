"""Figure 8 — the RDB and Star warehouse schemas (Section 9.2).

Both schemas are expressed as SQL DDL and imported through the mini DDL
parser, exercising foreign keys end to end: "we tried to demonstrate
further the utility of exploiting referential constraints as join
nodes" — the join of Territories and Region should map to Geography,
and Orders ⋈ OrderDetails to Sales.
"""

from __future__ import annotations

from repro.datasets.gold import GoldMapping
from repro.io.sql_ddl import parse_sql_ddl
from repro.model.schema import Schema

_STAR_DDL = """
CREATE TABLE GEOGRAPHY (
  PostalCode varchar(10) PRIMARY KEY,
  TerritoryID int,
  TerritoryDescription varchar(50),
  RegionID int,
  RegionDescription varchar(50)
);

CREATE TABLE CUSTOMERS (
  CustomerID int PRIMARY KEY,
  CustomerName varchar(40),
  CustomerTypeID int,
  CustomerTypeDescription varchar(50),
  PostalCode varchar(10),
  State varchar(20)
);

CREATE TABLE TIME (
  Date datetime PRIMARY KEY,
  DayOfWeek varchar(10),
  Month int,
  Year int,
  Quarter int,
  DayOfYear int,
  Holiday bit,
  Weekend bit,
  YearMonth varchar(10),
  WeekOfYear int
);

CREATE TABLE PRODUCTS (
  ProductID int PRIMARY KEY,
  ProductName varchar(40),
  BrandID int,
  BrandDescription varchar(50)
);

CREATE TABLE SALES (
  OrderID int,
  OrderDetailID int,
  CustomerID int REFERENCES CUSTOMERS(CustomerID),
  PostalCode varchar(10) REFERENCES GEOGRAPHY(PostalCode),
  ProductID int REFERENCES PRODUCTS(ProductID),
  OrderDate datetime REFERENCES TIME(Date),
  Quantity int,
  UnitPrice money,
  Discount float,
  PRIMARY KEY (OrderID, OrderDetailID)
);
"""

_RDB_DDL = """
CREATE TABLE SHIPPINGMETHODS (
  ShippingMethodID int PRIMARY KEY,
  ShippingMethod varchar(30)
);

CREATE TABLE REGION (
  RegionID int PRIMARY KEY,
  RegionDescription varchar(50)
);

CREATE TABLE TERRITORIES (
  TerritoryID int PRIMARY KEY,
  TerritoryDescription varchar(50)
);

CREATE TABLE TERRITORYREGION (
  TerritoryID int REFERENCES TERRITORIES(TerritoryID),
  RegionID int REFERENCES REGION(RegionID),
  PRIMARY KEY (TerritoryID, RegionID)
);

CREATE TABLE EMPLOYEES (
  EmployeeID int PRIMARY KEY,
  FirstName varchar(30),
  LastName varchar(30),
  Title varchar(30),
  EmailName varchar(40),
  Extension varchar(10),
  Workphone varchar(20)
);

CREATE TABLE EMPLOYEETERRITORY (
  EmployeeID int REFERENCES EMPLOYEES(EmployeeID),
  TerritoryID int REFERENCES TERRITORIES(TerritoryID),
  PRIMARY KEY (EmployeeID, TerritoryID)
);

CREATE TABLE BRANDS (
  BrandID int PRIMARY KEY,
  BrandDescription varchar(50)
);

CREATE TABLE PRODUCTS (
  ProductID int PRIMARY KEY,
  BrandID int REFERENCES BRANDS(BrandID),
  ProductName varchar(40),
  BrandDescription varchar(50)
);

CREATE TABLE CUSTOMERS (
  CustomerID int PRIMARY KEY,
  CompanyName varchar(40),
  ContactFirstName varchar(30),
  ContactLastName varchar(30),
  BillingAddress varchar(60),
  City varchar(30),
  StateOrProvince varchar(20),
  PostalCode varchar(10),
  Country varchar(30),
  ContactTitle varchar(30),
  PhoneNumber varchar(20),
  FaxNumber varchar(20)
);

CREATE TABLE ORDERS (
  OrderID int PRIMARY KEY,
  ShippingMethodID int REFERENCES SHIPPINGMETHODS(ShippingMethodID),
  EmployeeID int REFERENCES EMPLOYEES(EmployeeID),
  CustomerID int REFERENCES CUSTOMERS(CustomerID),
  OrderDate datetime,
  Quantity int,
  UnitPrice money,
  Discount float,
  PurchaseOrdNumber varchar(20),
  ShipName varchar(40),
  ShipAddress varchar(60),
  ShipDate datetime,
  FreightCharge money,
  SalesTaxRate float
);

CREATE TABLE ORDERDETAILS (
  OrderDetailID int PRIMARY KEY,
  OrderID int REFERENCES ORDERS(OrderID),
  ProductID int REFERENCES PRODUCTS(ProductID),
  Quantity int,
  UnitPrice money,
  Discount float
);

CREATE TABLE PAYMENTMETHODS (
  PaymentMethodID int PRIMARY KEY,
  PaymentMethod varchar(30)
);

CREATE TABLE PAYMENT (
  PaymentID int PRIMARY KEY,
  OrderID int REFERENCES ORDERS(OrderID),
  PaymentMethodID int REFERENCES PAYMENTMETHODS(PaymentMethodID),
  PaymentAmount money,
  PaymentDate datetime,
  CreditCardNumber varchar(20),
  CardholdersName varchar(40),
  CredCardExpDate date
);
"""


def rdb_schema() -> Schema:
    """The operational RDB schema (source side of Section 9.2)."""
    return parse_sql_ddl(_RDB_DDL, "RDB")


def star_schema() -> Schema:
    """The Star data-warehouse schema (target side of Section 9.2)."""
    return parse_sql_ddl(_STAR_DDL, "Star")


def rdb_star_table_gold() -> GoldMapping:
    """Table-level good mapping per the Section 9.2 prose:

    "A good mapping would map the join of Territories and Region to
    Geography, Customers to Customers, Products to Products, and Orders
    or OrderDetails (or a join of the two) to Sales."
    """
    return GoldMapping.from_pairs(
        [
            ("TERRITORYREGION-REGION-fk", "GEOGRAPHY"),
            ("TERRITORYREGION-TERRITORIES-fk", "GEOGRAPHY"),
            ("CUSTOMERS", "CUSTOMERS"),
            ("PRODUCTS", "PRODUCTS"),
            ("ORDERS", "SALES"),
            ("ORDERDETAILS", "SALES"),
            ("ORDERDETAILS-ORDERS-fk", "SALES"),
        ]
    )


def rdb_star_column_gold() -> GoldMapping:
    """Column-level gold correspondences discussed in Section 9.2."""
    return GoldMapping.from_pairs(
        [
            # Products columns.
            ("PRODUCTS.ProductID", "PRODUCTS.ProductID"),
            ("PRODUCTS.ProductName", "PRODUCTS.ProductName"),
            ("PRODUCTS.BrandID", "PRODUCTS.BrandID"),
            ("PRODUCTS.BrandDescription", "PRODUCTS.BrandDescription"),
            # Customers columns.
            ("CUSTOMERS.CustomerID", "CUSTOMERS.CustomerID"),
            ("CUSTOMERS.StateOrProvince", "CUSTOMERS.State"),
            # All three Star PostalCode columns should map back to
            # Customers.PostalCode ("This is desirable, since a Query
            # Discovery module can then get the PostalCode column in
            # each case by joining ... with Customers").
            ("CUSTOMERS.PostalCode", "CUSTOMERS.PostalCode"),
            ("CUSTOMERS.PostalCode", "GEOGRAPHY.PostalCode"),
            ("CUSTOMERS.PostalCode", "SALES.PostalCode"),
            # Geography columns come from Region/Territories.
            ("REGION.RegionID", "GEOGRAPHY.RegionID"),
            ("REGION.RegionDescription", "GEOGRAPHY.RegionDescription"),
            ("TERRITORIES.TerritoryID", "GEOGRAPHY.TerritoryID"),
            (
                "TERRITORIES.TerritoryDescription",
                "GEOGRAPHY.TerritoryDescription",
            ),
            ("TERRITORYREGION.RegionID", "GEOGRAPHY.RegionID"),
            ("TERRITORYREGION.TerritoryID", "GEOGRAPHY.TerritoryID"),
            # Sales columns come from Orders/OrderDetails.
            ("ORDERS.OrderID", "SALES.OrderID"),
            ("ORDERDETAILS.OrderID", "SALES.OrderID"),
            ("ORDERDETAILS.OrderDetailID", "SALES.OrderDetailID"),
            # The fact-table FK can trace to the Orders FK column or to
            # the Customers PK it ultimately references — both joins
            # reach the same data (alternatives, like PostalCode).
            ("ORDERS.CustomerID", "SALES.CustomerID"),
            ("CUSTOMERS.CustomerID", "SALES.CustomerID"),
            ("ORDERS.OrderDate", "SALES.OrderDate"),
            ("ORDERS.Quantity", "SALES.Quantity"),
            ("ORDERDETAILS.Quantity", "SALES.Quantity"),
            ("ORDERS.UnitPrice", "SALES.UnitPrice"),
            ("ORDERDETAILS.UnitPrice", "SALES.UnitPrice"),
            ("ORDERS.Discount", "SALES.Discount"),
            ("ORDERDETAILS.Discount", "SALES.Discount"),
            ("ORDERDETAILS.ProductID", "SALES.ProductID"),
        ]
    )
