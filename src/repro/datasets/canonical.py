"""The six canonical examples of Section 9.1 (Table 2).

Each example is a pair of small object-oriented schemas designed to
isolate one matching property: data types, name variations, class
renaming, nesting, and type substitution. The examples build on each
other the way the paper's prose does (example 2 adds Telephone,
example 3 renames attributes of example 2's schema, ...).

For DIKE, "we used a corresponding ER schema": each example also
carries ER renderings where classes are entities and class-typed
attributes become relationships.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datasets.gold import GoldMapping
from repro.io.er_model import ERModel
from repro.io.oo_model import parse_oo_model
from repro.model.element import ElementKind
from repro.model.schema import Schema


@dataclass
class CanonicalExample:
    """One row of Table 2."""

    example_id: int
    title: str
    description: str
    schema1: Schema
    schema2: Schema
    er1: ERModel
    er2: ERModel
    gold: GoldMapping
    #: LSPD entries DIKE needs for this example (footnote a of Table 2).
    lspd_entries: List[Tuple[str, str, float]] = field(default_factory=list)
    #: Sense annotations MOMIS needs (footnote b of Table 2).
    momis_annotations: List[Tuple[str, str, float]] = field(default_factory=list)
    #: The paper's reported outcomes: {"cupid": "Y", "dike": "Y", ...}.
    expected: Dict[str, str] = field(default_factory=dict)


def _er_from_oo(schema: Schema) -> ERModel:
    """ER rendering of an OO schema: classes → entities, class-typed
    attributes → binary relationships named after the attribute."""
    model = ERModel(schema.name)
    classes = [
        e for e in schema.contained_children(schema.root)
        if e.kind is ElementKind.CLASS
    ]
    for cls in classes:
        entity = model.add_entity(cls.name)
        for attr in schema.contained_children(cls):
            if attr.is_atomic:
                entity.add_attribute(attr.name, attr.data_type, attr.is_key)
    for cls in classes:
        for attr in schema.contained_children(cls):
            for base in schema.derived_bases(attr):
                model.add_relationship(attr.name, [cls.name, base.name])
    return model


def _example(
    example_id: int,
    title: str,
    description: str,
    oo1: str,
    oo2: str,
    gold_pairs: List[Tuple[str, str]],
    lspd_entries: Optional[List[Tuple[str, str, float]]] = None,
    momis_annotations: Optional[List[Tuple[str, str, float]]] = None,
    expected: Optional[Dict[str, str]] = None,
) -> CanonicalExample:
    schema1 = parse_oo_model(oo1, "Schema1")
    schema2 = parse_oo_model(oo2, "Schema2")
    return CanonicalExample(
        example_id=example_id,
        title=title,
        description=description,
        schema1=schema1,
        schema2=schema2,
        er1=_er_from_oo(schema1),
        er2=_er_from_oo(schema2),
        gold=GoldMapping.from_pairs(gold_pairs),
        lspd_entries=lspd_entries or [],
        momis_annotations=momis_annotations or [],
        expected=expected or {},
    )


def canonical_examples() -> List[CanonicalExample]:
    """All six Table 2 examples, in order."""
    examples: List[CanonicalExample] = []

    # ------------------------------------------------------------------
    # 1. Identical schemas.
    # ------------------------------------------------------------------
    customer_1 = """
    class Customer (Customer_Number: integer (key),
                    Name: string,
                    Address: string)
    """
    examples.append(
        _example(
            1,
            "Identical schemas",
            "Both schemas hold the same single Customer class.",
            customer_1,
            customer_1,
            [
                ("Customer.Customer_Number", "Customer.Customer_Number"),
                ("Customer.Name", "Customer.Name"),
                ("Customer.Address", "Customer.Address"),
            ],
            expected={"cupid": "Y", "dike": "Y", "momis": "Y"},
        )
    )

    # ------------------------------------------------------------------
    # 2. Same names, different data types (Telephone string vs integer).
    # ------------------------------------------------------------------
    customer_2a = """
    class Customer (Customer_Number: integer (key),
                    Name: string,
                    Address: string,
                    Telephone: string)
    """
    customer_2b = """
    class Customer (Customer_Number: integer (key),
                    Name: string,
                    Address: string,
                    Telephone: integer)
    """
    examples.append(
        _example(
            2,
            "Same names, different data types",
            "Telephone is a string in Schema1 and an integer in "
            "Schema2; data-type compatibility tables absorb it.",
            customer_2a,
            customer_2b,
            [
                ("Customer.Customer_Number", "Customer.Customer_Number"),
                ("Customer.Name", "Customer.Name"),
                ("Customer.Address", "Customer.Address"),
                ("Customer.Telephone", "Customer.Telephone"),
            ],
            expected={"cupid": "Y", "dike": "Y", "momis": "Y"},
        )
    )

    # ------------------------------------------------------------------
    # 3. Same types, slightly different names (prefix/suffix added).
    # ------------------------------------------------------------------
    customer_3b = """
    class Customer (Customer_Number: integer (key),
                    CustomerName: string,
                    StreetAddress: string,
                    TelephoneNumber: string)
    """
    examples.append(
        _example(
            3,
            "Prefixed/suffixed attribute names",
            "Schema2 renames Name to CustomerName, Address to "
            "StreetAddress, Telephone to TelephoneNumber.",
            customer_2a,
            customer_3b,
            [
                ("Customer.Customer_Number", "Customer.Customer_Number"),
                ("Customer.Name", "Customer.CustomerName"),
                ("Customer.Address", "Customer.StreetAddress"),
                ("Customer.Telephone", "Customer.TelephoneNumber"),
            ],
            lspd_entries=[
                ("Name", "CustomerName", 0.9),
                ("Address", "StreetAddress", 0.9),
                ("Telephone", "TelephoneNumber", 0.9),
            ],
            momis_annotations=[
                ("Name", "CustomerName", 0.9),
                ("Address", "StreetAddress", 0.9),
                ("Telephone", "TelephoneNumber", 0.9),
            ],
            expected={"cupid": "Y", "dike": "Y(a)", "momis": "Y(b)"},
        )
    )

    # ------------------------------------------------------------------
    # 4. Different class names, identical attributes.
    # ------------------------------------------------------------------
    person_4b = """
    class Person (Customer_Number: integer (key),
                  Name: string,
                  Address: string,
                  Telephone: string)
    """
    examples.append(
        _example(
            4,
            "Renamed class (Customer vs Person)",
            "Schema2 renames the class to Person; the leaf-level "
            "comparisons are unaffected.",
            customer_2a,
            person_4b,
            [
                ("Customer.Customer_Number", "Person.Customer_Number"),
                ("Customer.Name", "Person.Name"),
                ("Customer.Address", "Person.Address"),
                ("Customer.Telephone", "Person.Telephone"),
            ],
            momis_annotations=[("Customer", "Person", 0.8)],
            expected={"cupid": "Y", "dike": "Y", "momis": "Y(b)"},
        )
    )

    # ------------------------------------------------------------------
    # 5. Different nesting (nested vs flat Customer).
    # ------------------------------------------------------------------
    nested_5a = """
    class Customer (SSN: integer (key),
                    Telephone: string,
                    Name: Name,
                    Address: Address)
    class Name (FirstName: string, LastName: string)
    class Address (Street: string, City: string,
                   State: string, Zip: string)
    """
    flat_5b = """
    class Customer (SSN: integer (key),
                    Telephone: string,
                    FirstName: string, LastName: string,
                    Street: string, City: string,
                    State: string, Zip: string)
    """
    examples.append(
        _example(
            5,
            "Different nesting of the data",
            "Schema1 nests Name and Address sub-structures; Schema2 is "
            "flat. Leaf-oriented matching absorbs the difference.",
            nested_5a,
            flat_5b,
            [
                ("Customer.SSN", "Customer.SSN"),
                ("Customer.Telephone", "Customer.Telephone"),
                ("Customer.Name.FirstName", "Customer.FirstName"),
                ("Customer.Name.LastName", "Customer.LastName"),
                ("Customer.Address.Street", "Customer.Street"),
                ("Customer.Address.City", "Customer.City"),
                ("Customer.Address.State", "Customer.State"),
                ("Customer.Address.Zip", "Customer.Zip"),
            ],
            expected={"cupid": "Y", "dike": "Y", "momis": "N"},
        )
    )

    # ------------------------------------------------------------------
    # 6. Type substitution / context-dependent mappings.
    # ------------------------------------------------------------------
    shared_6a = """
    class PurchaseOrder (OrderNumber: integer (key),
                         ProductName: string,
                         ShippingAddress: Address,
                         BillingAddress: Address)
    class Address (Name: string, Street: string, City: string,
                   Zip: string, Telephone: string)
    """
    split_6b = """
    class PurchaseOrder (OrderNumber: integer (key),
                         ProductName: string,
                         ShippingAddress: ShipTo,
                         BillingAddress: BillTo)
    class ShipTo (Name: string, Street: string, City: string,
                  Zip: string, Telephone: string)
    class BillTo (Name: string, Street: string, City: string,
                  Zip: string, Telephone: string)
    """
    examples.append(
        _example(
            6,
            "Type substitution / context-dependent mapping",
            "Schema1 shares one Address type between Shipping and "
            "Billing; Schema2 splits it into ShipTo and BillTo. The "
            "shared type must map differently per context.",
            shared_6a,
            split_6b,
            [
                ("PurchaseOrder.OrderNumber", "PurchaseOrder.OrderNumber"),
                ("PurchaseOrder.ProductName", "PurchaseOrder.ProductName"),
            ]
            + [
                (
                    f"PurchaseOrder.{context}.{attr}",
                    f"PurchaseOrder.{context}.{attr}",
                )
                for context in ("ShippingAddress", "BillingAddress")
                for attr in ("Name", "Street", "City", "Zip", "Telephone")
            ],
            expected={"cupid": "Y", "dike": "N", "momis": "N"},
        )
    )
    return examples
