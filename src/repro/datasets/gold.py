"""Gold-standard mappings and matching helpers.

A gold mapping is a set of expected correspondences expressed as
path *suffixes* (``"POLines.Item.Qty" → "Items.Item.Quantity"``).
Suffix matching lets one gold entry cover a node regardless of how
many ancestors the schema root adds, while still distinguishing
context-dependent copies (``DeliverTo.Address.City`` vs
``InvoiceTo.Address.City``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set, Tuple

from repro.mapping.mapping import Mapping, MappingElement


def _suffix_matches(path: Tuple[str, ...], suffix: Tuple[str, ...]) -> bool:
    if len(suffix) > len(path):
        return False
    return path[len(path) - len(suffix):] == suffix


def _parse(path: str) -> Tuple[str, ...]:
    return tuple(p for p in path.split(".") if p)


@dataclass
class GoldMapping:
    """Expected correspondences for one experiment."""

    pairs: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = field(
        default_factory=list
    )

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, str]]) -> "GoldMapping":
        return cls([(_parse(s), _parse(t)) for s, t in pairs])

    def add(self, source_suffix: str, target_suffix: str) -> None:
        self.pairs.append((_parse(source_suffix), _parse(target_suffix)))

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    # ------------------------------------------------------------------

    def covers(self, element: MappingElement) -> bool:
        """True if ``element`` matches some gold pair (suffix match)."""
        return any(
            _suffix_matches(element.source_path, gold_source)
            and _suffix_matches(element.target_path, gold_target)
            for gold_source, gold_target in self.pairs
        )

    def found_pairs(self, mapping: Mapping) -> Set[int]:
        """Indices of gold pairs matched by at least one element."""
        found: Set[int] = set()
        for element in mapping:
            for index, (gold_source, gold_target) in enumerate(self.pairs):
                if _suffix_matches(element.source_path, gold_source) and (
                    _suffix_matches(element.target_path, gold_target)
                ):
                    found.add(index)
        return found

    def missing_pairs(self, mapping: Mapping) -> List[Tuple[str, str]]:
        found = self.found_pairs(mapping)
        return [
            (".".join(s), ".".join(t))
            for index, (s, t) in enumerate(self.pairs)
            if index not in found
        ]

    def false_positives(self, mapping: Mapping) -> List[MappingElement]:
        return [e for e in mapping if not self.covers(e)]

    # ------------------------------------------------------------------
    # Target-grouped (alternative-aware) scoring
    # ------------------------------------------------------------------

    def targets(self) -> List[Tuple[str, ...]]:
        """Distinct gold target suffixes, in first-appearance order."""
        seen: List[Tuple[str, ...]] = []
        for _, target in self.pairs:
            if target not in seen:
                seen.append(target)
        return seen

    def matched_targets(self, mapping: Mapping) -> Set[Tuple[str, ...]]:
        """Targets for which *some* acceptable source was mapped.

        Several gold pairs sharing a target act as alternatives — the
        paper's "Orders or OrderDetails (or a join of the two) to
        Sales" is three acceptable sources for the single Sales target.
        """
        matched: Set[Tuple[str, ...]] = set()
        for element in mapping:
            for gold_source, gold_target in self.pairs:
                if _suffix_matches(element.source_path, gold_source) and (
                    _suffix_matches(element.target_path, gold_target)
                ):
                    matched.add(gold_target)
        return matched

    def target_recall(self, mapping: Mapping) -> float:
        """Fraction of distinct gold targets mapped to an acceptable source."""
        targets = self.targets()
        if not targets:
            return 0.0
        return len(self.matched_targets(mapping)) / len(targets)

    def unmatched_targets(self, mapping: Mapping) -> List[str]:
        matched = self.matched_targets(mapping)
        return [
            ".".join(target) for target in self.targets()
            if target not in matched
        ]
