"""Synthetic schema generation and perturbation.

Two uses:

* the scalability benchmark (the paper lists "scalability analysis and
  testing ... on large-sized schemas" as necessary future work — E9);
* property-based tests: a schema matched against a *perturbed* copy of
  itself has a known gold mapping, so invariants like "renaming with
  known abbreviations preserves the mapping" become testable.

All randomness flows through a seeded :class:`random.Random`, so every
generated workload is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datasets.gold import GoldMapping
from repro.model.builder import SchemaBuilder
from repro.model.datatypes import DataType
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema

#: Vocabulary used for generated element names (business-domain words
#: the bundled thesaurus knows, plus neutral filler).
_WORDS = [
    "order", "customer", "product", "invoice", "payment", "address",
    "street", "city", "state", "country", "phone", "email", "name",
    "date", "quantity", "price", "amount", "discount", "region",
    "territory", "employee", "brand", "category", "supplier", "unit",
    "code", "status", "type", "line", "detail", "total", "tax",
    "shipment", "account", "contact", "number", "description",
]

_LEAF_TYPES = [
    DataType.STRING, DataType.INTEGER, DataType.DECIMAL, DataType.DATE,
    DataType.BOOLEAN, DataType.MONEY, DataType.IDENTIFIER,
]

#: Rename table for the "abbreviate" perturbation — inverse of the
#: bundled thesaurus' expansions, so the perturbed schema should still
#: match the original.
_ABBREVIATIONS = {
    "quantity": "qty",
    "number": "num",
    "amount": "amt",
    "address": "addr",
    "telephone": "tel",
    "description": "desc",
    "identifier": "id",
    "customer": "cust",
    "employee": "emp",
    "order": "ord",
    "product": "prod",
}

#: Synonym swaps drawn from the bundled lexicon.
_SYNONYM_SWAPS = {
    "invoice": "bill",
    "ship": "deliver",
    "phone": "telephone",
    "state": "province",
    "company": "organization",
    "customer": "client",
    "price": "cost",
    "city": "town",
}


@dataclass
class PerturbationConfig:
    """Probabilities of each perturbation, applied per element."""

    abbreviate: float = 0.3
    synonym: float = 0.3
    prefix_suffix: float = 0.1
    retype: float = 0.1
    flatten: float = 0.0
    drop_leaf: float = 0.0

    def validate(self) -> None:
        for name in (
            "abbreviate", "synonym", "prefix_suffix",
            "retype", "flatten", "drop_leaf",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")


class SchemaGenerator:
    """Seeded generator of hierarchical schemas and perturbed copies."""

    def __init__(self, seed: int = 7) -> None:
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate(
        self,
        name: str = "generated",
        n_leaves: int = 30,
        max_depth: int = 3,
        fanout: int = 5,
        name_repetition: float = 0.0,
    ) -> Schema:
        """Generate a schema with roughly ``n_leaves`` atomic elements.

        ``name_repetition`` is the probability that a new element
        reuses an already-coined name instead of a fresh one (never
        under the same parent, so element paths stay unambiguous).
        Real catalogs repeat names heavily — every table has its "id",
        "name", "date" — and the duplicate-heavy workloads the
        linguistic kernel benchmarks exercise are generated with this
        knob at 0.6–0.9.
        """
        if n_leaves < 1:
            raise ValueError("n_leaves must be >= 1")
        if not 0.0 <= name_repetition <= 1.0:
            raise ValueError(
                f"name_repetition={name_repetition} outside [0, 1]"
            )
        builder = SchemaBuilder(name)
        # Dedupe on word *multisets*, not spellings: "OrderCustomer" and
        # "CustomerOrder" tokenize identically, and a digit suffix
        # ("City2") is linguistically near-identical to its sibling —
        # either would make self-match gold mappings inherently
        # ambiguous.
        used_keys: Dict[Tuple[str, ...], int] = {}

        def fresh_name() -> str:
            for _ in range(12):
                word_count = self.rng.choice((1, 2, 2, 3))
                words = [self.rng.choice(_WORDS) for _ in range(word_count)]
                key = tuple(sorted(words))
                if key not in used_keys:
                    used_keys[key] = 1
                    return "".join(w.capitalize() for w in words)
            # Extremely unlikely fallback: extend with unused words.
            words = list(key)
            for extra in _WORDS:
                candidate = tuple(sorted(words + [extra]))
                if candidate not in used_keys:
                    used_keys[candidate] = 1
                    return "".join(
                        w.capitalize() for w in words + [extra]
                    )
            count = used_keys[key] = used_keys.get(key, 1) + 1
            return "".join(w.capitalize() for w in words) + str(count)

        #: Names already coined, the reuse pool for name_repetition.
        coined: List[str] = []

        def next_name(parent) -> str:
            # The name_repetition guard comes first so the 0.0 default
            # consumes no randomness: seeded workloads generated before
            # this knob existed stay bit-identical.
            if name_repetition and coined and (
                self.rng.random() < name_repetition
            ):
                siblings = {
                    e.name for e in builder.schema.contained_children(parent)
                }
                for _ in range(8):
                    candidate = self.rng.choice(coined)
                    if candidate not in siblings:
                        return candidate
            fresh = fresh_name()
            coined.append(fresh)
            return fresh

        remaining = n_leaves
        # Open slots: (element, its depth). The root never closes, so
        # the requested leaf count is always reached even when every
        # inner node fills up.
        open_parents = [(builder.root, 0)]

        while remaining > 0:
            index = self.rng.randrange(len(open_parents))
            parent, depth = open_parents[index]
            children = len(builder.schema.contained_children(parent))
            if parent is not builder.root and children >= fanout:
                open_parents.pop(index)
                continue
            make_inner = (
                depth < max_depth
                and remaining > 1
                and self.rng.random() < 0.35
            )
            if make_inner:
                child = builder.add_child(parent, next_name(parent))
                open_parents.append((child, depth + 1))
                # Seed the new inner node so it is never left empty.
                builder.add_leaf(
                    child, next_name(child), self.rng.choice(_LEAF_TYPES)
                )
                remaining -= 1
            else:
                builder.add_leaf(
                    parent,
                    next_name(parent),
                    self.rng.choice(_LEAF_TYPES),
                    optional=self.rng.random() < 0.2,
                )
                remaining -= 1
        return builder.schema

    # ------------------------------------------------------------------
    # Perturbation
    # ------------------------------------------------------------------

    def perturb(
        self,
        schema: Schema,
        config: Optional[PerturbationConfig] = None,
        name_suffix: str = "_perturbed",
    ) -> Tuple[Schema, GoldMapping]:
        """Copy ``schema`` with random edits; return (copy, gold).

        The gold mapping pairs every surviving leaf of the original
        with its (possibly renamed/re-typed/re-homed) counterpart.
        """
        config = config or PerturbationConfig()
        config.validate()
        builder = SchemaBuilder(schema.name + name_suffix)
        gold = GoldMapping()

        def copy_children(source_parent, target_parent, path, new_path):
            for child in schema.contained_children(source_parent):
                child_path = path + (child.name,)
                if child.is_atomic:
                    if self.rng.random() < config.drop_leaf:
                        continue
                    new_name = self._perturb_name(child.name, config)
                    data_type = child.data_type
                    if self.rng.random() < config.retype:
                        data_type = self.rng.choice(_LEAF_TYPES)
                    builder.add_leaf(
                        target_parent, new_name, data_type,
                        optional=child.optional,
                    )
                    gold.add(
                        ".".join(child_path),
                        ".".join(new_path + (new_name,)),
                    )
                else:
                    if self.rng.random() < config.flatten:
                        # Splice this inner node out: its children hang
                        # directly off the current target parent.
                        copy_children(
                            child, target_parent, child_path, new_path
                        )
                    else:
                        new_name = self._perturb_name(child.name, config)
                        node = builder.add_child(target_parent, new_name)
                        copy_children(
                            child, node, child_path, new_path + (new_name,)
                        )

        copy_children(schema.root, builder.root, (), ())
        return builder.schema, gold

    def _perturb_name(self, name: str, config: PerturbationConfig) -> str:
        lowered = name.lower()
        roll = self.rng.random()
        if roll < config.abbreviate:
            for long_form, short in _ABBREVIATIONS.items():
                if long_form in lowered:
                    return self._replace_word(name, long_form, short)
        roll = self.rng.random()
        if roll < config.synonym:
            for word, replacement in _SYNONYM_SWAPS.items():
                if word in lowered:
                    return self._replace_word(name, word, replacement)
        roll = self.rng.random()
        if roll < config.prefix_suffix:
            return name + self.rng.choice(("Code", "Value", "Info"))
        return name

    @staticmethod
    def _replace_word(name: str, word: str, replacement: str) -> str:
        """Case-aware single replacement of ``word`` inside ``name``."""
        index = name.lower().find(word)
        if index < 0:
            return name
        original = name[index:index + len(word)]
        if original[:1].isupper():
            replacement = replacement.capitalize()
        return name[:index] + replacement + name[index + len(word):]
