"""Figure 7 — the CIDX and Excel purchase-order schemas (Table 3).

Transcribed from the paper's Figure 7. The two real-world XML schemas
came from www.BizTalk.org; "while somewhat similar, they also have XML
elements with differences in nesting, some missing elements,
non-matching data types and slightly different names".

The Excel schema's Address and Contact structures are *shared
complexTypes* referenced from both DeliverTo and InvoiceTo — the
paper's point about "18 such XML attributes" occurring in multiple
contexts. The CIDX schema spells its POBillTo/POShipTo structures out
inline.

Gold mappings (element-level rows of Table 3 plus the attribute-level
correspondences the prose discusses) live in :func:`cidx_excel_gold`
and :func:`cidx_excel_element_gold`.
"""

from __future__ import annotations

from repro.datasets.gold import GoldMapping
from repro.io.xml_schema import parse_xml_schema
from repro.model.schema import Schema

_CIDX_XML = """
<schema name="PO">
  <element name="POHeader">
    <attribute name="PONumber" type="string"/>
    <attribute name="PODate" type="date"/>
  </element>
  <element name="Contact">
    <attribute name="ContactName" type="string"/>
    <attribute name="ContactFunctionCode" type="string" optional="true"/>
    <attribute name="ContactEmail" type="string" optional="true"/>
    <attribute name="ContactPhone" type="string" optional="true"/>
  </element>
  <element name="POShipTo">
    <attribute name="Street1" type="string"/>
    <attribute name="Street2" type="string" optional="true"/>
    <attribute name="Street3" type="string" optional="true"/>
    <attribute name="Street4" type="string" optional="true"/>
    <attribute name="City" type="string"/>
    <attribute name="StateProvince" type="string"/>
    <attribute name="PostalCode" type="string"/>
    <attribute name="Country" type="string"/>
    <attribute name="attn" type="string" optional="true"/>
    <attribute name="entityIdentifier" type="string" optional="true"/>
    <attribute name="startAt" type="date" optional="true"/>
  </element>
  <element name="POBillTo">
    <attribute name="Street1" type="string"/>
    <attribute name="Street2" type="string" optional="true"/>
    <attribute name="Street3" type="string" optional="true"/>
    <attribute name="Street4" type="string" optional="true"/>
    <attribute name="City" type="string"/>
    <attribute name="StateProvince" type="string"/>
    <attribute name="PostalCode" type="string"/>
    <attribute name="Country" type="string"/>
    <attribute name="attn" type="string" optional="true"/>
    <attribute name="entityIdentifier" type="string" optional="true"/>
  </element>
  <element name="POLines">
    <attribute name="count" type="integer"/>
    <element name="Item">
      <attribute name="line" type="integer"/>
      <attribute name="partno" type="string"/>
      <attribute name="qty" type="integer"/>
      <attribute name="uom" type="string"/>
      <attribute name="unitPrice" type="decimal"/>
    </element>
  </element>
</schema>
"""

_EXCEL_XML = """
<schema name="PurchaseOrder">
  <complexType name="Address">
    <attribute name="street1" type="string"/>
    <attribute name="street2" type="string" optional="true"/>
    <attribute name="street3" type="string" optional="true"/>
    <attribute name="street4" type="string" optional="true"/>
    <attribute name="city" type="string"/>
    <attribute name="stateProvince" type="string"/>
    <attribute name="postalCode" type="string"/>
    <attribute name="country" type="string"/>
  </complexType>
  <complexType name="Contact">
    <attribute name="contactName" type="string"/>
    <attribute name="companyName" type="string" optional="true"/>
    <attribute name="e-mail" type="string" optional="true"/>
    <attribute name="telephone" type="string" optional="true"/>
  </complexType>
  <element name="Header">
    <attribute name="orderNum" type="string"/>
    <attribute name="orderDate" type="date"/>
    <attribute name="yourAccountCode" type="string" optional="true"/>
    <attribute name="ourAccountCode" type="string" optional="true"/>
  </element>
  <element name="DeliverTo">
    <element name="Address" type="Address"/>
    <element name="Contact" type="Contact"/>
  </element>
  <element name="InvoiceTo">
    <element name="Address" type="Address"/>
    <element name="Contact" type="Contact"/>
  </element>
  <element name="Items">
    <attribute name="itemCount" type="integer"/>
    <element name="Item">
      <attribute name="itemNumber" type="integer"/>
      <attribute name="partNumber" type="string"/>
      <attribute name="yourPartNumber" type="string" optional="true"/>
      <attribute name="partDescription" type="string" optional="true"/>
      <attribute name="Quantity" type="integer"/>
      <attribute name="unitOfMeasure" type="string"/>
      <attribute name="unitPrice" type="decimal"/>
    </element>
  </element>
  <element name="Footer">
    <attribute name="totalValue" type="decimal"/>
  </element>
</schema>
"""


def cidx_schema() -> Schema:
    """The CIDX purchase order (left side of Figure 7)."""
    return parse_xml_schema(_CIDX_XML)


def excel_schema() -> Schema:
    """The Excel purchase order (right side of Figure 7)."""
    return parse_xml_schema(_EXCEL_XML)


def cidx_excel_element_gold() -> GoldMapping:
    """The XML-element-level rows of Table 3."""
    return GoldMapping.from_pairs(
        [
            ("POHeader", "Header"),
            ("POLines.Item", "Items.Item"),
            ("POLines", "Items"),
            ("POBillTo", "InvoiceTo"),
            ("POShipTo", "DeliverTo"),
            ("Contact", "DeliverTo.Contact"),
            ("Contact", "InvoiceTo.Contact"),
            ("PO", "PurchaseOrder"),
        ]
    )


def cidx_excel_gold() -> GoldMapping:
    """Attribute-level gold correspondences (leaves)."""
    pairs = [
        ("POHeader.PONumber", "Header.orderNum"),
        ("POHeader.PODate", "Header.orderDate"),
        ("POLines.count", "Items.itemCount"),
        ("POLines.Item.line", "Items.Item.itemNumber"),
        ("POLines.Item.partno", "Items.Item.partNumber"),
        ("POLines.Item.qty", "Items.Item.Quantity"),
        ("POLines.Item.uom", "Items.Item.unitOfMeasure"),
        ("POLines.Item.unitPrice", "Items.Item.unitPrice"),
    ]
    for cidx_context, excel_context in (
        ("POShipTo", "DeliverTo"),
        ("POBillTo", "InvoiceTo"),
    ):
        for cidx_attr, excel_attr in (
            ("Street1", "street1"),
            ("Street2", "street2"),
            ("Street3", "street3"),
            ("Street4", "street4"),
            ("City", "city"),
            ("StateProvince", "stateProvince"),
            ("PostalCode", "postalCode"),
            ("Country", "country"),
        ):
            pairs.append(
                (
                    f"{cidx_context}.{cidx_attr}",
                    f"{excel_context}.Address.{excel_attr}",
                )
            )
    # The single CIDX Contact corresponds to both Excel Contact copies.
    for excel_context in ("DeliverTo", "InvoiceTo"):
        pairs.extend(
            [
                ("Contact.ContactName", f"{excel_context}.Contact.contactName"),
                ("Contact.ContactEmail", f"{excel_context}.Contact.e-mail"),
                ("Contact.ContactPhone", f"{excel_context}.Contact.telephone"),
            ]
        )
    return GoldMapping.from_pairs(pairs)
