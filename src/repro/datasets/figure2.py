"""Figure 2 — the PO / PurchaseOrder running example of Section 4.

::

    PO                          PurchaseOrder
      POLines                     Items
        Count                       ItemCount
        Item                        Item
          Line                        ItemNumber
          Qty                         Quantity
          UoM                         UnitOfMeasure
      POShipTo                    DeliverTo
        Street                      Address
        City                          Street
      POBillTo                        City
        Street                    InvoiceTo
        City                        Address
                                      Street
                                      City

The schemas exercise exactly the variations Section 4 narrates:
abbreviations (Qty/Quantity), acronyms (UoM/UnitOfMeasure), synonyms
(Bill/Invoice, Ship/Deliver), an extra nesting level on the
PurchaseOrder side (Address), and a structure-only pair
(Line/ItemNumber).
"""

from __future__ import annotations

from repro.model.builder import schema_from_tree
from repro.model.schema import Schema


def figure2_po() -> Schema:
    """The CIDX-flavoured PO schema (left side of Figure 2)."""
    return schema_from_tree(
        "PO",
        {
            "POLines": {
                "Count": "integer",
                "Item": {
                    "Line": "integer",
                    "Qty": "integer",
                    "UoM": "string",
                },
            },
            "POShipTo": {
                "Street": "string",
                "City": "string",
            },
            "POBillTo": {
                "Street": "string",
                "City": "string",
            },
        },
    )


def figure2_purchase_order() -> Schema:
    """The Excel-flavoured PurchaseOrder schema (right side)."""
    return schema_from_tree(
        "PurchaseOrder",
        {
            "Items": {
                "ItemCount": "integer",
                "Item": {
                    "ItemNumber": "integer",
                    "Quantity": "integer",
                    "UnitOfMeasure": "string",
                },
            },
            "DeliverTo": {
                "Address": {
                    "Street": "string",
                    "City": "string",
                },
            },
            "InvoiceTo": {
                "Address": {
                    "Street": "string",
                    "City": "string",
                },
            },
        },
    )
