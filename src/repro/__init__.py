"""repro — a reproduction of "Generic Schema Matching with Cupid".

Madhavan, Bernstein, Rahm (VLDB 2001 / MSR-TR-2001-58).

Public API
----------
The common entry points are re-exported here:

* :class:`CupidMatcher` / :class:`CupidResult` — the matcher itself.
* :class:`MatchSession` — session-oriented matching: prepare each
  schema once, then ``match`` / ``match_many`` / ``rematch`` with
  cached :class:`PreparedSchema` artifacts.
* :class:`MatchPipeline` / :class:`MatchStage` — the composable stage
  sequence behind the matcher (substitution, insertion, variants);
  :func:`baseline_pipeline` adapts the Section 9 baselines to it.
* :class:`Schema`, :class:`SchemaBuilder`, :func:`schema_from_tree` —
  building schemas programmatically.
* :class:`CupidConfig` — all Table 1 control parameters.
* :class:`Thesaurus`, :func:`builtin_thesaurus` — linguistic knowledge.
* :class:`Mapping` / :class:`MappingElement` — match output.
* importers in :mod:`repro.io`, baselines in :mod:`repro.baselines`,
  paper datasets in :mod:`repro.datasets`, metrics in :mod:`repro.eval`.
"""

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.core.cupid import CupidMatcher, CupidResult
from repro.core.tuning import auto_config, tune_against_sample
from repro.pipeline import (
    Matcher,
    MatchContext,
    MatchPipeline,
    MatchSession,
    MatchStage,
    PreparedSchema,
    baseline_pipeline,
)
from repro.linguistic.learning import LexicalProposal, ThesaurusLearner
from repro.linguistic.lexicon import builtin_thesaurus, paper_experiment_thesaurus
from repro.linguistic.thesaurus import Thesaurus, empty_thesaurus
from repro.mapping.assignment import greedy_one_to_one, hungarian_one_to_one
from repro.mapping.compose import compose_mappings, invert_mapping
from repro.mapping.hierarchy import (
    HierarchicalMapping,
    build_hierarchical_mapping,
)
from repro.mapping.mapping import Mapping, MappingElement
from repro.model.builder import SchemaBuilder, schema_from_tree
from repro.model.datatypes import DataType, TypeCompatibilityTable
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema
from repro.repository import (
    RankedMatch,
    RepositorySearchResult,
    SchemaRepository,
)

__version__ = "1.0.0"

__all__ = [
    "CupidConfig",
    "CupidMatcher",
    "CupidResult",
    "DEFAULT_CONFIG",
    "DataType",
    "ElementKind",
    "HierarchicalMapping",
    "LexicalProposal",
    "Mapping",
    "MappingElement",
    "MatchContext",
    "MatchPipeline",
    "MatchSession",
    "MatchStage",
    "Matcher",
    "PreparedSchema",
    "RankedMatch",
    "RepositorySearchResult",
    "Schema",
    "SchemaBuilder",
    "SchemaElement",
    "SchemaRepository",
    "Thesaurus",
    "ThesaurusLearner",
    "TypeCompatibilityTable",
    "auto_config",
    "baseline_pipeline",
    "build_hierarchical_mapping",
    "builtin_thesaurus",
    "compose_mappings",
    "empty_thesaurus",
    "greedy_one_to_one",
    "hungarian_one_to_one",
    "invert_mapping",
    "paper_experiment_thesaurus",
    "schema_from_tree",
    "tune_against_sample",
]
