"""Exception hierarchy for the Cupid reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. The hierarchy mirrors the pipeline stages: schema
construction, importing, tree expansion, matching, and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """Raised when a schema graph is malformed or violates an invariant.

    Examples: an element contained by two parents, a relationship whose
    endpoints belong to different schemas, or a dangling reference.
    """


class DuplicateElementError(SchemaError):
    """Raised when an element id is registered twice in one schema."""


class UnknownElementError(SchemaError):
    """Raised when an operation names an element the schema does not hold."""


class CyclicSchemaError(SchemaError):
    """Raised when containment/IsDerivedFrom relationships form a cycle.

    The paper (Section 8.2) explicitly defers recursive type definitions
    to future work; schema-tree construction fails on them, and we
    surface that failure as this exception.
    """


class ImportError_(ReproError):
    """Base class for schema importer failures (SQL DDL, XML, OO DSL)."""


class SqlDdlParseError(ImportError_):
    """Raised when the mini SQL DDL parser cannot parse its input.

    Carries ``line`` (1-based) and ``message`` describing the problem.
    """

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        self.message = message
        suffix = f" (line {line})" if line else ""
        super().__init__(f"{message}{suffix}")


class XmlSchemaParseError(ImportError_):
    """Raised when the simplified XML schema importer rejects its input."""


class OoModelParseError(ImportError_):
    """Raised when the OO class-definition DSL parser rejects its input."""


class MatchError(ReproError):
    """Base class for failures during the matching pipeline itself."""


class ConfigError(MatchError):
    """Raised when a :class:`repro.config.CupidConfig` is inconsistent,

    e.g. ``thhigh`` not greater than ``thaccept`` as Table 1 requires.
    """


class ParallelError(MatchError):
    """Raised when the tile-sharded parallel layer cannot complete an
    operation — a worker process died mid-request, a reply pipe broke,
    or a shard reported an internal failure. The store never silently
    falls back to serial on these: the error names the worker and the
    operation so the failure is diagnosable.
    """


class MappingError(ReproError):
    """Raised for ill-formed mappings (unknown elements, bad confidence)."""


class RepositoryError(ReproError):
    """Raised when a schema repository is unusable or inconsistent.

    Examples: a repository directory whose manifest is missing or
    corrupt, an artifact file written by an incompatible format
    version, or opening a repository under a config/thesaurus that
    does not match the one its artifacts were prepared with.
    """


class RepositoryReadOnlyError(RepositoryError):
    """Raised when a durable repository write fails (disk full,
    read-only mount) and the repository degrades to read-only service.

    Search and load keep working — they touch no repository file — but
    ingest and compaction surface this error until a later durable
    write succeeds. The flag is not sticky: every write re-probes the
    disk, so clearing the condition clears the degradation. Maps to
    HTTP 507 (Insufficient Storage) in the daemon.
    """


class SegmentError(RepositoryError):
    """Raised when an index segment file cannot be trusted: a missing
    file named by the manifest, a checksum mismatch, or a structurally
    broken payload. The repository treats any of these as a signal to
    fall back to the artifact re-scan — segments are a derived view,
    never the source of truth.
    """


class ServingError(ReproError):
    """Base class for the serving subsystem's request-level failures.

    Every error a :class:`repro.serving.MatchService` request can
    surface derives from this, so a front end (the HTTP daemon, an
    embedding application) can map the taxonomy to its own status
    codes without string-matching messages.
    """


class ServiceClosedError(ServingError):
    """Raised when a request reaches a service that has been closed
    (or is draining for shutdown)."""


class ServiceOverloadedError(ServingError):
    """Raised when the service's bounded request queue is full.

    Backpressure, not buffering: a saturated pool rejects new work
    immediately so callers can shed load or retry elsewhere instead of
    stacking unbounded latency.
    """


class RequestTimeoutError(ServingError):
    """Raised when a request exceeds its deadline.

    The deadline is cooperative: long operations (candidate matching
    inside a search) check it between units of work, so a timed-out
    request also stops consuming a pool session promptly.
    """


class BadRequestError(ServingError):
    """Raised for malformed service requests: unparseable JSON bodies,
    missing required fields, unknown schema formats, or out-of-range
    parameters. Maps to HTTP 400 in the daemon."""
