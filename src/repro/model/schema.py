"""The Schema class — a rooted graph of elements (Sections 2 and 8.1).

A :class:`Schema` owns a set of elements and the typed relationships
between them, enforces the model invariants (single containment parent,
single root, endpoints registered), and offers the graph navigation the
rest of the pipeline relies on (children, parents, leaves, traversals,
topological orders).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.exceptions import (
    DuplicateElementError,
    SchemaError,
    UnknownElementError,
)
from repro.model.element import ElementKind, SchemaElement
from repro.model.relationships import (
    Relationship,
    RelationshipKind,
    TREE_KINDS,
)


class Schema:
    """A named, rooted schema graph.

    The root element is created by the constructor; every other element
    is attached with :meth:`add_element` plus one of the ``add_*``
    relationship methods (or through :class:`repro.model.SchemaBuilder`).
    """

    def __init__(self, name: str, root_kind: ElementKind = ElementKind.SCHEMA) -> None:
        if not name:
            raise ValueError("schemas must have a non-empty name")
        self.name = name
        self._elements: Dict[str, SchemaElement] = {}
        self._relationships: List[Relationship] = []
        # Adjacency indexes, one per relationship kind, by element id.
        self._out: Dict[RelationshipKind, Dict[str, List[SchemaElement]]] = {
            kind: {} for kind in RelationshipKind
        }
        self._in: Dict[RelationshipKind, Dict[str, List[SchemaElement]]] = {
            kind: {} for kind in RelationshipKind
        }
        self.root = SchemaElement(name=name, kind=root_kind)
        self._register(self.root)

    # ------------------------------------------------------------------
    # Element management
    # ------------------------------------------------------------------

    def _register(self, element: SchemaElement) -> None:
        if element.element_id in self._elements:
            raise DuplicateElementError(
                f"element id {element.element_id!r} already in schema {self.name!r}"
            )
        self._elements[element.element_id] = element

    def add_element(self, element: SchemaElement) -> SchemaElement:
        """Register a free-standing element (no relationships yet)."""
        self._register(element)
        return element

    def has_element(self, element: SchemaElement) -> bool:
        return self._elements.get(element.element_id) is element

    def _require(self, element: SchemaElement) -> None:
        if not self.has_element(element):
            raise UnknownElementError(
                f"{element!r} is not part of schema {self.name!r}"
            )

    @property
    def elements(self) -> List[SchemaElement]:
        """All elements, in registration order (root first)."""
        return list(self._elements.values())

    def element_by_id(self, element_id: str) -> SchemaElement:
        try:
            return self._elements[element_id]
        except KeyError:
            raise UnknownElementError(
                f"no element with id {element_id!r} in schema {self.name!r}"
            ) from None

    def elements_named(self, name: str) -> List[SchemaElement]:
        """All elements carrying ``name`` (names need not be unique)."""
        return [e for e in self._elements.values() if e.name == name]

    def element_named(self, name: str) -> SchemaElement:
        """The unique element named ``name``; raises if absent/ambiguous."""
        found = self.elements_named(name)
        if not found:
            raise UnknownElementError(
                f"no element named {name!r} in schema {self.name!r}"
            )
        if len(found) > 1:
            raise SchemaError(
                f"{len(found)} elements named {name!r} in schema "
                f"{self.name!r}; use element_by_id or paths"
            )
        return found[0]

    # ------------------------------------------------------------------
    # Relationship management
    # ------------------------------------------------------------------

    def _add_relationship(
        self, source: SchemaElement, target: SchemaElement, kind: RelationshipKind
    ) -> Relationship:
        self._require(source)
        self._require(target)
        rel = Relationship(source=source, target=target, kind=kind)
        self._relationships.append(rel)
        self._out[kind].setdefault(source.element_id, []).append(target)
        self._in[kind].setdefault(target.element_id, []).append(source)
        return rel

    def add_containment(
        self, container: SchemaElement, member: SchemaElement
    ) -> Relationship:
        """Attach ``member`` under ``container``.

        Enforces the model invariant that "each element (except the
        root) is contained by exactly one other element".
        """
        if member is self.root:
            raise SchemaError("the root element cannot be contained")
        existing = self._in[RelationshipKind.CONTAINMENT].get(member.element_id)
        if existing:
            raise SchemaError(
                f"{member!r} already contained by {existing[0]!r}; "
                "containment allows exactly one parent"
            )
        return self._add_relationship(
            container, member, RelationshipKind.CONTAINMENT
        )

    def add_aggregation(
        self, group: SchemaElement, member: SchemaElement
    ) -> Relationship:
        """Group ``member`` under ``group`` (weak grouping, many parents)."""
        return self._add_relationship(group, member, RelationshipKind.AGGREGATION)

    def add_is_derived_from(
        self, element: SchemaElement, base: SchemaElement
    ) -> Relationship:
        """Record that ``element`` IsDerivedFrom ``base`` (shared type)."""
        return self._add_relationship(
            element, base, RelationshipKind.IS_DERIVED_FROM
        )

    def add_reference(
        self, refint: SchemaElement, target: SchemaElement
    ) -> Relationship:
        """Point a RefInt element at the key it references (Figure 5)."""
        return self._add_relationship(refint, target, RelationshipKind.REFERENCE)

    @property
    def relationships(self) -> List[Relationship]:
        return list(self._relationships)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def contained_children(self, element: SchemaElement) -> List[SchemaElement]:
        """Members attached to ``element`` by containment, in add order."""
        return list(self._out[RelationshipKind.CONTAINMENT].get(element.element_id, []))

    def container_of(self, element: SchemaElement) -> Optional[SchemaElement]:
        parents = self._in[RelationshipKind.CONTAINMENT].get(element.element_id)
        return parents[0] if parents else None

    def derived_bases(self, element: SchemaElement) -> List[SchemaElement]:
        """Types/supertypes ``element`` IsDerivedFrom."""
        return list(
            self._out[RelationshipKind.IS_DERIVED_FROM].get(element.element_id, [])
        )

    def deriving_elements(self, base: SchemaElement) -> List[SchemaElement]:
        """Elements that IsDerivedFrom ``base`` (its type users)."""
        return list(
            self._in[RelationshipKind.IS_DERIVED_FROM].get(base.element_id, [])
        )

    def aggregated_members(self, group: SchemaElement) -> List[SchemaElement]:
        return list(self._out[RelationshipKind.AGGREGATION].get(group.element_id, []))

    def reference_targets(self, refint: SchemaElement) -> List[SchemaElement]:
        return list(self._out[RelationshipKind.REFERENCE].get(refint.element_id, []))

    def refint_elements(self) -> List[SchemaElement]:
        """All reified referential constraints in this schema."""
        return [e for e in self._elements.values() if e.kind is ElementKind.REFINT]

    def tree_children(self, element: SchemaElement) -> List[SchemaElement]:
        """Targets of outgoing containment *or* IsDerivedFrom edges.

        This is the successor function Figure 4's construction follows.
        """
        children: List[SchemaElement] = []
        for kind in (RelationshipKind.CONTAINMENT, RelationshipKind.IS_DERIVED_FROM):
            children.extend(self._out[kind].get(element.element_id, []))
        return children

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def iter_containment_preorder(
        self, start: Optional[SchemaElement] = None
    ) -> Iterator[SchemaElement]:
        """Pre-order walk of the containment hierarchy from ``start``."""
        stack = [start or self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.contained_children(node)))

    def iter_containment_postorder(
        self, start: Optional[SchemaElement] = None
    ) -> Iterator[SchemaElement]:
        """Post-order walk of the containment hierarchy from ``start``."""
        root = start or self.root
        result: List[SchemaElement] = []
        stack = [root]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(self.contained_children(node))
        return iter(reversed(result))

    def containment_leaves(self, element: SchemaElement) -> List[SchemaElement]:
        """Atomic descendants of ``element`` in the containment tree."""
        return [
            node
            for node in self.iter_containment_preorder(element)
            if not self.contained_children(node)
        ]

    def containment_depth(self, element: SchemaElement) -> int:
        """Distance from the root along containment (root is depth 0)."""
        self._require(element)
        depth = 0
        node: Optional[SchemaElement] = element
        while node is not None and node is not self.root:
            node = self.container_of(node)
            depth += 1
        if node is None:
            raise SchemaError(f"{element!r} is not connected to the root")
        return depth

    def tree_edge_topological_order(self) -> List[SchemaElement]:
        """Inverse-topological order over containment + IsDerivedFrom.

        The order lazy expansion enumerates elements in (Section 8.4):
        every element appears after all elements reachable from it via
        tree edges. Raises :class:`SchemaError` on cycles.
        """
        state: Dict[str, int] = {}  # 0=unvisited, 1=in progress, 2=done
        order: List[SchemaElement] = []

        def visit(node: SchemaElement) -> None:
            status = state.get(node.element_id, 0)
            if status == 1:
                raise SchemaError(
                    f"cycle through {node!r} in containment/IsDerivedFrom edges"
                )
            if status == 2:
                return
            state[node.element_id] = 1
            for child in self.tree_children(node):
                visit(child)
            state[node.element_id] = 2
            order.append(node)

        for element in self._elements.values():
            visit(element)
        return order

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:
        return f"<Schema {self.name!r}: {len(self)} elements>"
