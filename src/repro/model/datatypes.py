"""Data types and the data-type compatibility table.

The paper initializes the structural similarity of two leaves to the
*type compatibility* of their data types, "a lookup in a compatibility
table" with values in [0, 0.5] where identical types score 0.5
(Section 6). The table here is the tunable equivalent of the one the
Cupid prototype shipped with ("accessible and tunable in the case of
Cupid", Section 9.1 example 2).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Mapping, Optional, Tuple


class DataType(enum.Enum):
    """Canonical data types used by schema elements.

    Importers map concrete SQL / XML type names onto these canonical
    types via :func:`parse_data_type`.
    """

    STRING = "string"
    TEXT = "text"
    CHAR = "char"
    INTEGER = "integer"
    SMALLINT = "smallint"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    FLOAT = "float"
    MONEY = "money"
    BOOLEAN = "boolean"
    DATE = "date"
    TIME = "time"
    DATETIME = "datetime"
    BINARY = "binary"
    IDENTIFIER = "identifier"
    ENUM = "enum"
    ANY = "any"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


#: Broad classes used for category formation (Section 5.2: "a category
#: for each broad data type, e.g. all elements with a numeric data type
#: are grouped together").
BROAD_CLASS: Mapping[DataType, str] = {
    DataType.STRING: "Text",
    DataType.TEXT: "Text",
    DataType.CHAR: "Text",
    DataType.INTEGER: "Number",
    DataType.SMALLINT: "Number",
    DataType.BIGINT: "Number",
    DataType.DECIMAL: "Number",
    DataType.FLOAT: "Number",
    DataType.MONEY: "Number",
    DataType.BOOLEAN: "Boolean",
    DataType.DATE: "Temporal",
    DataType.TIME: "Temporal",
    DataType.DATETIME: "Temporal",
    DataType.BINARY: "Binary",
    DataType.IDENTIFIER: "Identifier",
    DataType.ENUM: "Text",
    DataType.ANY: "Any",
}


_SQL_TYPE_ALIASES: Mapping[str, DataType] = {
    "varchar": DataType.STRING,
    "nvarchar": DataType.STRING,
    "string": DataType.STRING,
    "text": DataType.TEXT,
    "clob": DataType.TEXT,
    "char": DataType.CHAR,
    "nchar": DataType.CHAR,
    "int": DataType.INTEGER,
    "integer": DataType.INTEGER,
    "smallint": DataType.SMALLINT,
    "tinyint": DataType.SMALLINT,
    "bigint": DataType.BIGINT,
    "long": DataType.BIGINT,
    "decimal": DataType.DECIMAL,
    "numeric": DataType.DECIMAL,
    "number": DataType.DECIMAL,
    "float": DataType.FLOAT,
    "real": DataType.FLOAT,
    "double": DataType.FLOAT,
    "money": DataType.MONEY,
    "currency": DataType.MONEY,
    "bool": DataType.BOOLEAN,
    "boolean": DataType.BOOLEAN,
    "bit": DataType.BOOLEAN,
    "date": DataType.DATE,
    "time": DataType.TIME,
    "datetime": DataType.DATETIME,
    "timestamp": DataType.DATETIME,
    "binary": DataType.BINARY,
    "varbinary": DataType.BINARY,
    "blob": DataType.BINARY,
    "id": DataType.IDENTIFIER,
    "idref": DataType.IDENTIFIER,
    "identifier": DataType.IDENTIFIER,
    "guid": DataType.IDENTIFIER,
    "uuid": DataType.IDENTIFIER,
    "enum": DataType.ENUM,
    "any": DataType.ANY,
}


def parse_data_type(name: str) -> DataType:
    """Map a concrete type name (e.g. ``VARCHAR(40)``) to a canonical type.

    Unknown names fall back to :attr:`DataType.ANY` rather than failing;
    a matcher should degrade, not crash, on exotic types.
    """
    base = name.strip().lower()
    if "(" in base:
        base = base[: base.index("(")].strip()
    return _SQL_TYPE_ALIASES.get(base, DataType.ANY)


class TypeCompatibilityTable:
    """Symmetric lookup table of data-type compatibility in [0, 0.5].

    Identical types score ``identical`` (default 0.5, the paper's
    maximum, chosen so structural-similarity increases still have
    headroom). Types in the same broad class score ``same_class``;
    convertible cross-class pairs get explicit entries; everything else
    scores ``default``.
    """

    def __init__(
        self,
        identical: float = 0.5,
        same_class: float = 0.4,
        default: float = 0.15,
        overrides: Optional[Mapping[Tuple[DataType, DataType], float]] = None,
    ) -> None:
        if not 0.0 <= default <= same_class <= identical <= 0.5:
            raise ValueError(
                "compatibility scores must satisfy "
                "0 <= default <= same_class <= identical <= 0.5"
            )
        self.identical = identical
        self.same_class = same_class
        self.default = default
        self._overrides: Dict[Tuple[DataType, DataType], float] = {}
        for (a, b), score in (overrides or {}).items():
            self.set(a, b, score)

    def set(self, a: DataType, b: DataType, score: float) -> None:
        """Register a symmetric override for the pair ``(a, b)``."""
        if not 0.0 <= score <= 0.5:
            raise ValueError(f"compatibility score {score} outside [0, 0.5]")
        self._overrides[(a, b)] = score
        self._overrides[(b, a)] = score

    def compatibility(self, a: Optional[DataType], b: Optional[DataType]) -> float:
        """Return the compatibility of two (possibly missing) data types.

        Elements without a declared type (inner nodes promoted to leaves
        by pruning, XML elements with element-only content) compare as
        :attr:`DataType.ANY`.
        """
        a = a or DataType.ANY
        b = b or DataType.ANY
        if a is b:
            return self.identical
        override = self._overrides.get((a, b))
        if override is not None:
            return override
        if DataType.ANY in (a, b):
            # An untyped element is weakly compatible with everything.
            return self.same_class * 0.75
        if BROAD_CLASS[a] == BROAD_CLASS[b]:
            return self.same_class
        return self.default

    def items(self) -> Iterable[Tuple[Tuple[DataType, DataType], float]]:
        """Iterate over explicit overrides (for serialization/tests)."""
        return self._overrides.items()


def default_compatibility_table() -> TypeCompatibilityTable:
    """Build the default table with common convertible-pair overrides.

    The overrides capture conversions any data-translation runtime can
    do losslessly or near-losslessly (int→decimal, char→string, string
    holding a number, identifier↔integer surrogate keys, ...).
    """
    table = TypeCompatibilityTable()
    convertible = [
        (DataType.INTEGER, DataType.DECIMAL, 0.45),
        (DataType.INTEGER, DataType.FLOAT, 0.4),
        (DataType.SMALLINT, DataType.INTEGER, 0.45),
        (DataType.INTEGER, DataType.BIGINT, 0.45),
        (DataType.DECIMAL, DataType.MONEY, 0.45),
        (DataType.FLOAT, DataType.DECIMAL, 0.45),
        (DataType.CHAR, DataType.STRING, 0.45),
        (DataType.STRING, DataType.TEXT, 0.45),
        (DataType.STRING, DataType.ENUM, 0.4),
        (DataType.DATE, DataType.DATETIME, 0.45),
        (DataType.TIME, DataType.DATETIME, 0.4),
        (DataType.IDENTIFIER, DataType.INTEGER, 0.35),
        (DataType.IDENTIFIER, DataType.STRING, 0.35),
        # A string column can always hold a rendered number or date;
        # the reverse is lossy, hence the low-but-nonzero scores.
        (DataType.STRING, DataType.INTEGER, 0.25),
        (DataType.STRING, DataType.DECIMAL, 0.25),
        (DataType.STRING, DataType.DATE, 0.2),
        (DataType.STRING, DataType.DATETIME, 0.2),
    ]
    for a, b, score in convertible:
        table.set(a, b, score)
    return table
