"""Fluent construction of schemas.

Datasets and tests build many small schemas; doing that through raw
``add_element`` / ``add_containment`` calls is noisy. ``SchemaBuilder``
offers a compact nested-dict / helper-method surface while still going
through the :class:`~repro.model.schema.Schema` invariants.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import SchemaError
from repro.model.datatypes import DataType, parse_data_type
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema

#: Shorthand accepted for leaf specs: a DataType, a type-name string
#: ("varchar(40)"), or None for untyped leaves.
TypeSpec = Union[DataType, str, None]

#: A nested tree spec: {"Name": subtree | TypeSpec}.
TreeSpec = Dict[str, Union["TreeSpec", TypeSpec]]


def _coerce_type(spec: TypeSpec) -> Optional[DataType]:
    if spec is None or isinstance(spec, DataType):
        return spec
    return parse_data_type(spec)


class SchemaBuilder:
    """Builds a :class:`Schema` incrementally.

    Example
    -------
    >>> builder = SchemaBuilder("PO")
    >>> lines = builder.add_child(builder.root, "POLines")
    >>> item = builder.add_child(lines, "Item")
    >>> _ = builder.add_leaf(item, "Qty", "integer")
    >>> schema = builder.schema
    """

    def __init__(
        self, name: str, root_kind: ElementKind = ElementKind.SCHEMA
    ) -> None:
        self.schema = Schema(name, root_kind=root_kind)

    @property
    def root(self) -> SchemaElement:
        return self.schema.root

    # ------------------------------------------------------------------
    # Incremental API
    # ------------------------------------------------------------------

    def add_child(
        self,
        parent: SchemaElement,
        name: str,
        kind: ElementKind = ElementKind.XML_ELEMENT,
        optional: bool = False,
        description: str = "",
    ) -> SchemaElement:
        """Add a structural (non-atomic) element contained by ``parent``."""
        element = SchemaElement(
            name=name, kind=kind, optional=optional, description=description
        )
        self.schema.add_element(element)
        self.schema.add_containment(parent, element)
        return element

    def add_leaf(
        self,
        parent: SchemaElement,
        name: str,
        data_type: TypeSpec = None,
        kind: ElementKind = ElementKind.XML_ATTRIBUTE,
        optional: bool = False,
        is_key: bool = False,
        description: str = "",
    ) -> SchemaElement:
        """Add an atomic element contained by ``parent``."""
        element = SchemaElement(
            name=name,
            kind=kind,
            data_type=_coerce_type(data_type) or DataType.ANY,
            optional=optional,
            is_key=is_key,
            description=description,
        )
        self.schema.add_element(element)
        self.schema.add_containment(parent, element)
        return element

    def add_shared_type(
        self,
        name: str,
        kind: ElementKind = ElementKind.TYPE,
    ) -> SchemaElement:
        """Add a free-standing type element (target of IsDerivedFrom).

        Shared types hang off the root by containment so the schema
        stays rooted, but are marked *not instantiated* so tree
        expansion does not materialize them in place — only through the
        elements that derive from them.
        """
        element = SchemaElement(name=name, kind=kind, not_instantiated=True)
        self.schema.add_element(element)
        self.schema.add_containment(self.schema.root, element)
        return element

    def derive_from(self, element: SchemaElement, base: SchemaElement) -> None:
        self.schema.add_is_derived_from(element, base)

    # ------------------------------------------------------------------
    # Declarative API
    # ------------------------------------------------------------------

    def add_tree(
        self,
        parent: SchemaElement,
        spec: TreeSpec,
        element_kind: ElementKind = ElementKind.XML_ELEMENT,
        leaf_kind: ElementKind = ElementKind.XML_ATTRIBUTE,
    ) -> List[SchemaElement]:
        """Materialize a nested-dict tree spec under ``parent``.

        Dict values are subtrees; ``DataType``/str/None values are
        leaves. Returns the elements created at the top level of the
        spec, in order.
        """
        created: List[SchemaElement] = []
        for name, sub in spec.items():
            if isinstance(sub, dict):
                node = self.add_child(parent, name, kind=element_kind)
                self.add_tree(
                    node, sub, element_kind=element_kind, leaf_kind=leaf_kind
                )
            else:
                node = self.add_leaf(parent, name, sub, kind=leaf_kind)
            created.append(node)
        return created

    def find(self, *path: str) -> SchemaElement:
        """Resolve an element by containment path from the root.

        ``find("POLines", "Item", "Qty")`` walks name-by-name. Raises
        :class:`SchemaError` if a step is missing or ambiguous.
        """
        node = self.schema.root
        for step in path:
            matches = [
                child
                for child in self.schema.contained_children(node)
                if child.name == step
            ]
            if not matches:
                raise SchemaError(
                    f"no child {step!r} under {node.name!r} in {self.schema.name!r}"
                )
            if len(matches) > 1:
                raise SchemaError(
                    f"ambiguous child {step!r} under {node.name!r}"
                )
            node = matches[0]
        return node


def schema_from_tree(
    name: str,
    spec: TreeSpec,
    element_kind: ElementKind = ElementKind.XML_ELEMENT,
    leaf_kind: ElementKind = ElementKind.XML_ATTRIBUTE,
) -> Schema:
    """One-shot helper: build a whole schema from a nested-dict spec."""
    builder = SchemaBuilder(name)
    builder.add_tree(
        builder.root, spec, element_kind=element_kind, leaf_kind=leaf_kind
    )
    return builder.schema
