"""Relationships between schema elements (Section 8.1).

The paper's generic model interconnects elements with three relationship
types — containment, aggregation, IsDerivedFrom — plus the *reference*
relationship introduced for RefInt elements in Section 8.3:

* **Containment** models physical containment: every element except the
  root is contained by exactly one other element. Schema trees are
  containment hierarchies.
* **Aggregation** groups elements more weakly (multiple parents allowed,
  no delete propagation): a compound key aggregates columns.
* **IsDerivedFrom** abstracts IsA/IsTypeOf to model shared types; it
  shortcuts containment (a type's members are implicitly members of the
  deriving element).
* **Reference** points from a RefInt element to the key it refers to
  (Figure 5: a foreign key *aggregates* its source columns and
  *references* the target primary key).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.model.element import SchemaElement


class RelationshipKind(enum.Enum):
    CONTAINMENT = "containment"
    AGGREGATION = "aggregation"
    IS_DERIVED_FROM = "is_derived_from"
    REFERENCE = "reference"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RelationshipKind.{self.name}"


#: Relationship kinds that are followed when expanding a schema graph
#: into a schema tree (Figure 4 follows "containment or isDerivedFrom").
TREE_KINDS = frozenset(
    {RelationshipKind.CONTAINMENT, RelationshipKind.IS_DERIVED_FROM}
)


@dataclass(frozen=True)
class Relationship:
    """A directed, typed edge ``source --kind--> target``.

    For containment and aggregation, ``source`` is the container/group
    and ``target`` the member. For IsDerivedFrom, ``source`` is the
    deriving element and ``target`` the type it derives from. For
    reference, ``source`` is the RefInt element and ``target`` the
    referenced key.
    """

    source: SchemaElement
    target: SchemaElement
    kind: RelationshipKind

    def __post_init__(self) -> None:
        if self.source is self.target:
            raise ValueError(
                f"self-relationship on {self.source!r} is not allowed"
            )

    def __repr__(self) -> str:
        return (
            f"<{self.source.name} --{self.kind.value}--> {self.target.name}>"
        )
