"""Schema elements — the nodes of the generic schema graph (Section 8.1).

"In a relational schema, the elements are tables, columns, user-defined
types, keys, etc. In an XML schema the elements are XML elements and
attributes." Every node carries the metadata the matcher consumes: a
name, a data type, optionality, key-ness, and the *not-instantiated*
flag used by schema-tree construction to skip structural artifacts such
as keys (Section 8.2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.model.datatypes import DataType


class ElementKind(enum.Enum):
    """What role an element plays in its source data model.

    The kind never affects the matching math directly (Cupid is generic
    across data models); it feeds categorization keywords, importer
    bookkeeping, and report rendering.
    """

    SCHEMA = "schema"
    TABLE = "table"
    COLUMN = "column"
    XML_ELEMENT = "xml_element"
    XML_ATTRIBUTE = "xml_attribute"
    CLASS = "class"
    ATTRIBUTE = "attribute"
    ENTITY = "entity"
    RELATIONSHIP = "relationship"
    TYPE = "type"
    KEY = "key"
    REFINT = "refint"
    VIEW = "view"
    JOIN_VIEW = "join_view"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ElementKind.{self.name}"


_id_counter = itertools.count(1)


def _next_element_id() -> str:
    return f"e{next(_id_counter)}"


@dataclass(eq=False)
class SchemaElement:
    """A node of a schema graph.

    Parameters
    ----------
    name:
        The element's declared name. Linguistic matching runs on this.
    kind:
        Role in the source model (table, column, XML element, ...).
    data_type:
        Canonical data type for atomic elements; ``None`` for structural
        elements (tables, complex XML elements, classes).
    optional:
        True for non-required elements (e.g. optional XML attributes).
        Optional leaves are discounted by structural matching (§8.4).
    is_key:
        True for key/unique elements; importers set this from PRIMARY
        KEY / ID declarations.
    not_instantiated:
        True for elements that should be skipped during schema-tree
        construction (keys, RefInt scaffolding) — Figure 4.
    description:
        Free-text annotation (the paper lists using such annotations as
        future work; we store them and expose them to the tokenizer).
    element_id:
        Unique id within a process; auto-generated when omitted.
    """

    name: str
    kind: ElementKind = ElementKind.XML_ELEMENT
    data_type: Optional[DataType] = None
    optional: bool = False
    is_key: bool = False
    not_instantiated: bool = False
    description: str = ""
    element_id: str = field(default_factory=_next_element_id)

    def __post_init__(self) -> None:
        if not self.name and not self.not_instantiated:
            raise ValueError("schema elements must have a non-empty name")

    @property
    def is_atomic(self) -> bool:
        """True if this element carries a data type (i.e. holds data)."""
        return self.data_type is not None

    def clone(self, element_id: Optional[str] = None) -> "SchemaElement":
        """Copy this element under a fresh (or given) id.

        Used by schema-tree expansion, which makes "a private copy of
        the subschema rooted at the target of each IsDerivedFrom"
        (Section 8.2).
        """
        return SchemaElement(
            name=self.name,
            kind=self.kind,
            data_type=self.data_type,
            optional=self.optional,
            is_key=self.is_key,
            not_instantiated=self.not_instantiated,
            description=self.description,
            element_id=element_id or _next_element_id(),
        )

    def key(self) -> Tuple[str, str]:
        """Hashable identity used by mappings: (element_id, name)."""
        return (self.element_id, self.name)

    def __hash__(self) -> int:
        return hash(self.element_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchemaElement):
            return NotImplemented
        return self.element_id == other.element_id

    def __repr__(self) -> str:
        type_part = f":{self.data_type.value}" if self.data_type else ""
        return f"<{self.kind.value} {self.name}{type_part} #{self.element_id}>"
