"""Structural validation of schema graphs.

:func:`validate_schema` checks the invariants the rest of the pipeline
assumes. Importers call it after construction; tests use it as an
oracle for property-based schema generation.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import SchemaError
from repro.model.element import ElementKind
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema


def validate_schema(schema: Schema, require_connected: bool = True) -> List[str]:
    """Validate ``schema`` and return a list of warnings.

    Hard violations (invariant breaks) raise :class:`SchemaError`;
    suspicious-but-legal conditions (e.g. a RefInt without a reference
    target) are returned as human-readable warning strings.
    """
    warnings: List[str] = []

    _check_containment_is_forest(schema)
    if require_connected:
        _check_connected(schema, warnings)
    _check_refints(schema, warnings)
    _check_atomic_leaves(schema, warnings)
    return warnings


def _check_containment_is_forest(schema: Schema) -> None:
    """Containment must be acyclic with the schema root as sole root."""
    for element in schema.elements:
        seen = {element.element_id}
        node = schema.container_of(element)
        while node is not None:
            if node.element_id in seen:
                raise SchemaError(
                    f"containment cycle through {node!r} in {schema.name!r}"
                )
            seen.add(node.element_id)
            node = schema.container_of(node)


def _check_connected(schema: Schema, warnings: List[str]) -> None:
    """Every element should be reachable from the root via containment."""
    reachable = {
        node.element_id for node in schema.iter_containment_preorder()
    }
    for element in schema.elements:
        if element.element_id not in reachable:
            warnings.append(
                f"element {element.name!r} (#{element.element_id}) is not "
                f"reachable from the root of {schema.name!r} by containment"
            )


def _check_refints(schema: Schema, warnings: List[str]) -> None:
    """RefInts should aggregate ≥1 source and reference ≥1 target.

    The reference relationship is 1:n — "a single IDREF attribute [may]
    reference multiple IDs in an XML DTD" (Section 8.3) — so multiple
    targets are legal; zero targets is a dangling constraint.
    """
    for refint in schema.refint_elements():
        sources = schema.aggregated_members(refint)
        targets = schema.reference_targets(refint)
        if not sources:
            warnings.append(
                f"RefInt {refint.name!r} aggregates no source elements"
            )
        if not targets:
            warnings.append(
                f"RefInt {refint.name!r} references 0 targets "
                "(expected at least 1)"
            )


def _check_atomic_leaves(schema: Schema, warnings: List[str]) -> None:
    """Atomic (typed) elements should not contain other elements."""
    for element in schema.elements:
        if element.is_atomic and schema.contained_children(element):
            warnings.append(
                f"atomic element {element.name!r} has contained children; "
                "the matcher treats it as an inner node"
            )
