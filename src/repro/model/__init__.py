"""Generic schema model (paper Sections 2 and 8.1).

A schema is a rooted graph of :class:`~repro.model.element.SchemaElement`
nodes connected by containment, aggregation, IsDerivedFrom, and reference
relationships. Referential constraints are reified as RefInt elements
(Figure 5 of the paper). This package is the substrate every other part
of the library builds on.
"""

from repro.model.datatypes import (
    BROAD_CLASS,
    DataType,
    TypeCompatibilityTable,
    default_compatibility_table,
)
from repro.model.element import ElementKind, SchemaElement
from repro.model.relationships import Relationship, RelationshipKind
from repro.model.schema import Schema
from repro.model.builder import SchemaBuilder
from repro.model.validation import validate_schema

__all__ = [
    "BROAD_CLASS",
    "DataType",
    "ElementKind",
    "Relationship",
    "RelationshipKind",
    "Schema",
    "SchemaBuilder",
    "SchemaElement",
    "TypeCompatibilityTable",
    "default_compatibility_table",
    "validate_schema",
]
