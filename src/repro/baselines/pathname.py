"""Linguistic-only full-path-name matcher (Section 9.3, conclusion 3).

"To make a fair evaluation of the utility of just the linguistic
similarity, we compared elements in the two schemas using just their
complete path names (from the root) in their schema trees."

This matcher skips structure matching entirely: each tree node is
represented by the token multiset of its full path, compared with the
ordinary token-set name similarity, and the naïve best-per-target
scheme produces the mapping. The paper reports it misses 2 correct
attribute pairs and adds 7 false positives on CIDX–Excel, and finds
only ~68% of the RDB–Star mappings.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.linguistic.name_similarity import token_set_similarity
from repro.linguistic.normalizer import Normalizer
from repro.linguistic.thesaurus import Thesaurus
from repro.linguistic.lexicon import builtin_thesaurus
from repro.mapping.mapping import Mapping, MappingElement
from repro.model.schema import Schema
from repro.tree.construction import construct_schema_tree
from repro.tree.schema_tree import SchemaTree, SchemaTreeNode


class PathNameMatcher:
    """Match leaves by the name similarity of their full path names."""

    def __init__(
        self,
        thesaurus: Optional[Thesaurus] = None,
        config: Optional[CupidConfig] = None,
        threshold: Optional[float] = None,
    ) -> None:
        self.thesaurus = thesaurus if thesaurus is not None else builtin_thesaurus()
        self.config = config or DEFAULT_CONFIG
        #: Acceptance threshold; defaults to the config's thaccept.
        self.threshold = threshold if threshold is not None else self.config.thaccept
        self._normalizer = Normalizer(self.thesaurus)

    def match(self, source: Schema, target: Schema) -> Mapping:
        source_tree = construct_schema_tree(source)
        target_tree = construct_schema_tree(target)
        return self.match_trees(source_tree, target_tree)

    def as_pipeline(self):
        """This baseline as a :class:`repro.pipeline.MatchPipeline`.

        Satisfies the same ``Matcher`` protocol as ``CupidMatcher``
        (``match`` returning a ``CupidResult``-compatible object), so
        the evaluation harness and CLI can drive it interchangeably.
        """
        from repro.pipeline.adapters import baseline_pipeline

        return baseline_pipeline(
            self, thesaurus=self.thesaurus, config=self.config
        )

    def match_trees(
        self, source_tree: SchemaTree, target_tree: SchemaTree
    ) -> Mapping:
        mapping = Mapping(
            source_tree.schema.name, target_tree.schema.name
        )
        source_leaves = list(source_tree.root.leaves())
        target_leaves = list(target_tree.root.leaves())
        source_tokens = [self._path_tokens(n) for n in source_leaves]
        for t in target_leaves:
            t_tokens = self._path_tokens(t)
            best_node: Optional[SchemaTreeNode] = None
            best_score = -1.0
            for s, s_tokens in zip(source_leaves, source_tokens):
                score = token_set_similarity(
                    s_tokens, t_tokens, self.thesaurus, self.config
                )
                if score > best_score:
                    best_node = s
                    best_score = score
            if best_node is not None and best_score >= self.threshold:
                mapping.add(
                    MappingElement(
                        source_path=best_node.path(),
                        target_path=t.path(),
                        similarity=min(1.0, best_score),
                        source_node=best_node,
                        target_node=t,
                    )
                )
        return mapping

    def _path_tokens(self, node: SchemaTreeNode):
        """Token multiset of the node's full path (root included)."""
        tokens = []
        for name in node.path():
            tokens.extend(
                self._normalizer.normalize(name).comparable_tokens()
            )
        return tokens
