"""Baseline matchers the paper compares Cupid against (Section 9).

* :mod:`repro.baselines.dike` — DIKE-style iterative vicinity matching
  over ER models with a Lexical Synonymy Property Dictionary (LSPD).
* :mod:`repro.baselines.momis` — MOMIS/ARTEMIS-style name + structural
  affinity clustering of classes into global classes.
* :mod:`repro.baselines.pathname` — the linguistic-only full-path-name
  matcher used for the Section 9.3 (conclusion 3) ablation.

These are reimplementations from the published algorithm descriptions;
the original binaries were never released. They reproduce the
qualitative behaviour the paper reports (which examples each system
does or does not handle), not the originals' exact coefficients.

Baselines whose ``match(source, target)`` returns a
:class:`~repro.mapping.mapping.Mapping` (``PathNameMatcher``,
``TopDownMatcher``) expose ``as_pipeline()``, adapting them to the
same ``Matcher`` protocol and ``CupidResult``-compatible output as
``CupidMatcher`` (see :mod:`repro.pipeline.adapters`); matchers with
their own result domains (MOMIS clusters, DIKE's ER models) adapt via
``baseline_pipeline(matcher, extract=...)``.
"""

from repro.baselines.dike import DikeMatcher, DikeResult, LSPD
from repro.baselines.momis import ArtemisCluster, MomisMatcher, MomisResult
from repro.baselines.pathname import PathNameMatcher
from repro.baselines.topdown import TopDownMatcher

__all__ = [
    "ArtemisCluster",
    "DikeMatcher",
    "DikeResult",
    "LSPD",
    "MomisMatcher",
    "MomisResult",
    "PathNameMatcher",
    "TopDownMatcher",
]
