"""DIKE-style schema matcher (Palopoli, Terracina, Ursino [12]).

As summarized in Section 9 of the Cupid paper:

* operates on ER models; "schemas are interpreted as graphs with
  entities, relationships and attributes as nodes";
* input includes an LSPD — "a Lexical Synonymy Property Dictionary that
  contains linguistic similarity coefficients between elements in the
  two schemas";
* "the similarity coefficient of two nodes is initialized to a
  combination of their LSPD entry, data domains and keyness";
* "this coefficient is re-evaluated based on the similarity of nodes in
  their corresponding vicinities — nodes further away contribute less";
* output is an integrated/abstracted schema; we consider elements
  mapped "if the corresponding entities and attributes are merged
  together in the abstracted schema".

Known behavioural signatures reproduced here (and checked in the
Table 2 benchmark): DIKE matches identically-named elements without
LSPD input; it needs LSPD entries for renamed attributes; entity
merging absorbs nesting differences; and it cannot produce
context-dependent mappings for shared types — structurally identical
entities (Address vs ShipTo/BillTo) all merge together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.io.er_model import ERAttribute, EREntity, ERModel
from repro.model.datatypes import (
    TypeCompatibilityTable,
    default_compatibility_table,
)


class LSPD:
    """Lexical Synonymy Property Dictionary.

    Symmetric (name, name) → coefficient entries, case-insensitive.
    """

    def __init__(
        self, entries: Optional[Iterable[Tuple[str, str, float]]] = None
    ) -> None:
        self._entries: Dict[Tuple[str, str], float] = {}
        for a, b, coefficient in entries or []:
            self.add(a, b, coefficient)

    def add(self, a: str, b: str, coefficient: float) -> None:
        if not 0.0 <= coefficient <= 1.0:
            raise ValueError(f"LSPD coefficient {coefficient} outside [0, 1]")
        key = (a.lower(), b.lower())
        self._entries[key] = coefficient
        self._entries[(key[1], key[0])] = coefficient

    def lookup(self, a: str, b: str) -> Optional[float]:
        return self._entries.get((a.lower(), b.lower()))

    def __len__(self) -> int:
        return len(self._entries) // 2


@dataclass(frozen=True)
class _Node:
    """A node of the DIKE similarity graph."""

    kind: str  # "entity" | "relationship" | "attribute"
    name: str
    owner: str = ""  # entity name for attributes
    key: bool = False
    data_type: object = None

    def label(self) -> str:
        return f"{self.owner}.{self.name}" if self.owner else self.name


@dataclass
class DikeResult:
    """Merge outcome: which node pairs ended up merged."""

    entity_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    relationship_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    attribute_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    similarities: Dict[Tuple[str, str], float] = field(default_factory=dict)
    merged_entity_groups: List[Set[str]] = field(default_factory=list)

    def entity_merged(self, name1: str, name2: str) -> bool:
        return (name1.lower(), name2.lower()) in self.entity_pairs

    def attribute_merged(self, qual1: str, qual2: str) -> bool:
        return (qual1.lower(), qual2.lower()) in self.attribute_pairs


class DikeMatcher:
    """Iterative vicinity-based ER matcher.

    Parameters mirror the behaviour DIKE's papers describe: a distance
    decay (nearer nodes influence more), a fixed number of fixpoint
    iterations, and a merge threshold on the final similarity.
    """

    #: Per-node-kind weight of the vicinity contribution. Entities are
    #: vicinity-driven ("DIKE merges the entities together even without
    #: an LSPD entry" when their attributes match); attributes are
    #: name/LSPD-driven ("the XML-attributes within the entities are
    #: matched according to the LSPD entries").
    VICINITY_WEIGHT = {"entity": 0.7, "relationship": 0.5, "attribute": 0.25}

    def __init__(
        self,
        lspd: Optional[LSPD] = None,
        decay: float = 0.5,
        iterations: int = 4,
        merge_threshold: float = 0.55,
        max_distance: int = 2,
        compat: Optional[TypeCompatibilityTable] = None,
    ) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.lspd = lspd or LSPD()
        self.decay = decay
        self.iterations = iterations
        self.merge_threshold = merge_threshold
        self.max_distance = max_distance
        self.compat = compat or default_compatibility_table()

    # ------------------------------------------------------------------

    def match(self, model1: ERModel, model2: ERModel) -> DikeResult:
        nodes1, adjacency1 = self._graph(model1)
        nodes2, adjacency2 = self._graph(model2)

        sims: Dict[Tuple[_Node, _Node], float] = {}
        base: Dict[Tuple[_Node, _Node], float] = {}
        for n1 in nodes1:
            for n2 in nodes2:
                if n1.kind != n2.kind:
                    continue
                initial = self._initial_similarity(n1, n2)
                base[(n1, n2)] = initial
                sims[(n1, n2)] = initial

        neighborhoods1 = self._neighborhoods(nodes1, adjacency1)
        neighborhoods2 = self._neighborhoods(nodes2, adjacency2)

        # Fixpoint refinement: nearby nodes' similarities reinforce.
        for _ in range(self.iterations):
            updated: Dict[Tuple[_Node, _Node], float] = {}
            for (n1, n2), current in sims.items():
                weight = self.VICINITY_WEIGHT[n1.kind]
                vicinity = self._vicinity_score(
                    n1, n2, neighborhoods1, neighborhoods2, sims
                )
                updated[(n1, n2)] = (
                    (1.0 - weight) * base[(n1, n2)] + weight * vicinity
                )
            sims = updated

        entity_links = (
            self._entity_links(model1),
            self._entity_links(model2),
        )
        return self._merge(sims, entity_links)

    # ------------------------------------------------------------------

    def _graph(self, model: ERModel):
        """Build the node set and adjacency of one ER model."""
        nodes: List[_Node] = []
        adjacency: Dict[_Node, List[_Node]] = {}
        entity_nodes: Dict[str, _Node] = {}

        for entity in model.entities:
            node = _Node(kind="entity", name=entity.name)
            nodes.append(node)
            adjacency[node] = []
            entity_nodes[entity.name.lower()] = node
            for attribute in entity.attributes:
                attr_node = _Node(
                    kind="attribute",
                    name=attribute.name,
                    owner=entity.name,
                    key=attribute.is_key,
                    data_type=attribute.data_type,
                )
                nodes.append(attr_node)
                adjacency[attr_node] = [node]
                adjacency[node].append(attr_node)

        for relationship in model.relationships:
            rel_node = _Node(kind="relationship", name=relationship.name)
            nodes.append(rel_node)
            adjacency[rel_node] = []
            for participant in relationship.participants:
                entity_node = entity_nodes[participant.lower()]
                adjacency[rel_node].append(entity_node)
                adjacency[entity_node].append(rel_node)
        return nodes, adjacency

    def _neighborhoods(self, nodes, adjacency):
        """BFS neighborhoods per node, bucketed by distance 1..max."""
        result: Dict[_Node, Dict[int, List[_Node]]] = {}
        for start in nodes:
            buckets: Dict[int, List[_Node]] = {}
            visited = {start}
            frontier = [start]
            for distance in range(1, self.max_distance + 1):
                next_frontier: List[_Node] = []
                for node in frontier:
                    for neighbor in adjacency[node]:
                        if neighbor not in visited:
                            visited.add(neighbor)
                            next_frontier.append(neighbor)
                if not next_frontier:
                    break
                buckets[distance] = next_frontier
                frontier = next_frontier
            result[start] = buckets
        return result

    def _initial_similarity(self, n1: _Node, n2: _Node) -> float:
        """LSPD entry, else exact-name equality; plus domain/keyness.

        "Unlike Cupid, DIKE ... expect[s] identical names for matching
        schema elements in the absence of linguistic input (via LSPD)."
        """
        lspd = self.lspd.lookup(n1.name, n2.name)
        if lspd is not None:
            name_sim = lspd
        elif n1.name.lower() == n2.name.lower():
            name_sim = 1.0
        else:
            name_sim = 0.0

        if n1.kind != "attribute":
            return name_sim

        type_sim = 2.0 * self.compat.compatibility(n1.data_type, n2.data_type)
        key_sim = 1.0 if n1.key == n2.key else 0.0
        # Attributes: names dominate, domains and keyness contribute.
        return 0.7 * name_sim + 0.2 * type_sim + 0.1 * key_sim

    def _vicinity_score(
        self, n1, n2, neighborhoods1, neighborhoods2, sims
    ) -> float:
        """Distance-decayed greedy matching of the two neighborhoods.

        "The relevance of elements is inversely proportional to their
        distance from the elements being compared." Distances where
        either side has no neighbors are skipped rather than zeroed:
        DIKE handles nesting differences ("creates a single entity with
        all the attributes merged") precisely because a missing nesting
        level does not penalize the entity match.
        """
        total = 0.0
        weight_sum = 0.0
        for distance in range(1, self.max_distance + 1):
            bucket1 = neighborhoods1[n1].get(distance, [])
            bucket2 = neighborhoods2[n2].get(distance, [])
            if not bucket1 or not bucket2:
                continue
            weight = self.decay ** (distance - 1)
            score = self._greedy_bucket_match(bucket1, bucket2, sims)
            if score is None:
                continue
            weight_sum += weight
            total += weight * score
        if weight_sum == 0.0:
            return 0.0
        return total / weight_sum

    @staticmethod
    def _greedy_bucket_match(bucket1, bucket2, sims) -> Optional[float]:
        """Best-pairing similarity of two neighbor buckets.

        Pairing happens per node kind (attributes with attributes,
        relationships with relationships) and is normalized by the
        smaller per-kind count, so a 2-attribute entity nested inside a
        larger structure still scores highly against an 8-attribute
        flat entity — the subset is what matters for merging. Returns
        None when no kind is populated on both sides.
        """
        by_kind1: Dict[str, List[_Node]] = {}
        by_kind2: Dict[str, List[_Node]] = {}
        for node in bucket1:
            by_kind1.setdefault(node.kind, []).append(node)
        for node in bucket2:
            by_kind2.setdefault(node.kind, []).append(node)

        matched = 0.0
        denominator = 0
        for kind, nodes1 in by_kind1.items():
            nodes2 = by_kind2.get(kind)
            if not nodes2:
                continue
            pairs = [
                (sims.get((a, b), 0.0), i, j)
                for i, a in enumerate(nodes1)
                for j, b in enumerate(nodes2)
            ]
            pairs.sort(reverse=True)
            used1: Set[int] = set()
            used2: Set[int] = set()
            for score, i, j in pairs:
                if i in used1 or j in used2:
                    continue
                used1.add(i)
                used2.add(j)
                matched += score
            denominator += min(len(nodes1), len(nodes2))
        if denominator == 0:
            return None
        return matched / denominator

    @staticmethod
    def _entity_links(model: ERModel) -> Dict[str, Set[str]]:
        """entity name → names of entities it shares a relationship with."""
        links: Dict[str, Set[str]] = {}
        for relationship in model.relationships:
            lowered = [p.lower() for p in relationship.participants]
            for participant in lowered:
                links.setdefault(participant, set()).update(
                    p for p in lowered if p != participant
                )
        return links

    def _merge(
        self,
        sims: Dict[Tuple[_Node, _Node], float],
        entity_links: Tuple[Dict[str, Set[str]], Dict[str, Set[str]]],
    ) -> DikeResult:
        """Decide merges: pairs over the threshold, transitive groups."""
        result = DikeResult()
        for (n1, n2), score in sims.items():
            result.similarities[(n1.label().lower(), n2.label().lower())] = score

        entity_pairs = [
            (n1, n2, score)
            for (n1, n2), score in sims.items()
            if n1.kind == "entity" and score >= self.merge_threshold
        ]
        for n1, n2, _ in entity_pairs:
            result.entity_pairs.add((n1.name.lower(), n2.name.lower()))

        relationship_pairs = [
            (n1, n2)
            for (n1, n2), score in sims.items()
            if n1.kind == "relationship" and score >= self.merge_threshold
        ]
        for n1, n2 in relationship_pairs:
            result.relationship_pairs.add((n1.name.lower(), n2.name.lower()))

        # Transitive merge groups: DIKE's abstracted schema merges all
        # entities connected by over-threshold similarity into one
        # integrated entity — the behaviour that loses context
        # dependence (canonical example 6).
        groups: List[Set[str]] = []
        for n1, n2, _ in entity_pairs:
            names = {f"1:{n1.name.lower()}", f"2:{n2.name.lower()}"}
            touching = [g for g in groups if g & names]
            merged: Set[str] = set(names)
            for g in touching:
                merged |= g
                groups.remove(g)
            groups.append(merged)
        result.merged_entity_groups = [
            {name.split(":", 1)[1] for name in group} for group in groups
        ]

        # Attributes merge when over threshold and their owners merged —
        # directly, or one relationship hop away (DIKE's type-conflict
        # resolution can absorb a related entity's attributes into the
        # merged entity, which is how it handles nesting differences).
        links1, links2 = entity_links

        def owners_compatible(owner1: str, owner2: str) -> bool:
            owner1, owner2 = owner1.lower(), owner2.lower()
            if (owner1, owner2) in result.entity_pairs:
                return True
            for linked in links1.get(owner1, ()):  # owner1's neighbors
                if (linked, owner2) in result.entity_pairs:
                    return True
            for linked in links2.get(owner2, ()):  # owner2's neighbors
                if (owner1, linked) in result.entity_pairs:
                    return True
            return False

        for (n1, n2), score in sims.items():
            if n1.kind != "attribute" or score < self.merge_threshold:
                continue
            if owners_compatible(n1.owner, n2.owner):
                result.attribute_pairs.add(
                    (n1.label().lower(), n2.label().lower())
                )
        return result
