"""TranScm-style top-down structural matcher (reference [10]).

Section 3: "The matching is done top-down with the rules at
higher-level nodes typically requiring the matching of descendants.
This top-down approach performs well only when the top-level structures
of the two schemas are quite similar." Section 6 argues Cupid's
bottom-up post-order is "more conservative and is able to match
moderately varied schema structures. A top-down approach is optimistic
and will perform poorly if the two schemas differ considerably at the
top level."

This baseline exists to quantify that claim (benchmark E11): starting
at the roots, children are paired greedily by linguistic similarity,
and recursion *only* descends into child pairs whose similarity clears
a gate — a top-level mismatch prunes the whole subtree, taking every
would-be descendant correspondence with it.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.matcher import LinguisticMatcher
from repro.linguistic.thesaurus import Thesaurus
from repro.mapping.mapping import Mapping, MappingElement
from repro.model.datatypes import default_compatibility_table
from repro.model.schema import Schema
from repro.tree.construction import construct_schema_tree
from repro.tree.schema_tree import SchemaTreeNode


class TopDownMatcher:
    """Greedy root-to-leaves matcher with a descend gate."""

    def __init__(
        self,
        thesaurus: Optional[Thesaurus] = None,
        config: Optional[CupidConfig] = None,
        descend_threshold: float = 0.5,
    ) -> None:
        self.thesaurus = thesaurus if thesaurus is not None else builtin_thesaurus()
        self.config = config or DEFAULT_CONFIG
        self.descend_threshold = descend_threshold
        self.compat = default_compatibility_table()

    def match(self, source: Schema, target: Schema) -> Mapping:
        lsim = LinguisticMatcher(self.thesaurus, self.config).compute(
            source, target
        )
        source_tree = construct_schema_tree(source)
        target_tree = construct_schema_tree(target)
        mapping = Mapping(source.name, target.name)

        def pair_score(s: SchemaTreeNode, t: SchemaTreeNode) -> float:
            linguistic = lsim.get(s.element, t.element)
            if s.is_leaf and t.is_leaf:
                type_part = 2.0 * self.compat.compatibility(
                    s.data_type, t.data_type
                )
                return 0.7 * linguistic + 0.3 * type_part
            return linguistic

        def descend(s: SchemaTreeNode, t: SchemaTreeNode) -> None:
            # Greedy 1:1 pairing of the two child lists by score.
            scored: List[Tuple[float, int, int]] = []
            for i, sc in enumerate(s.children):
                for j, tc in enumerate(t.children):
                    scored.append((pair_score(sc, tc), i, j))
            scored.sort(key=lambda item: (-item[0], item[1], item[2]))
            used_s: Set[int] = set()
            used_t: Set[int] = set()
            for score, i, j in scored:
                if i in used_s or j in used_t:
                    continue
                if score < self.descend_threshold:
                    # The optimistic cut: a weak pair is abandoned and
                    # so is everything beneath it.
                    continue
                used_s.add(i)
                used_t.add(j)
                sc, tc = s.children[i], t.children[j]
                mapping.add(
                    MappingElement(
                        source_path=sc.path(),
                        target_path=tc.path(),
                        similarity=min(1.0, score),
                        source_node=sc,
                        target_node=tc,
                    )
                )
                descend(sc, tc)

        descend(source_tree.root, target_tree.root)
        return mapping

    def as_pipeline(self):
        """This baseline as a :class:`repro.pipeline.MatchPipeline`.

        Satisfies the same ``Matcher`` protocol as ``CupidMatcher``
        (``match`` returning a ``CupidResult``-compatible object), so
        the evaluation harness and CLI can drive it interchangeably.
        """
        from repro.pipeline.adapters import baseline_pipeline

        return baseline_pipeline(
            self, thesaurus=self.thesaurus, config=self.config
        )
