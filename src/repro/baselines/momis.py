"""MOMIS/ARTEMIS-style schema matcher (Bergamaschi, Castano et al. [1,3]).

As summarized in Section 9 of the Cupid paper:

* accepts schemas as class definitions;
* "the WordNet system is used to obtain name affinities among schema
  elements. For each element name, the user chooses an appropriate word
  form ... and narrows down its possible meanings" — i.e. name affinity
  comes from explicit lexical relationships between *whole names*, not
  from tokenization (MOMIS does no normalization);
* "ARTEMIS ... computes the structural affinity for all pairs of
  classes based on their name affinity and their respective class
  attributes";
* "the classes of the input schemas are clustered into global classes
  of the mediated schema, based on their name and structural
  affinities. The attributes of clustered classes are fused, if
  possible."

Reproduced signatures (checked by the Table 2 benchmark): identical
names cluster once senses are chosen; renamed attributes need explicit
user synonyms; nesting differences break the non-top clusters
(example 5 = N); shared types yield separate clusters with no
context-dependent mapping (example 6 = N); attribute fusion happens
only within a cluster, after clustering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.linguistic.thesaurus import Thesaurus
from repro.model.datatypes import (
    TypeCompatibilityTable,
    default_compatibility_table,
)
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema


@dataclass(frozen=True)
class _ClassRef:
    """A class of one input schema, with its atomic attributes."""

    schema_index: int  # 1 or 2
    name: str
    attributes: Tuple[Tuple[str, object], ...]  # (name, data type)

    def qualified(self) -> str:
        return f"S{self.schema_index}.{self.name}"


@dataclass
class ArtemisCluster:
    """A global class: classes clustered together plus fused attributes."""

    classes: Set[str] = field(default_factory=set)  # qualified names
    fused_attributes: Set[Tuple[str, str]] = field(default_factory=set)

    def contains(self, qualified_name: str) -> bool:
        return qualified_name.lower() in {c.lower() for c in self.classes}


@dataclass
class MomisResult:
    clusters: List[ArtemisCluster]
    affinities: Dict[Tuple[str, str], float]

    def clustered_together(self, name1: str, name2: str) -> bool:
        """True if S1.name1 and S2.name2 share a cluster."""
        q1, q2 = f"S1.{name1}".lower(), f"S2.{name2}".lower()
        for cluster in self.clusters:
            lowered = {c.lower() for c in cluster.classes}
            if q1 in lowered and q2 in lowered:
                return True
        return False

    def attributes_fused(self, qual1: str, qual2: str) -> bool:
        """True if ``Class.attr`` of schema 1 fused with one of schema 2."""
        pair = (qual1.lower(), qual2.lower())
        for cluster in self.clusters:
            lowered = {
                (a.lower(), b.lower()) for a, b in cluster.fused_attributes
            }
            if pair in lowered:
                return True
        return False


class MomisMatcher:
    """Name-affinity + structural-affinity class clustering.

    ``sense_annotations`` simulates the WordNet sense-choosing step:
    explicit (name, name) → affinity pairs the user has confirmed.
    Without an annotation, only identical names have affinity — the
    behaviour the paper observes ("DIKE and MOMIS expect identical
    names for matching schema elements in the absence of linguistic
    input").
    """

    def __init__(
        self,
        sense_annotations: Optional[Iterable[Tuple[str, str, float]]] = None,
        thesaurus: Optional[Thesaurus] = None,
        name_weight: float = 0.5,
        cluster_threshold: float = 0.6,
        attribute_threshold: float = 0.5,
        compat: Optional[TypeCompatibilityTable] = None,
    ) -> None:
        self._annotations: Dict[Tuple[str, str], float] = {}
        for a, b, affinity in sense_annotations or []:
            self.add_annotation(a, b, affinity)
        #: When a thesaurus is supplied, it stands in for WordNet with
        #: the senses already chosen; whole-name lookups only.
        self.thesaurus = thesaurus
        self.name_weight = name_weight
        self.cluster_threshold = cluster_threshold
        self.attribute_threshold = attribute_threshold
        self.compat = compat or default_compatibility_table()

    def add_annotation(self, a: str, b: str, affinity: float) -> None:
        if not 0.0 <= affinity <= 1.0:
            raise ValueError(f"affinity {affinity} outside [0, 1]")
        key = (a.lower(), b.lower())
        self._annotations[key] = affinity
        self._annotations[(key[1], key[0])] = affinity

    # ------------------------------------------------------------------

    def match(self, schema1: Schema, schema2: Schema) -> MomisResult:
        classes = self._classes(schema1, 1) + self._classes(schema2, 2)
        affinities: Dict[Tuple[str, str], float] = {}
        for i, c1 in enumerate(classes):
            for c2 in classes[i + 1:]:
                if c1.schema_index == c2.schema_index:
                    continue
                affinity = self._global_affinity(c1, c2)
                affinities[(c1.qualified(), c2.qualified())] = affinity

        clusters = self._cluster(classes, affinities)
        for cluster in clusters:
            self._fuse_attributes(cluster, classes)
        return MomisResult(clusters=clusters, affinities=affinities)

    # ------------------------------------------------------------------

    def _classes(self, schema: Schema, index: int) -> List[_ClassRef]:
        """Extract class-like elements: inner nodes with atomic children."""
        refs: List[_ClassRef] = []
        for element in schema.iter_containment_preorder():
            if element.not_instantiated:
                continue
            children = schema.contained_children(element)
            atomic = [c for c in children if c.is_atomic and not c.not_instantiated]
            # Shared types referenced via IsDerivedFrom also count as
            # classes (MOMIS sees every class definition).
            if not atomic and element.kind is not ElementKind.CLASS:
                continue
            refs.append(
                _ClassRef(
                    schema_index=index,
                    name=element.name,
                    attributes=tuple(
                        (c.name, c.data_type) for c in atomic
                    ),
                )
            )
        return refs

    def _name_affinity(self, name1: str, name2: str) -> float:
        if name1.lower() == name2.lower():
            return 1.0
        annotated = self._annotations.get((name1.lower(), name2.lower()))
        if annotated is not None:
            return annotated
        if self.thesaurus is not None:
            related = self.thesaurus.relatedness(name1, name2)
            if related is not None:
                return related
        return 0.0

    def _structural_affinity(self, c1: _ClassRef, c2: _ClassRef) -> float:
        """Best-pairing attribute affinity, normalized by the larger set."""
        if not c1.attributes or not c2.attributes:
            return 0.0
        scored = []
        for i, (name1, type1) in enumerate(c1.attributes):
            for j, (name2, type2) in enumerate(c2.attributes):
                name_aff = self._name_affinity(name1, name2)
                type_aff = 2.0 * self.compat.compatibility(type1, type2)
                scored.append((0.8 * name_aff + 0.2 * type_aff, i, j))
        scored.sort(reverse=True)
        used1: Set[int] = set()
        used2: Set[int] = set()
        total = 0.0
        for score, i, j in scored:
            if i in used1 or j in used2:
                continue
            used1.add(i)
            used2.add(j)
            total += score
        return total / max(len(c1.attributes), len(c2.attributes))

    def _global_affinity(self, c1: _ClassRef, c2: _ClassRef) -> float:
        name_affinity = self._name_affinity(c1.name, c2.name)
        structural_affinity = self._structural_affinity(c1, c2)
        return (
            self.name_weight * name_affinity
            + (1.0 - self.name_weight) * structural_affinity
        )

    def _cluster(
        self,
        classes: List[_ClassRef],
        affinities: Dict[Tuple[str, str], float],
    ) -> List[ArtemisCluster]:
        """Single-linkage agglomerative clustering over the threshold."""
        parents: Dict[str, str] = {c.qualified(): c.qualified() for c in classes}

        def find(x: str) -> str:
            while parents[x] != x:
                parents[x] = parents[parents[x]]
                x = parents[x]
            return x

        def union(a: str, b: str) -> None:
            parents[find(a)] = find(b)

        for (q1, q2), affinity in affinities.items():
            if affinity >= self.cluster_threshold:
                union(q1, q2)

        grouped: Dict[str, ArtemisCluster] = {}
        for c in classes:
            root = find(c.qualified())
            grouped.setdefault(root, ArtemisCluster()).classes.add(
                c.qualified()
            )
        return list(grouped.values())

    def _fuse_attributes(
        self, cluster: ArtemisCluster, classes: List[_ClassRef]
    ) -> None:
        """Fuse attributes of clustered classes by best name affinity.

        "Since attribute matching is done only within global clusters
        (after the clusters have been decided)" — the step that caused
        MOMIS's itemCount/Quantity mismatch in the paper's CIDX-Excel
        run.
        """
        members = [c for c in classes if cluster.contains(c.qualified())]
        schema1 = [c for c in members if c.schema_index == 1]
        schema2 = [c for c in members if c.schema_index == 2]
        candidates = []
        for c1 in schema1:
            for c2 in schema2:
                for name1, type1 in c1.attributes:
                    for name2, type2 in c2.attributes:
                        affinity = (
                            0.8 * self._name_affinity(name1, name2)
                            + 0.2 * 2.0 * self.compat.compatibility(type1, type2)
                        )
                        if affinity >= self.attribute_threshold:
                            candidates.append(
                                (
                                    affinity,
                                    f"S1.{c1.name}.{name1}",
                                    f"S2.{c2.name}.{name2}",
                                )
                            )
        candidates.sort(reverse=True)
        used1: Set[str] = set()
        used2: Set[str] = set()
        for _, qual1, qual2 in candidates:
            if qual1 in used1 or qual2 in used2:
                continue
            used1.add(qual1)
            used2.add(qual2)
            cluster.fused_attributes.add(
                (qual1.split(".", 1)[1], qual2.split(".", 1)[1])
            )
