"""Command-line interface.

The paper positions Match as "an independent component" usable from
many tools; the CLI is the smallest such tool:

.. code-block:: console

    $ python -m repro match warehouse.sql star.sql --format json
    $ python -m repro match po_cidx.xml po_excel.xml --one-to-one
    $ python -m repro show warehouse.sql

Schema formats are detected from the file extension: ``.sql`` (mini
DDL), ``.xml`` (the XML schema dialect), ``.oo`` (class-definition
DSL), ``.json`` (serialized schema).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.config import CupidConfig
from repro.core.cupid import CupidMatcher
from repro.core.tuning import auto_config
from repro.exceptions import ReproError
from repro.io.dtd import parse_dtd
from repro.io.json_io import mapping_to_dict, schema_from_json
from repro.io.oo_model import parse_oo_model
from repro.io.sql_ddl import parse_sql_ddl
from repro.io.xml_schema import parse_xml_schema
from repro.linguistic.thesaurus import empty_thesaurus
from repro.mapping.assignment import greedy_one_to_one
from repro.model.schema import Schema
from repro.tree.construction import construct_schema_tree


def load_schema(path: str) -> Schema:
    """Load a schema file, dispatching on its extension."""
    name = os.path.splitext(os.path.basename(path))[0]
    extension = os.path.splitext(path)[1].lower()
    with open(path) as handle:
        text = handle.read()
    if extension == ".sql":
        return parse_sql_ddl(text, name)
    if extension == ".xml":
        return parse_xml_schema(text)
    if extension == ".dtd":
        return parse_dtd(text, name)
    if extension == ".oo":
        return parse_oo_model(text, name)
    if extension == ".json":
        return schema_from_json(text)
    raise ReproError(
        f"cannot infer schema format from extension {extension!r} "
        "(expected .sql, .xml, .dtd, .oo, or .json)"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cupid generic schema matching (VLDB 2001 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    match = commands.add_parser(
        "match", help="match two schema files and print the mapping"
    )
    match.add_argument("source", help="source schema file")
    match.add_argument("target", help="target schema file")
    match.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    match.add_argument(
        "--one-to-one", action="store_true",
        help="extract a 1:1 mapping (greedy) instead of the naive 1:n",
    )
    match.add_argument(
        "--include-nonleaf", action="store_true",
        help="also print non-leaf (structural) correspondences",
    )
    match.add_argument(
        "--no-thesaurus", action="store_true",
        help="run without any linguistic knowledge (ablation)",
    )
    match.add_argument(
        "--auto-tune", action="store_true",
        help="derive cinc / pruning ratio from the schema shapes",
    )
    match.add_argument(
        "--cinc", type=float, default=None,
        help="override the structural increase factor (Table 1: 1.2)",
    )
    match.add_argument(
        "--min-similarity", type=float, default=None,
        help="only print correspondences at or above this wsim",
    )
    match.add_argument(
        "--engine", choices=("dense", "reference"), default=None,
        help="matching engine (default: dense; reference is the "
             "dict-based correctness oracle)",
    )
    match.add_argument(
        "--stats", action="store_true",
        help="dump run counters (compared/pruned/scaled pairs, cache "
             "hit rates, per-phase timings) to stderr",
    )

    show = commands.add_parser(
        "show", help="print a schema file as its expanded schema tree"
    )
    show.add_argument("schema", help="schema file")
    return parser


def _command_match(args: argparse.Namespace) -> int:
    source = load_schema(args.source)
    target = load_schema(args.target)

    config = CupidConfig()
    if args.auto_tune:
        config = auto_config(source, target, config)
    if args.cinc is not None:
        config = config.replace(cinc=args.cinc)
    if args.engine is not None:
        config = config.replace(engine=args.engine)

    thesaurus = empty_thesaurus() if args.no_thesaurus else None
    matcher = CupidMatcher(thesaurus=thesaurus, config=config)
    result = matcher.match(source, target)

    mapping = result.leaf_mapping
    if args.one_to_one:
        mapping = greedy_one_to_one(mapping)

    elements = list(mapping)
    if args.include_nonleaf:
        elements += list(result.nonleaf_mapping)
    if args.min_similarity is not None:
        elements = [
            e for e in elements if e.similarity >= args.min_similarity
        ]
    elements.sort(key=lambda e: (-e.similarity, e.path_pair()))

    if args.format == "json":
        from repro.mapping.mapping import Mapping

        out = Mapping(source.name, target.name, elements)
        print(json.dumps(mapping_to_dict(out), indent=2))
    else:
        print(f"# {source.name} -> {target.name}: "
              f"{len(elements)} correspondences")
        for element in elements:
            print(element)
    if args.stats:
        print("# run stats", file=sys.stderr)
        for key, value in matcher.run_stats(result).items():
            if isinstance(value, float):
                value = f"{value:.4f}"
            print(f"#   {key}: {value}", file=sys.stderr)
    return 0


def _command_show(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    tree = construct_schema_tree(schema)
    for node in tree.nodes():
        depth = len(node.path()) - 1
        data_type = f": {node.data_type.value}" if node.data_type else ""
        optional = " (optional)" if node.optional else ""
        print(f"{'  ' * depth}{node.name}{data_type}{optional}")
    refints = schema.refint_elements()
    if refints:
        print(f"# {len(refints)} referential constraint(s):")
        for refint in refints:
            sources = ", ".join(
                s.name for s in schema.aggregated_members(refint)
            )
            print(f"#   {refint.name}: ({sources})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "match":
            return _command_match(args)
        return _command_show(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
