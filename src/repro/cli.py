"""Command-line interface.

The paper positions Match as "an independent component" usable from
many tools; the CLI is the smallest such tool, now speaking the
pipeline/session API:

.. code-block:: console

    $ python -m repro match warehouse.sql star.sql --format json
    $ python -m repro match po_cidx.xml po_excel.xml --one-to-one
    $ python -m repro match a.sql b.sql --pipeline mapping=one-to-one
    $ python -m repro match-many mediated.json src1.sql src2.xml src3.oo
    $ python -m repro index schemas/ --repo corpus.repo
    $ python -m repro search query.sql --repo corpus.repo -k 3
    $ python -m repro show warehouse.sql

``match-many`` matches one source schema against N targets through a
:class:`repro.MatchSession`, so the source's preparation (and the
linguistic memo) is shared across all N matches. ``--pipeline`` swaps
registered stage variants into the run (``linguistic=off``,
``structural=no-context``, ``mapping=one-to-one``,
``mapping=hungarian``).

``index`` ingests schema files into a persistent
:class:`repro.SchemaRepository` (prepared-schema artifacts serialized
once, vocabulary index updated incrementally); ``search`` ranks the
corpus against a query schema and runs the full pipeline only on the
top ``--candidates`` schemas.

Schema formats are detected from the file extension: ``.sql`` (mini
DDL), ``.xml`` (the XML schema dialect), ``.dtd``, ``.oo``
(class-definition DSL), ``.json`` (serialized schema).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.config import CupidConfig
from repro.core.tuning import auto_config
from repro.exceptions import ReproError
from repro.io.dtd import parse_dtd
from repro.io.json_io import mapping_to_dict, schema_from_json
from repro.io.oo_model import parse_oo_model
from repro.io.sql_ddl import parse_sql_ddl
from repro.io.xml_schema import parse_xml_schema
from repro.linguistic.thesaurus import empty_thesaurus
from repro.mapping.assignment import greedy_one_to_one
from repro.mapping.mapping import Mapping
from repro.model.schema import Schema
from repro.obs import trace
from repro.pipeline import CupidResult, MatchPipeline, MatchSession
from repro.repository import SchemaRepository
from repro.serving.metrics import search_latency_schema
from repro.tree.construction import construct_schema_tree

#: Extensions ``load_schema`` understands (also what ``index`` picks
#: up when handed a directory).
SCHEMA_EXTENSIONS = (".sql", ".xml", ".dtd", ".oo", ".json")


def load_schema(path: str) -> Schema:
    """Load a schema file, dispatching on its extension."""
    name = os.path.splitext(os.path.basename(path))[0]
    extension = os.path.splitext(path)[1].lower()
    with open(path) as handle:
        text = handle.read()
    if extension == ".sql":
        return parse_sql_ddl(text, name)
    if extension == ".xml":
        return parse_xml_schema(text)
    if extension == ".dtd":
        return parse_dtd(text, name)
    if extension == ".oo":
        return parse_oo_model(text, name)
    if extension == ".json":
        return schema_from_json(text)
    raise ReproError(
        f"cannot infer schema format from extension {extension!r} "
        "(expected .sql, .xml, .dtd, .oo, or .json)"
    )


def parse_pipeline_spec(spec: str) -> List[Tuple[str, str]]:
    """Parse ``--pipeline`` overrides: ``stage=variant[,stage=variant]``."""
    overrides: List[Tuple[str, str]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ReproError(
                f"bad --pipeline entry {part!r} (expected stage=variant, "
                "e.g. mapping=one-to-one)"
            )
        stage, _, variant = part.partition("=")
        overrides.append((stage.strip(), variant.strip()))
    return overrides


def _add_match_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``match`` and ``match-many``."""
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--one-to-one", action="store_true",
        help="extract a 1:1 mapping (greedy) instead of the naive 1:n",
    )
    parser.add_argument(
        "--no-thesaurus", action="store_true",
        help="run without any linguistic knowledge (ablation)",
    )
    parser.add_argument(
        "--cinc", type=float, default=None,
        help="override the structural increase factor (Table 1: 1.2)",
    )
    parser.add_argument(
        "--min-similarity", type=float, default=None,
        help="only print correspondences at or above this wsim",
    )
    parser.add_argument(
        "--engine", choices=("dense", "reference"), default=None,
        help="matching engine (default: dense; reference is the "
             "dict-based correctness oracle)",
    )
    parser.add_argument(
        "--store", choices=("flat", "blocked", "auto"), default=None,
        help="dense-engine similarity store (default: auto — picks "
             "per pair by leaf count; flat is fastest for small "
             "pairs, blocked allocates tiles lazily and bounds peak "
             "memory by the live tiles for very large schemas)",
    )
    parser.add_argument(
        "--block-size", type=int, default=None, metavar="N",
        help="tile edge length for --store blocked (default: auto)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for tile-sharded TreeMatch scans "
             "(default: 1 = in-process; 0 = one per CPU core; pairs "
             "below the parallel leaf threshold stay serial either "
             "way; results are bit-identical at any setting)",
    )
    parser.add_argument(
        "--pipeline", default=None, metavar="STAGE=VARIANT[,...]",
        help="substitute registered stage variants (linguistic=off, "
             "structural=no-context, mapping=one-to-one, "
             "mapping=hungarian)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="dump run counters (compared/pruned/scaled pairs, cache "
             "hit rates, per-phase timings) to stderr",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write this run's span tree (pipeline stages, TreeMatch "
             "passes, sharded workers) as Chrome trace-event JSON, "
             "loadable in chrome://tracing or Perfetto",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cupid generic schema matching (VLDB 2001 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    match = commands.add_parser(
        "match", help="match two schema files and print the mapping"
    )
    match.add_argument("source", help="source schema file")
    match.add_argument("target", help="target schema file")
    match.add_argument(
        "--include-nonleaf", action="store_true",
        help="also print non-leaf (structural) correspondences",
    )
    match.add_argument(
        "--auto-tune", action="store_true",
        help="derive cinc / pruning ratio from the schema shapes",
    )
    _add_match_options(match)

    many = commands.add_parser(
        "match-many",
        help="match one source schema against many targets through a "
             "shared session (one prepare, N matches)",
    )
    many.add_argument("source", help="source schema file")
    many.add_argument("targets", nargs="+", help="target schema files")
    _add_match_options(many)

    index = commands.add_parser(
        "index",
        help="ingest schema files into a persistent schema repository "
             "(prepared artifacts + vocabulary index, paid once ever)",
    )
    index.add_argument(
        "paths", nargs="+",
        help="schema files and/or directories to ingest (directories "
             "are scanned for known schema extensions)",
    )
    index.add_argument(
        "--repo", required=True, metavar="DIR",
        help="repository directory (created if absent)",
    )
    index.add_argument(
        "--stats", action="store_true",
        help="dump repository cache counters to stderr",
    )

    search = commands.add_parser(
        "search",
        help="rank a repository's schemas against a query schema; the "
             "full pipeline runs only on the top --candidates",
    )
    search.add_argument("schema", help="query schema file")
    search.add_argument(
        "--repo", required=True, metavar="DIR",
        help="repository directory (must exist; see 'repro index')",
    )
    search.add_argument(
        "-k", type=int, default=5, dest="k",
        help="number of ranked matches to return (default: 5)",
    )
    search.add_argument(
        "--candidates", type=int, default=None, metavar="C",
        help="run the matcher only on the C best index candidates "
             "(default: match the whole corpus)",
    )
    search.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    search.add_argument(
        "--one-to-one", action="store_true",
        help="extract 1:1 mappings (greedy) in the reported matches",
    )
    search.add_argument(
        "--min-similarity", type=float, default=None,
        help="only report correspondences at or above this wsim",
    )
    search.add_argument(
        "--stats", action="store_true",
        help="dump search + repository cache counters to stderr",
    )
    search.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write the search's span tree (index ranking, candidate "
             "matches, sharded workers) as Chrome trace-event JSON",
    )

    serve = commands.add_parser(
        "serve",
        help="run the HTTP/JSON match daemon over a repository "
             "(endpoints: /search /match /ingest /health /stats)",
    )
    serve.add_argument(
        "--repo", required=True, metavar="DIR",
        help="repository directory (created if absent)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port; 0 picks an ephemeral port (default: 8765)",
    )
    serve.add_argument(
        "--sessions", type=int, default=None, metavar="N",
        help="session-pool width; 0 = one per CPU core "
             "(default: config.serving_sessions)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="max admitted-but-unfinished requests before 503 "
             "(default: config.serving_queue_depth)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="default per-request deadline in seconds; 0 disables "
             "(default: config.serving_timeout_s)",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log each HTTP request to stderr",
    )

    verify = commands.add_parser(
        "verify",
        help="audit a repository's on-disk integrity (segment "
             "checksums, artifact fingerprints); non-zero exit on "
             "any problem",
    )
    verify.add_argument(
        "--repo", required=True, metavar="DIR",
        help="repository directory to audit",
    )
    verify.add_argument(
        "--quick", action="store_true",
        help="segment/artifact presence audit only; skip the "
             "per-schema fingerprint re-verification",
    )

    show = commands.add_parser(
        "show", help="print a schema file as its expanded schema tree"
    )
    show.add_argument("schema", help="schema file")
    return parser


def _config_from_args(
    args: argparse.Namespace,
    source: Optional[Schema] = None,
    target: Optional[Schema] = None,
) -> CupidConfig:
    config = CupidConfig()
    if getattr(args, "auto_tune", False) and source is not None:
        config = auto_config(source, target, config)
    if args.cinc is not None:
        config = config.replace(cinc=args.cinc)
    if args.engine is not None:
        config = config.replace(engine=args.engine)
    if args.store is not None:
        config = config.replace(store=args.store)
    if args.block_size is not None:
        config = config.replace(block_size=args.block_size)
    if getattr(args, "workers", None) is not None:
        config = config.replace(workers=args.workers)
    return config


def _pipeline_from_args(
    args: argparse.Namespace, config: CupidConfig
) -> MatchPipeline:
    thesaurus = empty_thesaurus() if args.no_thesaurus else None
    pipeline = MatchPipeline.default(thesaurus=thesaurus, config=config)
    if args.pipeline:
        for stage, variant in parse_pipeline_spec(args.pipeline):
            pipeline = pipeline.with_variant(stage, variant)
    return pipeline


def _selected_elements(
    result: CupidResult, args: argparse.Namespace, include_nonleaf: bool
) -> List:
    mapping = result.leaf_mapping
    if args.one_to_one:
        mapping = greedy_one_to_one(mapping)
    elements = list(mapping)
    if include_nonleaf:
        elements += list(result.nonleaf_mapping)
    if args.min_similarity is not None:
        elements = [
            e for e in elements if e.similarity >= args.min_similarity
        ]
    elements.sort(key=lambda e: (-e.similarity, e.path_pair()))
    return elements


def _timings_ms(result: CupidResult) -> Dict[str, float]:
    return {
        phase: round(seconds * 1000.0, 3)
        for phase, seconds in result.timings.items()
    }


def _session_stats(session: MatchSession) -> Dict[str, object]:
    """Cache counters plus the session-cumulative linguistic memo."""
    stats: Dict[str, object] = dict(session.cache_info())
    memo = session.pipeline.linguistic.memo
    if memo is not None:
        stats.update(memo.stats())
    return stats


def _print_stats(stats: Dict[str, object], header: str) -> None:
    print(f"# {header}", file=sys.stderr)
    for key, value in stats.items():
        if isinstance(value, float):
            value = f"{value:.4f}"
        print(f"#   {key}: {value}", file=sys.stderr)


def _command_match(args: argparse.Namespace) -> int:
    source = load_schema(args.source)
    target = load_schema(args.target)

    config = _config_from_args(args, source, target)
    pipeline = _pipeline_from_args(args, config)
    result = pipeline.run(source, target)

    elements = _selected_elements(args=args, result=result,
                                  include_nonleaf=args.include_nonleaf)

    if args.format == "json":
        out = Mapping(source.name, target.name, elements)
        payload = mapping_to_dict(out)
        # Per-phase timings and engine counters ride along in JSON so
        # downstream tooling need not scrape the --stats text dump.
        payload["timings_ms"] = _timings_ms(result)
        payload["stats"] = pipeline.run_stats(result)
        print(json.dumps(payload, indent=2))
    else:
        print(f"# {source.name} -> {target.name}: "
              f"{len(elements)} correspondences")
        for element in elements:
            print(element)
    if args.stats:
        _print_stats(pipeline.run_stats(result), "run stats")
    return 0


def _command_match_many(args: argparse.Namespace) -> int:
    source = load_schema(args.source)
    targets = [load_schema(path) for path in args.targets]

    config = _config_from_args(args)
    session = MatchSession(pipeline=_pipeline_from_args(args, config))
    results = session.match_many(source, targets)

    if args.format == "json":
        matches = []
        for target, result in zip(targets, results):
            elements = _selected_elements(
                args=args, result=result, include_nonleaf=False
            )
            payload = mapping_to_dict(
                Mapping(source.name, target.name, elements)
            )
            payload["timings_ms"] = _timings_ms(result)
            # Memo counters are session-cumulative, not per match, so
            # they are reported once in the session block below.
            payload["stats"] = session.pipeline.run_stats(
                result, include_memo=False
            )
            matches.append(payload)
        print(json.dumps(
            {
                "source_schema": source.name,
                "matches": matches,
                "session": _session_stats(session),
            },
            indent=2,
        ))
    else:
        for target, result in zip(targets, results):
            elements = _selected_elements(
                args=args, result=result, include_nonleaf=False
            )
            print(f"# {source.name} -> {target.name}: "
                  f"{len(elements)} correspondences")
            for element in elements:
                print(element)
    if args.stats:
        _print_stats(_session_stats(session), "session cache")
        for target, result in zip(targets, results):
            _print_stats(
                session.pipeline.run_stats(result, include_memo=False),
                f"run stats ({source.name} -> {target.name})",
            )
    return 0


def _collect_schema_files(paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted schema-file list."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()  # deterministic traversal across filesystems
                for name in sorted(files):
                    if os.path.splitext(name)[1].lower() in SCHEMA_EXTENSIONS:
                        collected.append(os.path.join(root, name))
        else:
            collected.append(path)
    return collected


def _command_index(args: argparse.Namespace) -> int:
    files = _collect_schema_files(args.paths)
    if not files:
        raise ReproError(
            "no schema files found under the given paths "
            f"(recognized extensions: {', '.join(SCHEMA_EXTENSIONS)})"
        )
    with SchemaRepository(args.repo) as repo:
        for path in files:
            try:
                schema = load_schema(path)
            except ReproError as exc:
                raise ReproError(f"{path}: {exc}") from exc
            schema_id = repo.ingest(schema)
            print(f"{schema_id}  <-  {path}")
        print(
            f"# {len(files)} file(s) ingested; repository now holds "
            f"{len(repo)} schema(s) at {args.repo}"
        )
        if args.stats:
            _print_stats(repo.cache_info(), "repository cache")
    return 0


def _command_search(args: argparse.Namespace) -> int:
    query = load_schema(args.schema)
    with SchemaRepository.open(args.repo) as repo:
        start = time.perf_counter()
        search = repo.search(
            query, k=args.k, candidates=args.candidates
        )
        elapsed = time.perf_counter() - start
        if args.format == "json":
            matches = []
            for match in search:
                elements = _selected_elements(
                    args=args, result=match.result, include_nonleaf=False
                )
                payload = mapping_to_dict(Mapping(
                    query.name, match.schema_name, elements
                ))
                payload["schema_id"] = match.schema_id
                payload["score"] = round(match.score, 6)
                payload["timings_ms"] = _timings_ms(match.result)
                matches.append(payload)
            print(json.dumps(
                {
                    "query_schema": search.query_name,
                    "matches": matches,
                    "stats": search.stats,
                    "latency_ms": search_latency_schema(
                        search.stats, elapsed
                    ),
                    "repository": repo.cache_info(),
                },
                indent=2,
            ))
        else:
            stats = search.stats
            print(
                f"# {search.query_name} vs {args.repo}: "
                f"{stats['corpus_size']} schemas, "
                f"{stats['candidates_considered']} matched, "
                f"{stats['candidates_pruned']} pruned by the index"
            )
            for rank, match in enumerate(search, start=1):
                elements = _selected_elements(
                    args=args, result=match.result, include_nonleaf=False
                )
                print(
                    f"{rank}. {match.schema_name} [{match.schema_id}] "
                    f"score {match.score:.4f} "
                    f"({len(elements)} correspondences)"
                )
        if args.stats:
            _print_stats(search.stats, "search stats")
            _print_stats(repo.cache_info(), "repository cache")
            _print_stats(repo.recovery_info(), "recovery")
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    # Deliberately no context manager: verify is a pure audit and must
    # not rewrite (and thereby silently heal) the layout it inspects.
    problems: List[str] = []
    repo = SchemaRepository.open(args.repo)
    problems.extend(repo.audit_segments())
    checked = 0
    if not args.quick:
        for schema_id in repo.schema_ids():
            try:
                repo.verify(schema_id)
            except ReproError as exc:
                problems.append(f"artifact {schema_id}: {exc}")
            checked += 1
    recovery = repo.recovery_info()
    for problem in problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    mode = "quick (segments + presence)" if args.quick else "full"
    print(
        f"# verify {args.repo}: {mode} audit, {checked} artifact(s) "
        f"re-verified, {len(problems)} problem(s)"
    )
    for key in ("segment_fallbacks", "recovered_ingests",
                "rolled_back_ingests", "pending_intents"):
        if recovery.get(key):
            print(f"#   {key}: {recovery[key]}")
    return 1 if problems else 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here so plain match/search invocations never pay for
    # the serving stack.
    from repro.serving import MatchService
    from repro.serving.http import serve as run_daemon

    repo = SchemaRepository(args.repo)
    service = MatchService(
        repo,
        sessions=args.sessions,
        queue_depth=args.queue_depth,
        timeout_s=args.timeout,
    )

    def announce(server) -> None:
        health = service.health()
        print(
            f"serving {args.repo} on http://{args.host}:{server.port} "
            f"({health['schemas']} schemas, {health['sessions']} "
            f"sessions, queue depth {health['queue_depth']})",
            file=sys.stderr,
            flush=True,
        )

    run_daemon(
        service,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        ready=announce,
    )
    return 0


def _command_show(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    tree = construct_schema_tree(schema)
    for node in tree.nodes():
        depth = len(node.path()) - 1
        data_type = f": {node.data_type.value}" if node.data_type else ""
        optional = " (optional)" if node.optional else ""
        print(f"{'  ' * depth}{node.name}{data_type}{optional}")
    refints = schema.refint_elements()
    if refints:
        print(f"# {len(refints)} referential constraint(s):")
        for refint in refints:
            sources = ", ".join(
                s.name for s in schema.aggregated_members(refint)
            )
            print(f"#   {refint.name}: ({sources})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        trace.arm()
    try:
        if args.command == "match":
            return _command_match(args)
        if args.command == "match-many":
            return _command_match_many(args)
        if args.command == "index":
            return _command_index(args)
        if args.command == "search":
            return _command_search(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "verify":
            return _command_verify(args)
        return _command_show(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace_path:
            # Written even after an error: a partial trace of a failed
            # run is exactly when a trace is most wanted.
            events = trace.write_chrome_trace(trace_path)
            print(
                f"# trace: {events} event(s) -> {trace_path}",
                file=sys.stderr,
            )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
