"""JSON serialization for schemas and mappings.

The Cupid prototype displayed its output in BizTalk Mapper; our
equivalent is a plain JSON rendering that downstream tools (and the
test suite) can consume. Schemas round-trip exactly; mappings are
export-only (they reference live tree nodes).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import SchemaError
from repro.mapping.mapping import Mapping
from repro.model.datatypes import DataType
from repro.model.element import ElementKind, SchemaElement
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialize a schema graph to a JSON-compatible dict."""
    elements: List[Dict[str, Any]] = []
    for element in schema.elements:
        elements.append(
            {
                "id": element.element_id,
                "name": element.name,
                "kind": element.kind.value,
                "data_type": element.data_type.value if element.data_type else None,
                "optional": element.optional,
                "is_key": element.is_key,
                "not_instantiated": element.not_instantiated,
                "description": element.description,
            }
        )
    relationships = [
        {
            "source": rel.source.element_id,
            "target": rel.target.element_id,
            "kind": rel.kind.value,
        }
        for rel in schema.relationships
    ]
    return {
        "name": schema.name,
        "root": schema.root.element_id,
        "elements": elements,
        "relationships": relationships,
    }


def schema_from_dict(data: Dict[str, Any]) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output.

    The serialized ids are used to resolve relationships inside the
    dict, but the rebuilt elements receive fresh process-unique ids so
    the same dict can be loaded multiple times (e.g. to match a schema
    against a copy of itself).
    """
    schema, _ = schema_from_dict_with_ids(data)
    return schema


def schema_from_dict_with_ids(
    data: Dict[str, Any]
) -> Tuple[Schema, Dict[str, SchemaElement]]:
    """:func:`schema_from_dict` plus the serialized-id → element map.

    Persisted artifacts (repository prepared-schema tiers) reference
    elements by their *serialized* ids; since deserialization mints
    fresh process-unique ids, restoring those artifacts needs the
    translation this variant returns.
    """
    if not isinstance(data, dict) or not {
        "root", "name", "elements", "relationships"
    } <= data.keys():
        # Arbitrary JSON (a config file, a mapping export) routed here
        # by extension dispatch must fail as a schema error, not leak
        # a KeyError traceback.
        raise SchemaError(
            "JSON payload is not a serialized schema (expected object "
            "with 'name', 'root', 'elements', 'relationships')"
        )
    root_id = data["root"]
    by_id: Dict[str, SchemaElement] = {}
    schema: Optional[Schema] = None

    for spec in data["elements"]:
        element = SchemaElement(
            name=spec["name"],
            kind=ElementKind(spec["kind"]),
            data_type=DataType(spec["data_type"]) if spec["data_type"] else None,
            optional=spec.get("optional", False),
            is_key=spec.get("is_key", False),
            not_instantiated=spec.get("not_instantiated", False),
            description=spec.get("description", ""),
            # Fresh process-unique id: loading the same dict twice must
            # not produce elements that compare equal across schemas.
        )
        by_id[spec["id"]] = element
        if spec["id"] == root_id:
            schema = Schema(data["name"])
            # Swap the auto-created root for the deserialized one by
            # reusing the created root object and copying fields.
            schema.root.name = element.name
            schema.root.kind = element.kind
            by_id[spec["id"]] = schema.root

    if schema is None:
        raise SchemaError("serialized schema has no root element")

    for spec in data["elements"]:
        if spec["id"] != root_id:
            schema.add_element(by_id[spec["id"]])

    adders = {
        RelationshipKind.CONTAINMENT: schema.add_containment,
        RelationshipKind.AGGREGATION: schema.add_aggregation,
        RelationshipKind.IS_DERIVED_FROM: schema.add_is_derived_from,
        RelationshipKind.REFERENCE: schema.add_reference,
    }
    for rel in data["relationships"]:
        kind = RelationshipKind(rel["kind"])
        adders[kind](by_id[rel["source"]], by_id[rel["target"]])
    return schema, by_id


def schema_to_json(schema: Schema, indent: int = 2) -> str:
    return json.dumps(schema_to_dict(schema), indent=indent)


def schema_from_json(text: str) -> Schema:
    return schema_from_dict(json.loads(text))


def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping (export only)."""
    return {
        "source_schema": mapping.source_schema_name,
        "target_schema": mapping.target_schema_name,
        "elements": [
            {
                "source_path": list(element.source_path),
                "target_path": list(element.target_path),
                "similarity": round(element.similarity, 6),
            }
            for element in mapping
        ],
    }


def mapping_to_json(mapping: Mapping, indent: int = 2) -> str:
    return json.dumps(mapping_to_dict(mapping), indent=indent)
