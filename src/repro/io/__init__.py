"""Schema importers and serialization.

The Cupid prototype "currently operates on XML and relational schemas"
(Section 9); this package provides importers for both, plus the
object-oriented class DSL used by the canonical examples of Section 9.1,
the ER model used by the DIKE baseline, and JSON round-tripping.
"""

from repro.io.sql_ddl import parse_sql_ddl
from repro.io.xml_schema import parse_xml_schema
from repro.io.dtd import parse_dtd
from repro.io.oo_model import parse_oo_model
from repro.io.er_model import (
    ERAttribute,
    EREntity,
    ERModel,
    ERRelationship,
    er_model_from_schema,
)
from repro.io.json_io import (
    mapping_to_dict,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "ERAttribute",
    "EREntity",
    "ERModel",
    "ERRelationship",
    "er_model_from_schema",
    "mapping_to_dict",
    "parse_dtd",
    "parse_oo_model",
    "parse_sql_ddl",
    "parse_xml_schema",
    "schema_from_dict",
    "schema_to_dict",
]
