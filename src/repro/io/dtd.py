"""Mini XML DTD importer.

Figure 5 of the paper shows referential constraints in "SQL Schemas and
XML DTDs": ID/IDREF attribute pairs are the DTD form of foreign keys.
This importer covers the DTD subset those examples need:

* ``<!ELEMENT name (child1, child2*, child3?)>`` — containment; ``?``
  and ``*`` mark optional members; ``#PCDATA`` content makes the
  element atomic.
* ``<!ATTLIST element attr CDATA #REQUIRED>`` — attributes with DTD
  types (CDATA, ID, IDREF, NMTOKEN, enumerations); ``#IMPLIED`` marks
  optional attributes.
* ``ID`` attributes become key elements; each ``IDREF`` attribute
  yields a RefInt element aggregating the referring attribute and
  referencing the document's ID key — "the 1:n nature of the reference
  relationship allows a single IDREF attribute to reference multiple
  IDs in an XML DTD", which we model by referencing a document-wide ID
  key when several elements declare IDs.

The root element is the first declared element that no other element
contains.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import XmlSchemaParseError
from repro.model.datatypes import DataType
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema

_ELEMENT_RE = re.compile(
    r"<!ELEMENT\s+(?P<name>[\w.-]+)\s+(?P<content>[^>]+)>", re.IGNORECASE
)
_ATTLIST_RE = re.compile(
    r"<!ATTLIST\s+(?P<element>[\w.-]+)\s+(?P<body>[^>]+)>", re.IGNORECASE
)
_ATTDEF_RE = re.compile(
    r"(?P<name>[\w.-]+)\s+"
    r"(?P<type>CDATA|ID|IDREF|IDREFS|NMTOKEN|NMTOKENS|ENTITY|"
    r"\([^)]*\))\s+"
    r"(?P<default>#REQUIRED|#IMPLIED|#FIXED\s+\"[^\"]*\"|\"[^\"]*\")",
    re.IGNORECASE,
)
_CHILD_RE = re.compile(r"(?P<name>[\w.-]+)(?P<card>[?*+]?)")

_DTD_TYPE_MAP = {
    "CDATA": DataType.STRING,
    "ID": DataType.IDENTIFIER,
    "IDREF": DataType.IDENTIFIER,
    "IDREFS": DataType.IDENTIFIER,
    "NMTOKEN": DataType.STRING,
    "NMTOKENS": DataType.STRING,
    "ENTITY": DataType.STRING,
}


class _ElementDecl:
    def __init__(self, name: str, content: str) -> None:
        self.name = name
        self.content = content.strip()
        self.children: List[Tuple[str, bool]] = []  # (name, optional)
        self.atomic = False
        self._parse()

    def _parse(self) -> None:
        content = self.content
        if "#PCDATA" in content.upper():
            self.atomic = True
            return
        if content.upper() in ("EMPTY", "ANY"):
            return
        inner = content.strip()
        if inner.startswith("(") and inner.endswith(")"):
            inner = inner[1:-1]
        # Only sequences/choices of named children are supported; the
        # distinction between "," and "|" does not matter for matching
        # (both are containment), but choice members are optional.
        is_choice = "|" in inner
        for match in _CHILD_RE.finditer(inner):
            name = match.group("name")
            if name.upper() == "EMPTY":
                continue
            optional = match.group("card") in ("?", "*") or is_choice
            self.children.append((name, optional))


def parse_dtd(text: str, schema_name: str = "dtd_schema") -> Schema:
    """Parse a DTD document into a :class:`Schema`."""
    text = re.sub(r"<!--.*?-->", "", text, flags=re.DOTALL)
    declarations: Dict[str, _ElementDecl] = {}
    order: List[str] = []
    for match in _ELEMENT_RE.finditer(text):
        name = match.group("name")
        if name.lower() in declarations:
            raise XmlSchemaParseError(f"duplicate <!ELEMENT {name}>")
        declarations[name.lower()] = _ElementDecl(name, match.group("content"))
        order.append(name)
    if not order:
        raise XmlSchemaParseError("no <!ELEMENT> declarations found")

    attlists: Dict[str, List[Tuple[str, str, bool]]] = {}
    for match in _ATTLIST_RE.finditer(text):
        element = match.group("element").lower()
        if element not in declarations:
            raise XmlSchemaParseError(
                f"<!ATTLIST {match.group('element')}> for undeclared element"
            )
        for attdef in _ATTDEF_RE.finditer(match.group("body")):
            optional = attdef.group("default").upper() != "#REQUIRED"
            attlists.setdefault(element, []).append(
                (attdef.group("name"), attdef.group("type").upper(), optional)
            )

    contained: Set[str] = set()
    for declaration in declarations.values():
        contained.update(name.lower() for name, _ in declaration.children)
    roots = [name for name in order if name.lower() not in contained]
    root_name = roots[0] if roots else order[0]

    schema = Schema(schema_name)
    elements: Dict[str, SchemaElement] = {}

    def build(name: str, parent: SchemaElement, optional: bool,
              stack: Set[str]) -> None:
        key = name.lower()
        if key in stack:
            # Recursive DTDs exist (e.g. nested sections); Cupid defers
            # cyclic schemas, so we cut the recursion at one level.
            return
        declaration = declarations.get(key)
        element = SchemaElement(
            name=name,
            kind=ElementKind.XML_ELEMENT,
            data_type=(
                DataType.STRING
                if declaration is not None and declaration.atomic
                and not attlists.get(key)
                else None
            ),
            optional=optional,
        )
        schema.add_element(element)
        schema.add_containment(parent, element)
        elements.setdefault(key, element)
        if declaration is None:
            return
        for attr_name, dtd_type, attr_optional in attlists.get(key, []):
            attr_type = _DTD_TYPE_MAP.get(
                dtd_type, DataType.ENUM if dtd_type.startswith("(") else (
                    DataType.STRING
                )
            )
            attribute = SchemaElement(
                name=attr_name,
                kind=ElementKind.XML_ATTRIBUTE,
                data_type=attr_type,
                optional=attr_optional,
                is_key=dtd_type == "ID",
            )
            schema.add_element(attribute)
            schema.add_containment(element, attribute)
        stack.add(key)
        for child_name, child_optional in declaration.children:
            build(child_name, element, child_optional, stack)
        stack.discard(key)

    build(root_name, schema.root, False, set())

    _reify_id_idref(schema, attlists, elements)
    return schema


def _reify_id_idref(
    schema: Schema,
    attlists: Dict[str, List[Tuple[str, str, bool]]],
    elements: Dict[str, SchemaElement],
) -> None:
    """Model ID/IDREF pairs as KEY + RefInt elements (Figure 5)."""
    id_keys: Dict[str, SchemaElement] = {}
    for element_key, attributes in attlists.items():
        owner = elements.get(element_key)
        if owner is None:
            continue
        for attr_name, dtd_type, _ in attributes:
            if dtd_type != "ID":
                continue
            key = SchemaElement(
                name=f"{owner.name}_id_key",
                kind=ElementKind.KEY,
                not_instantiated=True,
                is_key=True,
            )
            schema.add_element(key)
            schema.add_containment(owner, key)
            for child in schema.contained_children(owner):
                if child.name == attr_name:
                    schema.add_aggregation(key, child)
            id_keys[element_key] = key

    if not id_keys:
        return
    for element_key, attributes in attlists.items():
        owner = elements.get(element_key)
        if owner is None:
            continue
        for attr_name, dtd_type, _ in attributes:
            if dtd_type not in ("IDREF", "IDREFS"):
                continue
            refint = SchemaElement(
                name=f"{owner.name}-{attr_name}-idref",
                kind=ElementKind.REFINT,
                not_instantiated=True,
            )
            schema.add_element(refint)
            schema.add_containment(owner, refint)
            for child in schema.contained_children(owner):
                if child.name == attr_name:
                    schema.add_aggregation(refint, child)
            # "A single IDREF attribute [may] reference multiple IDs":
            # point at every declared ID key.
            for key in id_keys.values():
                schema.add_reference(refint, key)
