"""A mini SQL DDL importer.

Parses the subset of SQL DDL needed to express the paper's relational
examples (Figure 8's RDB and Star schemas and anything of similar
shape) into the generic schema model:

* ``CREATE TABLE t (...)`` with column definitions,
* column constraints: ``PRIMARY KEY``, ``NOT NULL``, ``NULL``,
  ``UNIQUE``, inline ``REFERENCES t(col)``,
* table constraints: ``PRIMARY KEY (a, b)``,
  ``FOREIGN KEY (a, b) REFERENCES t (c, d)``,
* ``CREATE VIEW v AS SELECT a, b FROM t`` (column list only; the view
  is modeled per Section 8.4 as an element aggregating its members).

Tables become TABLE elements containing COLUMN elements. A primary key
becomes a not-instantiated KEY element that aggregates its columns
(Figure 5's modeling). Each foreign key becomes a not-instantiated
REFINT element contained by the source table, aggregating the source
columns and referencing the target table's key.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SqlDdlParseError
from repro.model.datatypes import parse_data_type
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema

_CREATE_TABLE_RE = re.compile(
    r"create\s+table\s+(?P<name>\w+)\s*\((?P<body>.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)
_CREATE_VIEW_RE = re.compile(
    r"create\s+view\s+(?P<name>\w+)\s+as\s+select\s+(?P<cols>.*?)\s+"
    r"from\s+(?P<tables>[\w,\s]+?)\s*;",
    re.IGNORECASE | re.DOTALL,
)
_TABLE_PK_RE = re.compile(
    r"^primary\s+key\s*\((?P<cols>[^)]*)\)$", re.IGNORECASE
)
_TABLE_FK_RE = re.compile(
    r"^(?:constraint\s+(?P<cname>\w+)\s+)?foreign\s+key\s*"
    r"\((?P<cols>[^)]*)\)\s*references\s+(?P<table>\w+)\s*"
    r"(?:\((?P<refcols>[^)]*)\))?$",
    re.IGNORECASE,
)
_COLUMN_RE = re.compile(
    r"^(?P<name>\w+)\s+(?P<type>\w+(?:\s*\([\d,\s]*\))?)(?P<rest>.*)$",
    re.IGNORECASE | re.DOTALL,
)
_INLINE_REF_RE = re.compile(
    r"references\s+(?P<table>\w+)\s*(?:\((?P<col>\w+)\))?", re.IGNORECASE
)


def _split_top_level(body: str) -> List[str]:
    """Split a CREATE TABLE body on commas outside parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


class _PendingForeignKey:
    def __init__(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        target_table: str,
        target_columns: Sequence[str],
    ) -> None:
        self.name = name
        self.table = table
        self.columns = list(columns)
        self.target_table = target_table
        self.target_columns = list(target_columns)


def parse_sql_ddl(ddl: str, schema_name: str = "sql_schema") -> Schema:
    """Parse DDL text into a :class:`Schema`.

    Raises :class:`SqlDdlParseError` on malformed statements. Foreign
    keys may reference tables defined later in the script; they are
    resolved at the end.
    """
    schema = Schema(schema_name)
    tables: Dict[str, SchemaElement] = {}
    columns: Dict[Tuple[str, str], SchemaElement] = {}
    primary_keys: Dict[str, SchemaElement] = {}
    pending_fks: List[_PendingForeignKey] = []

    consumed_spans: List[Tuple[int, int]] = []
    for match in _CREATE_TABLE_RE.finditer(ddl):
        consumed_spans.append(match.span())
        table_name = match.group("name")
        table = SchemaElement(name=table_name, kind=ElementKind.TABLE)
        schema.add_element(table)
        schema.add_containment(schema.root, table)
        tables[table_name.lower()] = table

        pk_columns: List[str] = []
        for clause in _split_top_level(match.group("body")):
            normalized = " ".join(clause.split())
            pk = _TABLE_PK_RE.match(normalized)
            if pk:
                pk_columns.extend(
                    c.strip() for c in pk.group("cols").split(",") if c.strip()
                )
                continue
            fk = _TABLE_FK_RE.match(normalized)
            if fk:
                fk_columns = [
                    c.strip() for c in fk.group("cols").split(",") if c.strip()
                ]
                ref_cols = [
                    c.strip()
                    for c in (fk.group("refcols") or "").split(",")
                    if c.strip()
                ]
                fk_name = fk.group("cname") or (
                    f"{table_name}-{fk.group('table')}-fk"
                )
                pending_fks.append(
                    _PendingForeignKey(
                        fk_name, table_name, fk_columns,
                        fk.group("table"), ref_cols,
                    )
                )
                continue
            col = _COLUMN_RE.match(normalized)
            if not col:
                raise SqlDdlParseError(
                    f"cannot parse column or constraint: {normalized!r} "
                    f"in table {table_name!r}"
                )
            col_name = col.group("name")
            rest = col.group("rest").lower()
            element = SchemaElement(
                name=col_name,
                kind=ElementKind.COLUMN,
                data_type=parse_data_type(col.group("type")),
                optional="not null" not in rest and "primary key" not in rest,
                is_key="primary key" in rest or "unique" in rest,
            )
            schema.add_element(element)
            schema.add_containment(table, element)
            columns[(table_name.lower(), col_name.lower())] = element
            if "primary key" in rest:
                pk_columns.append(col_name)
            inline_ref = _INLINE_REF_RE.search(col.group("rest"))
            if inline_ref:
                pending_fks.append(
                    _PendingForeignKey(
                        f"{table_name}-{inline_ref.group('table')}-fk",
                        table_name,
                        [col_name],
                        inline_ref.group("table"),
                        [inline_ref.group("col")] if inline_ref.group("col") else [],
                    )
                )

        if pk_columns:
            key = SchemaElement(
                name=f"{table_name}_pk",
                kind=ElementKind.KEY,
                not_instantiated=True,
                is_key=True,
            )
            schema.add_element(key)
            schema.add_containment(table, key)
            primary_keys[table_name.lower()] = key
            for col_name in pk_columns:
                column = columns.get((table_name.lower(), col_name.lower()))
                if column is None:
                    raise SqlDdlParseError(
                        f"primary key column {col_name!r} not defined in "
                        f"table {table_name!r}"
                    )
                column.is_key = True
                column.optional = False
                schema.add_aggregation(key, column)

    for match in _CREATE_VIEW_RE.finditer(ddl):
        consumed_spans.append(match.span())
        view = SchemaElement(
            name=match.group("name"),
            kind=ElementKind.VIEW,
            not_instantiated=True,
        )
        schema.add_element(view)
        schema.add_containment(schema.root, view)
        from_tables = [
            t.strip().lower()
            for t in match.group("tables").split(",")
            if t.strip()
        ]
        for col_spec in match.group("cols").split(","):
            col_spec = col_spec.strip()
            if not col_spec:
                continue
            if "." in col_spec:
                table_part, col_part = col_spec.split(".", 1)
                member = columns.get((table_part.lower(), col_part.lower()))
            else:
                member = None
                for table_name in from_tables:
                    member = columns.get((table_name, col_spec.lower()))
                    if member is not None:
                        break
            if member is None:
                raise SqlDdlParseError(
                    f"view {match.group('name')!r} selects unknown column "
                    f"{col_spec!r}"
                )
            schema.add_aggregation(view, member)

    _check_leftover(ddl, consumed_spans)
    _resolve_foreign_keys(
        schema, tables, columns, primary_keys, pending_fks
    )
    return schema


def _check_leftover(ddl: str, consumed_spans: List[Tuple[int, int]]) -> None:
    """Reject statements the importer did not understand."""
    covered = [False] * len(ddl)
    for start, end in consumed_spans:
        for i in range(start, end):
            covered[i] = True
    leftover = "".join(
        ch for i, ch in enumerate(ddl) if not covered[i]
    ).strip()
    leftover = re.sub(r"--[^\n]*", "", leftover).strip()
    if leftover:
        snippet = " ".join(leftover.split())[:80]
        raise SqlDdlParseError(f"unrecognized DDL near: {snippet!r}")


def _resolve_foreign_keys(
    schema: Schema,
    tables: Dict[str, SchemaElement],
    columns: Dict[Tuple[str, str], SchemaElement],
    primary_keys: Dict[str, SchemaElement],
    pending: List[_PendingForeignKey],
) -> None:
    for fk in pending:
        source_table = tables.get(fk.table.lower())
        target_table = tables.get(fk.target_table.lower())
        if source_table is None or target_table is None:
            raise SqlDdlParseError(
                f"foreign key {fk.name!r} references unknown table "
                f"{fk.target_table!r}"
            )
        refint = SchemaElement(
            name=fk.name, kind=ElementKind.REFINT, not_instantiated=True
        )
        schema.add_element(refint)
        schema.add_containment(source_table, refint)
        for col_name in fk.columns:
            column = columns.get((fk.table.lower(), col_name.lower()))
            if column is None:
                raise SqlDdlParseError(
                    f"foreign key {fk.name!r} uses unknown column "
                    f"{col_name!r}"
                )
            schema.add_aggregation(refint, column)
        target_key = primary_keys.get(fk.target_table.lower())
        if target_key is None:
            # Referenced table has no declared PK: synthesize one over
            # the referenced columns (or the whole table if unspecified).
            target_key = SchemaElement(
                name=f"{fk.target_table}_key",
                kind=ElementKind.KEY,
                not_instantiated=True,
                is_key=True,
            )
            schema.add_element(target_key)
            schema.add_containment(target_table, target_key)
            for col_name in fk.target_columns:
                column = columns.get(
                    (fk.target_table.lower(), col_name.lower())
                )
                if column is not None:
                    schema.add_aggregation(target_key, column)
            primary_keys[fk.target_table.lower()] = target_key
        schema.add_reference(refint, target_key)
