"""Entity-Relationship model for the DIKE baseline.

DIKE "operates on ER models" (Section 9): schemas are "interpreted as
graphs with entities, relationships and attributes as nodes". This
module defines that graph shape and a converter from the generic
schema model (used when the paper says "for DIKE we used a
corresponding ER schema" / "we had to remodel the schemas as an
appropriate ER model").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import SchemaError
from repro.model.datatypes import DataType
from repro.model.element import ElementKind
from repro.model.schema import Schema


@dataclass
class ERAttribute:
    """An attribute node of an ER graph."""

    name: str
    data_type: Optional[DataType] = None
    is_key: bool = False

    def __repr__(self) -> str:
        key = " (key)" if self.is_key else ""
        return f"<ERAttribute {self.name}{key}>"


@dataclass
class EREntity:
    """An entity node with its attributes."""

    name: str
    attributes: List[ERAttribute] = field(default_factory=list)

    def add_attribute(
        self,
        name: str,
        data_type: Optional[DataType] = None,
        is_key: bool = False,
    ) -> ERAttribute:
        attribute = ERAttribute(name=name, data_type=data_type, is_key=is_key)
        self.attributes.append(attribute)
        return attribute

    def __repr__(self) -> str:
        return f"<EREntity {self.name}: {len(self.attributes)} attributes>"


@dataclass
class ERRelationship:
    """A relationship node connecting two or more entities.

    DIKE supports n-ary relationships ("DeliverTo and InvoiceTo are
    ternary relationships between PurchaseOrder, Address and Contact").
    Relationships may carry their own attributes.
    """

    name: str
    participants: List[str] = field(default_factory=list)  # entity names
    attributes: List[ERAttribute] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"<ERRelationship {self.name} "
            f"({', '.join(self.participants)})>"
        )


class ERModel:
    """An ER schema: entities + relationships, with lookups."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._entities: Dict[str, EREntity] = {}
        self._relationships: Dict[str, ERRelationship] = {}

    def add_entity(self, name: str) -> EREntity:
        if name.lower() in self._entities:
            raise SchemaError(f"duplicate entity {name!r} in ER model")
        entity = EREntity(name=name)
        self._entities[name.lower()] = entity
        return entity

    def add_relationship(
        self, name: str, participants: Iterable[str]
    ) -> ERRelationship:
        participants = list(participants)
        for participant in participants:
            if participant.lower() not in self._entities:
                raise SchemaError(
                    f"relationship {name!r} references unknown entity "
                    f"{participant!r}"
                )
        key = name.lower()
        if key in self._relationships:
            # Allow same-named relationships between different entities
            # by disambiguating the key (DIKE's models do reuse names).
            key = f"{key}:{':'.join(p.lower() for p in participants)}"
        relationship = ERRelationship(name=name, participants=participants)
        self._relationships[key] = relationship
        return relationship

    @property
    def entities(self) -> List[EREntity]:
        return list(self._entities.values())

    @property
    def relationships(self) -> List[ERRelationship]:
        return list(self._relationships.values())

    def entity(self, name: str) -> EREntity:
        try:
            return self._entities[name.lower()]
        except KeyError:
            raise SchemaError(f"no entity {name!r} in ER model") from None

    def neighbors(self, entity_name: str) -> List[str]:
        """Entity names connected to ``entity_name`` via relationships."""
        connected: List[str] = []
        for relationship in self._relationships.values():
            lowered = [p.lower() for p in relationship.participants]
            if entity_name.lower() in lowered:
                connected.extend(
                    p for p in relationship.participants
                    if p.lower() != entity_name.lower()
                )
        return connected

    def __repr__(self) -> str:
        return (
            f"<ERModel {self.name!r}: {len(self._entities)} entities, "
            f"{len(self._relationships)} relationships>"
        )


def er_model_from_schema(schema: Schema) -> ERModel:
    """Mechanical remodeling of a hierarchical schema as an ER model.

    The default convention the paper uses first: "model the root
    elements and all XML-elements that had any attributes, as entities"
    — inner (structural) elements with atomic children become entities
    holding those children as attributes; containment between two
    entities becomes a binary relationship named after the child.
    """
    model = ERModel(schema.name)

    def is_entity(element) -> bool:
        children = schema.contained_children(element)
        return any(child.is_atomic for child in children) or element is schema.root

    entity_names: Dict[str, str] = {}
    for element in schema.iter_containment_preorder():
        if element.not_instantiated:
            continue
        if is_entity(element):
            if element.name.lower() in {n.lower() for n in entity_names.values()}:
                continue  # entity names are unique in ER models
            entity = model.add_entity(element.name)
            entity_names[element.element_id] = element.name
            for child in schema.contained_children(element):
                if child.is_atomic and not child.not_instantiated:
                    entity.add_attribute(
                        child.name, child.data_type, child.is_key
                    )

    # Containment between entities (possibly through non-entity
    # intermediates) becomes a relationship.
    for element in schema.iter_containment_preorder():
        if element.element_id not in entity_names or element is schema.root:
            continue
        ancestor = schema.container_of(element)
        via: List[str] = []
        while ancestor is not None and ancestor.element_id not in entity_names:
            via.append(ancestor.name)
            ancestor = schema.container_of(ancestor)
        if ancestor is None:
            continue
        relationship_name = via[-1] if via else element.name
        model.add_relationship(
            relationship_name,
            [entity_names[ancestor.element_id], entity_names[element.element_id]],
        )
    return model
