"""Object-oriented class-definition DSL.

The canonical examples of Section 9.1 are written as "object-oriented
schemas with a small number of class definitions", e.g.::

    class Customer (Customer_Number: integer (key), Name: string,
                    Address: string)
    class PurchaseOrder (OrderNumber: integer,
                         ShippingAddress: Address,
                         BillingAddress: Address)
    class Address (Name: string, Street: string, City: string)

Attributes typed with a *class name* become shared-type references
(IsDerivedFrom) — exactly the type-substitution situation of canonical
example 6. ``(key)`` marks key attributes, ``(optional)`` optional
ones. Definitions may span lines; a definition ends at its closing
parenthesis.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.exceptions import OoModelParseError
from repro.model.datatypes import parse_data_type
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema

_CLASS_RE = re.compile(
    r"class\s+(?P<name>\w+)\s*\((?P<body>.*?)\)\s*(?=class\s|\Z)",
    re.IGNORECASE | re.DOTALL,
)
_ATTR_RE = re.compile(
    r"^(?P<name>\w+)\s*:\s*(?P<type>\w+)\s*(?P<flags>(?:\(\s*\w+\s*\)\s*)*)$"
)


def _split_attributes(body: str) -> List[str]:
    """Split on commas outside parentheses (nested attrs like Name
    (FirstName, LastName) are not part of this DSL, but flags are)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


def parse_oo_model(text: str, schema_name: str = "oo_schema") -> Schema:
    """Parse class definitions into a :class:`Schema`.

    Classes become CLASS elements under the root; attributes with
    scalar types become typed ATTRIBUTE leaves; attributes whose type
    names another class add an intermediate attribute element with an
    IsDerivedFrom edge to that class (shared type). The referenced
    class stays instantiable as its own subtree only if some attribute
    does not reference it — referenced classes are marked
    not-instantiated, matching how XSD complexTypes behave.
    """
    schema = Schema(schema_name)
    classes: Dict[str, SchemaElement] = {}
    pending: List[Tuple[SchemaElement, str]] = []

    stripped = text.strip()
    if not stripped:
        raise OoModelParseError("empty class-definition text")

    matched_any = False
    for match in _CLASS_RE.finditer(stripped):
        matched_any = True
        class_name = match.group("name")
        if class_name.lower() in classes:
            raise OoModelParseError(f"duplicate class {class_name!r}")
        cls = SchemaElement(name=class_name, kind=ElementKind.CLASS)
        schema.add_element(cls)
        schema.add_containment(schema.root, cls)
        classes[class_name.lower()] = cls

        for attr_text in _split_attributes(match.group("body")):
            normalized = " ".join(attr_text.split())
            attr_match = _ATTR_RE.match(normalized)
            if not attr_match:
                raise OoModelParseError(
                    f"cannot parse attribute {normalized!r} in class "
                    f"{class_name!r}"
                )
            flags = {
                f.strip("() ").lower()
                for f in re.findall(r"\(\s*\w+\s*\)", attr_match.group("flags"))
            }
            attr_name = attr_match.group("name")
            type_name = attr_match.group("type")
            element = SchemaElement(
                name=attr_name,
                kind=ElementKind.ATTRIBUTE,
                optional="optional" in flags,
                is_key="key" in flags,
            )
            schema.add_element(element)
            schema.add_containment(cls, element)
            pending.append((element, type_name))

    if not matched_any:
        raise OoModelParseError(
            "no class definitions found (expected 'class Name (...)')"
        )

    for element, type_name in pending:
        target = classes.get(type_name.lower())
        if target is not None:
            schema.add_is_derived_from(element, target)
            target.not_instantiated = True
        else:
            element.data_type = parse_data_type(type_name)
    return schema
