"""Simplified XML schema importer.

Parses a compact XSD-like XML dialect into the generic model. The
dialect covers what the paper's XML examples need:

.. code-block:: xml

    <schema name="PurchaseOrder">
      <complexType name="Address">
        <attribute name="Street" type="string"/>
        <attribute name="City" type="string"/>
      </complexType>
      <element name="DeliverTo" type="Address"/>
      <element name="InvoiceTo" type="Address"/>
      <element name="Items">
        <element name="Item">
          <attribute name="Quantity" type="integer"/>
          <attribute name="UnitOfMeasure" type="string" optional="true"/>
        </element>
      </element>
    </schema>

* ``<element>`` — XML elements; nested elements/attributes are
  containment. A ``type="T"`` attribute adds an IsDerivedFrom
  relationship to the named complexType (shared type, Section 8.2).
* ``<attribute>`` — atomic leaves with a ``type`` data type.
* ``<complexType>`` — a shared type; contained by the root but marked
  not-instantiated, so it only materializes through the elements that
  reference it.
* ``optional="true"`` / ``minOccurs="0"`` / ``use="optional"`` mark
  optionality (Section 8.4).
* ``<key name="...">`` children are modeled as not-instantiated KEY
  elements.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from repro.exceptions import XmlSchemaParseError
from repro.model.datatypes import parse_data_type
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema


def parse_xml_schema(text: str) -> Schema:
    """Parse the XML schema dialect above into a :class:`Schema`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlSchemaParseError(f"malformed XML: {exc}") from exc
    if root.tag != "schema":
        raise XmlSchemaParseError(
            f"expected root tag <schema>, found <{root.tag}>"
        )
    name = root.get("name")
    if not name:
        raise XmlSchemaParseError("<schema> requires a name attribute")

    schema = Schema(name)
    shared_types: Dict[str, SchemaElement] = {}
    pending_derivations: List[tuple] = []  # (element, type name)

    # First pass: declare complexTypes so forward references resolve.
    for child in root:
        if child.tag == "complexType":
            type_name = child.get("name")
            if not type_name:
                raise XmlSchemaParseError("<complexType> requires a name")
            if type_name in shared_types:
                raise XmlSchemaParseError(
                    f"duplicate complexType {type_name!r}"
                )
            element = SchemaElement(
                name=type_name,
                kind=ElementKind.TYPE,
                not_instantiated=True,
            )
            schema.add_element(element)
            schema.add_containment(schema.root, element)
            shared_types[type_name] = element

    for child in root:
        if child.tag == "complexType":
            _parse_members(
                schema, child, shared_types[child.get("name")],
                shared_types, pending_derivations,
            )
        else:
            _parse_node(
                schema, child, schema.root, shared_types, pending_derivations
            )

    for element, type_name in pending_derivations:
        base = shared_types.get(type_name)
        if base is None:
            raise XmlSchemaParseError(
                f"element {element.name!r} references undefined type "
                f"{type_name!r}"
            )
        schema.add_is_derived_from(element, base)
    return schema


def _is_optional(node: ET.Element) -> bool:
    return (
        node.get("optional", "").lower() == "true"
        or node.get("minOccurs") == "0"
        or node.get("use", "").lower() == "optional"
    )


def _parse_node(
    schema: Schema,
    node: ET.Element,
    parent: SchemaElement,
    shared_types: Dict[str, SchemaElement],
    pending: List[tuple],
) -> None:
    name = node.get("name")
    if not name:
        raise XmlSchemaParseError(f"<{node.tag}> requires a name attribute")

    if node.tag == "element":
        type_ref = node.get("type")
        data_type = None
        if type_ref and type_ref not in shared_types and len(node) == 0:
            # A simple-typed element is an atomic leaf.
            data_type = parse_data_type(type_ref)
            type_ref = None
        element = SchemaElement(
            name=name,
            kind=ElementKind.XML_ELEMENT,
            data_type=data_type,
            optional=_is_optional(node),
        )
        schema.add_element(element)
        schema.add_containment(parent, element)
        if type_ref:
            pending.append((element, type_ref))
        _parse_members(schema, node, element, shared_types, pending)
    elif node.tag == "attribute":
        element = SchemaElement(
            name=name,
            kind=ElementKind.XML_ATTRIBUTE,
            data_type=parse_data_type(node.get("type", "string")),
            optional=_is_optional(node),
        )
        schema.add_element(element)
        schema.add_containment(parent, element)
    elif node.tag == "key":
        element = SchemaElement(
            name=name,
            kind=ElementKind.KEY,
            not_instantiated=True,
            is_key=True,
        )
        schema.add_element(element)
        schema.add_containment(parent, element)
    else:
        raise XmlSchemaParseError(
            f"unsupported tag <{node.tag}> under {parent.name!r}"
        )


def _parse_members(
    schema: Schema,
    node: ET.Element,
    parent: SchemaElement,
    shared_types: Dict[str, SchemaElement],
    pending: List[tuple],
) -> None:
    for child in node:
        _parse_node(schema, child, parent, shared_types, pending)
