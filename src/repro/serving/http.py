"""Thin HTTP/JSON front end for :class:`~repro.serving.MatchService`.

Pure stdlib (``http.server``) — no new dependency. One
:class:`ThreadingHTTPServer` accepts connections; every request body
is parsed on the connection thread and executed through the service's
session pool, so the daemon inherits the service's admission control,
deadlines, and metrics.

Endpoints (all JSON except /metrics)::

    GET  /health          liveness + corpus size + in-flight gauge
    GET  /stats           latency histograms (p50/p95/p99 per
                          endpoint), session-pool cache counters,
                          repository counters
    GET  /metrics         Prometheus text exposition from the same
                          registry /stats snapshots (counts always
                          agree)
    POST /search          {"schema": {...} | "text": "...", "format":
                          "sql", "k": 5, "candidates": 16,
                          "timeout_s": 10} -> ranked matches
    POST /match           {"source": <schema spec>, "target":
                          <schema spec>} -> one mapping
    POST /ingest          {"schemas": [<schema spec>, ...]} -> ids

Every request gets a request id — minted from a per-daemon counter,
or taken from an ``X-Request-Id`` header when the client sends one —
echoed in the ``X-Request-Id`` response header, stamped on every span
and structured log line, and carried in error bodies so 5xx responses
are attributable in client logs. ``/search`` and ``/match`` bodies
may set ``"trace": true`` to get a ``trace`` block: the request's
full span tree (HTTP → service → repository → pipeline → sharded
workers), arming the process-wide tracer if it wasn't already.
Requests slower than ``config.slow_request_ms`` emit one structured
JSON log line on stderr (0 disables).

A *schema spec* is either ``{"schema": {...}}`` (the serialized
schema-JSON format of :mod:`repro.io.json_io`) or ``{"text": "...",
"format": "sql" | "xml" | "dtd" | "oo" | "json"}`` (source text run
through the matching importer). Search/match responses carry a
``latency_ms`` block with the same keys the CLI's ``repro search
--format json`` reports, so one dashboard schema covers both.

Error taxonomy → status codes: :class:`BadRequestError` → 400,
unknown path → 404, :class:`ServiceOverloadedError` /
:class:`ServiceClosedError` / :class:`ParallelError` (a worker pool
that died twice) → 503 with a jittered ``Retry-After`` header,
:class:`RequestTimeoutError` → 504,
:class:`RepositoryReadOnlyError` (degraded to read-only, e.g. disk
full) → 507, :class:`RepositoryError` → 404 (unknown schema id) and
other library errors → 400. Bodies are ``{"error": <class name>,
"message": ...}``. A failed request is always a named 5xx — never a
200 with partial results.
"""

from __future__ import annotations

import itertools
import json
import random
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import (
    BadRequestError,
    ParallelError,
    RepositoryError,
    RepositoryReadOnlyError,
    ReproError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
)
from repro.io.dtd import parse_dtd
from repro.io.json_io import mapping_to_dict, schema_from_dict
from repro.io.oo_model import parse_oo_model
from repro.io.sql_ddl import parse_sql_ddl
from repro.io.xml_schema import parse_xml_schema
from repro.mapping.mapping import Mapping
from repro.model.schema import Schema
from repro.obs import trace
from repro.repository.store import match_score
from repro.serving.metrics import search_latency_schema
from repro.serving.service import MatchService

#: Largest accepted request body; a schema far beyond this is almost
#: certainly a client bug, and bounding it keeps a single connection
#: from ballooning daemon memory.
MAX_BODY_BYTES = 32 * 1024 * 1024

_TEXT_PARSERS = {
    "sql": lambda text, name: parse_sql_ddl(text, name),
    "xml": lambda text, name: parse_xml_schema(text),
    "dtd": lambda text, name: parse_dtd(text, name),
    "oo": lambda text, name: parse_oo_model(text, name),
    "json": lambda text, name: schema_from_dict(json.loads(text)),
}


def schema_from_spec(spec: Any, what: str = "schema") -> Schema:
    """Decode a request's schema spec (see module docstring)."""
    if not isinstance(spec, dict):
        raise BadRequestError(
            f"{what} must be an object with 'schema' or 'text'+'format' "
            f"(got {type(spec).__name__})"
        )
    if "schema" in spec:
        try:
            return schema_from_dict(spec["schema"])
        except ReproError:
            raise
        except Exception as exc:
            raise BadRequestError(
                f"{what}.schema is not a valid serialized schema: {exc}"
            ) from exc
    if "text" in spec:
        fmt = spec.get("format")
        parser = _TEXT_PARSERS.get(fmt)
        if parser is None:
            raise BadRequestError(
                f"{what}.format must be one of "
                f"{sorted(_TEXT_PARSERS)} (got {fmt!r})"
            )
        name = spec.get("name") or "request-schema"
        try:
            return parser(spec["text"], name)
        except ReproError as exc:
            raise BadRequestError(f"{what} failed to parse: {exc}") from exc
    raise BadRequestError(
        f"{what} must carry either 'schema' (serialized) or "
        "'text'+'format' (source text)"
    )


def _positive_int(body: Dict[str, Any], key: str, default=None):
    value = body.get(key, default)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise BadRequestError(f"{key} must be a positive integer")
    return value


def _timeout(body: Dict[str, Any]) -> Optional[float]:
    value = body.get("timeout_s")
    if value is None:
        return None
    if not isinstance(value, (int, float)) or value < 0:
        raise BadRequestError("timeout_s must be a non-negative number")
    return float(value)


def _mapping_payload(query_name, target_name, result) -> Dict[str, Any]:
    payload = mapping_to_dict(
        Mapping(query_name, target_name, list(result.leaf_mapping))
    )
    payload["timings_ms"] = {
        phase: round(seconds * 1000.0, 3)
        for phase, seconds in result.timings.items()
    }
    return payload


class MatchRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the owning server's MatchService."""

    server: "MatchHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._handle("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST", self._route_post)

    def _handle(self, method: str, route) -> None:
        """Request envelope: correlate, span, route, slow-log.

        Minted (or header-supplied) request ids are bound before any
        work so every span, log line, and deadline/overload error
        message produced downstream carries them — even when span
        collection is disarmed.
        """
        rid = self.headers.get("X-Request-Id") or (
            self.server.next_request_id()
        )
        self._request_id = rid
        self._status = 0
        token = trace.bind_request_id(rid)
        self._http_span = trace.start_span(
            "http.request", method=method, path=self.path
        )
        start = time.perf_counter()
        try:
            try:
                route()
            except Exception as exc:
                self._error(exc)
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            trace.end_span(self._http_span, status=self._status)
            slow_ms = self.server.slow_request_ms
            if slow_ms and elapsed_ms >= slow_ms:
                trace.log_event(
                    "slow_request",
                    method=method,
                    path=self.path,
                    status=self._status,
                    elapsed_ms=round(elapsed_ms, 3),
                    threshold_ms=slow_ms,
                )
            trace.unbind_request_id(token)

    def _route_get(self) -> None:
        if self.path == "/health":
            self._respond(200, self.server.service.health())
        elif self.path == "/stats":
            self._respond(200, self.server.service.stats())
        elif self.path == "/metrics":
            self._respond_text(
                200,
                self.server.service.metrics.registry.render_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._respond(404, {
                "error": "NotFound",
                "message": f"no such endpoint: {self.path}",
            })

    def _route_post(self) -> None:
        body = self._read_body()
        if body.get("trace") and self._http_span is None:
            # Per-request tracing: arm the (process-wide) tracer on
            # demand and open the edge span late — it covers the
            # service call, which is where all the time goes.
            trace.arm()
            self._http_span = trace.start_span(
                "http.request", method="POST", path=self.path
            )
        if self.path == "/search":
            self._respond(200, self._search(body))
        elif self.path == "/match":
            self._respond(200, self._match(body))
        elif self.path == "/ingest":
            self._respond(200, self._ingest(body))
        else:
            self._respond(404, {
                "error": "NotFound",
                "message": f"no such endpoint: {self.path}",
            })

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _search(self, body: Dict[str, Any]) -> Dict[str, Any]:
        query = schema_from_spec(body, what="search body")
        k = _positive_int(body, "k", 5)
        candidates = _positive_int(body, "candidates")
        start = time.perf_counter()
        search = self.server.service.search(
            query, k=k, candidates=candidates, timeout=_timeout(body)
        )
        elapsed = time.perf_counter() - start
        matches = []
        for match in search:
            payload = _mapping_payload(
                search.query_name, match.schema_name, match.result
            )
            payload["schema_id"] = match.schema_id
            payload["score"] = round(match.score, 6)
            matches.append(payload)
        response = {
            "query_schema": search.query_name,
            "matches": matches,
            "stats": search.stats,
            "latency_ms": search_latency_schema(
                search.stats,
                elapsed,
                registry=self.server.service.metrics.registry,
            ),
        }
        self._attach_trace(body, response)
        return response

    def _match(self, body: Dict[str, Any]) -> Dict[str, Any]:
        if "source" not in body or "target" not in body:
            raise BadRequestError(
                "match body must carry 'source' and 'target' schema specs"
            )
        source = self._side(body["source"], "source")
        target = self._side(body["target"], "target")
        start = time.perf_counter()
        result = self.server.service.match(
            source, target, timeout=_timeout(body)
        )
        elapsed = time.perf_counter() - start
        payload = _mapping_payload(
            result.source_schema.name, result.target_schema.name, result
        )
        payload["score"] = round(match_score(result), 6)
        payload["latency_ms"] = {
            "total_ms": round(elapsed * 1000.0, 3)
        }
        self._attach_trace(body, payload)
        return payload

    def _attach_trace(
        self, body: Dict[str, Any], response: Dict[str, Any]
    ) -> None:
        """Add the request's span tree when the body asked for it.

        The HTTP edge span is still open while the response is being
        built, so the block carries its completed children — the
        ``serve.*`` span whose subtree spans service → repository →
        pipeline → sharded workers. The edge timing itself is the
        response's ``latency_ms`` block.
        """
        if not body.get("trace"):
            return
        http_span = self._http_span
        if http_span is None:  # pragma: no cover - defensive
            return
        response["trace"] = {
            "request_id": self._request_id,
            "spans": [
                trace.span_tree(child) for child in http_span.children
            ],
        }

    def _side(self, spec: Any, what: str):
        """A match side: a schema spec or {"id": <repository id>}."""
        if isinstance(spec, dict) and "id" in spec:
            schema_id = spec["id"]
            if not isinstance(schema_id, str):
                raise BadRequestError(f"{what}.id must be a string")
            return schema_id
        return schema_from_spec(spec, what=what)

    def _ingest(self, body: Dict[str, Any]) -> Dict[str, Any]:
        specs = body.get("schemas")
        if not isinstance(specs, list) or not specs:
            raise BadRequestError(
                "ingest body must carry a non-empty 'schemas' list"
            )
        schemas = [
            schema_from_spec(spec, what=f"schemas[{i}]")
            for i, spec in enumerate(specs)
        ]
        start = time.perf_counter()
        ids = self.server.service.ingest(schemas, timeout=_timeout(body))
        elapsed = time.perf_counter() - start
        return {
            "ids": ids,
            "schemas": len(self.server.service.repository),
            "latency_ms": {"total_ms": round(elapsed * 1000.0, 3)},
        }

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequestError("request body required")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequestError(f"request body is not JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequestError("request body must be a JSON object")
        return body

    def _respond(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._status = status
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        rid = getattr(self, "_request_id", None)
        if rid:
            self.send_header("X-Request-Id", rid)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def _respond_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        self._status = status
        blob = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        rid = getattr(self, "_request_id", None)
        if rid:
            self.send_header("X-Request-Id", rid)
        self.end_headers()
        self.wfile.write(blob)

    def _error(self, exc: Exception) -> None:
        status = _status_for(exc)
        headers: Dict[str, str] = {}
        if status == 503:
            retry_after = self.server.retry_after_s()
            if retry_after is not None:
                headers["Retry-After"] = str(retry_after)
        body = {
            "error": type(exc).__name__,
            "message": str(exc),
        }
        rid = getattr(self, "_request_id", None)
        if rid:
            body["request_id"] = rid
        try:
            self._respond(status, body, headers=headers)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-error; nothing to salvage

    def log_message(self, format: str, *args) -> None:
        # The daemon's observability lives in /stats, not an access
        # log; stderr chatter would swamp test output and CLI use.
        if self.server.verbose:
            super().log_message(format, *args)


def _status_for(exc: Exception) -> int:
    if isinstance(exc, BadRequestError):
        return 400
    if isinstance(exc, RequestTimeoutError):
        return 504
    if isinstance(exc, (ServiceOverloadedError, ServiceClosedError)):
        return 503
    if isinstance(exc, ParallelError):
        # The worker pool died twice in a row; the service already
        # rebuilt it once, so the client should back off and retry.
        return 503
    if isinstance(exc, ServingError):
        return 500
    if isinstance(exc, RepositoryReadOnlyError):
        # Insufficient Storage: writes are degraded, reads still work.
        return 507
    if isinstance(exc, RepositoryError):
        return 404
    if isinstance(exc, ReproError):
        return 400
    return 500


class MatchHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one MatchService.

    ``daemon_threads`` so a hung client can never block shutdown;
    request concurrency beyond the session pool is throttled by the
    service's admission control, not by the socket layer.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: MatchService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, MatchRequestHandler)
        self.service = service
        self.verbose = verbose
        self.slow_request_ms = service.repository.config.slow_request_ms
        # Counter, not entropy: ids stay unique within the daemon (all
        # correlation needs) and deterministic across replayed request
        # sequences, so pinned-seed chaos runs keep byte-identical
        # error bodies.
        self._request_counter = itertools.count(1)
        # Seedable so pinned-seed chaos runs replay identical
        # Retry-After values; Random(None) still draws OS entropy for
        # the production default.
        self._jitter = random.Random(
            service.repository.config.serving_retry_after_seed
        )

    @property
    def port(self) -> int:
        return self.server_address[1]

    def next_request_id(self) -> str:
        """Mint the next request id (``r000001``, ...). ``next`` on an
        ``itertools.count`` is atomic under the GIL, so connection
        threads need no extra lock."""
        return f"r{next(self._request_counter):06d}"

    def retry_after_s(self) -> Optional[int]:
        """Jittered ``Retry-After`` value for 503 responses.

        Uniform in ``[base, 2*base]`` seconds (rounded up to whole
        seconds, as the header requires) so a fleet of clients that
        all hit an overloaded or healing daemon at once doesn't
        synchronize into a retry stampede. ``None`` (header omitted)
        when ``serving_retry_after_s`` is 0.
        """
        base = self.service.repository.config.serving_retry_after_s
        if not base:
            return None
        return max(1, int(self._jitter.uniform(base, 2.0 * base) + 0.999))


def serve(
    service: MatchService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    ready=None,
) -> None:
    """Run the daemon until interrupted; closes the service on exit.

    ``port=0`` binds an ephemeral port (printed, and reported through
    the optional ``ready`` callback — how tests and the benchmark
    learn the address before sending traffic).

    SIGTERM and SIGINT trigger a graceful shutdown: the accept loop
    stops, in-flight requests drain (bounded by the executor's
    completion of already-admitted work), and ``service.close()``
    flushes pending segments, the manifest, and the simcache before
    the process exits. Handlers are installed best-effort — in a
    non-main thread (embedded use, tests) signal wiring is skipped
    and the caller owns shutdown.
    """
    server = MatchHTTPServer((host, port), service, verbose=verbose)

    def _graceful(signum, frame) -> None:
        # server.shutdown() blocks until serve_forever() returns; a
        # direct call from the handler (which runs on the main thread,
        # inside serve_forever) would deadlock — hand it to a thread.
        threading.Thread(
            target=server.shutdown, name="repro-shutdown", daemon=True
        ).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _graceful)
        except ValueError:
            # Not the main thread; signals stay with the embedder.
            break
    try:
        if ready is not None:
            ready(server)
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except ValueError:
                pass
        server.server_close()
        service.close()
