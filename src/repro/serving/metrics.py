"""Serving metrics: latency histograms, gauges, deadlines.

Small, dependency-free instruments for the match service and its HTTP
front end:

* :class:`LatencyHistogram` — fixed log-spaced buckets over
  [0.05 ms, 120 s]; recording is O(1), snapshots report count / error
  count / mean and p50/p95/p99 read off the bucket boundaries (≤ ~12%
  resolution error by construction — honest for latency reporting,
  bounded memory forever, no reservoir sampling bias);
* :class:`EndpointMetrics` — one histogram plus an in-flight gauge and
  error/timeout counters per endpoint, with a ``track()`` context
  manager the service wraps around request execution;
* :class:`Deadline` — a cooperative per-request timeout: long
  operations call ``check()`` between units of work (the repository
  checks between candidate matches) and get a
  :class:`~repro.exceptions.RequestTimeoutError` naming what timed
  out where;
* :func:`search_latency_schema` — the one timing dict shape both the
  CLI (``repro search --format json``) and the daemon report, so a
  dashboard reads either without translation.

Everything here is thread-safe; recording takes one short lock.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional

from repro.exceptions import RequestTimeoutError

#: Histogram range and resolution: bucket upper bounds grow
#: geometrically from 0.05 ms to ~120 s. GROWTH**2 ≈ 1.26, so a
#: reported percentile is within ~12% of the true value — plenty for
#: p50/p95/p99 dashboards, constant memory regardless of traffic.
_MIN_SECONDS = 0.00005
_MAX_SECONDS = 120.0
_GROWTH = 1.12


def _bucket_bounds() -> List[float]:
    bounds = []
    upper = _MIN_SECONDS
    while upper < _MAX_SECONDS:
        bounds.append(upper)
        upper *= _GROWTH
    bounds.append(float("inf"))
    return bounds


_BOUNDS = _bucket_bounds()


class LatencyHistogram:
    """Log-bucketed latency distribution with percentile readout."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * len(_BOUNDS)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        # Bisect over geometric bounds == log lookup; linear scan is
        # cache-friendly but O(buckets) — use bisect for O(log n).
        low, high = 0, len(_BOUNDS) - 1
        while low < high:
            mid = (low + high) // 2
            if seconds <= _BOUNDS[mid]:
                high = mid
            else:
                low = mid + 1
        with self._lock:
            self._counts[low] += 1
            self._count += 1
            self._total += seconds
            self._min = min(self._min, seconds)
            self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, fraction: float) -> float:
        """The latency (seconds) at ``fraction`` of the distribution
        (0.5 = p50). Returns the matching bucket's upper bound, 0.0
        when nothing was recorded."""
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, math.ceil(self._count * fraction))
            seen = 0
            for i, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    # The overflow bucket has no finite bound; report
                    # the observed max instead of inf.
                    bound = _BOUNDS[i]
                    return self._max if math.isinf(bound) else bound
            return self._max

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            count, total = self._count, self._total
            minimum = 0.0 if math.isinf(self._min) else self._min
            maximum = self._max
        return {
            "count": count,
            "mean_ms": round(total / count * 1000.0, 3) if count else 0.0,
            "min_ms": round(minimum * 1000.0, 3),
            "max_ms": round(maximum * 1000.0, 3),
            "p50_ms": round(self.percentile(0.50) * 1000.0, 3),
            "p95_ms": round(self.percentile(0.95) * 1000.0, 3),
            "p99_ms": round(self.percentile(0.99) * 1000.0, 3),
        }


class EndpointMetrics:
    """Latency + liveness for one endpoint (search/match/ingest/...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.latency = LatencyHistogram()
        self._lock = threading.Lock()
        self._in_flight = 0
        self._errors = 0
        self._timeouts = 0
        self._rejected = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def reject(self) -> None:
        """Count a request refused before execution (overload)."""
        with self._lock:
            self._rejected += 1

    def track(self) -> "_Tracker":
        """Context manager timing one request's execution."""
        return _Tracker(self)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            info = {
                "in_flight": self._in_flight,
                "errors": self._errors,
                "timeouts": self._timeouts,
                "rejected": self._rejected,
            }
        info.update(self.latency.snapshot())
        return info


class _Tracker:
    def __init__(self, metrics: EndpointMetrics) -> None:
        self._metrics = metrics
        self._start = 0.0

    def __enter__(self) -> "_Tracker":
        with self._metrics._lock:
            self._metrics._in_flight += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._metrics.latency.record(elapsed)
        with self._metrics._lock:
            self._metrics._in_flight -= 1
            if exc_type is not None:
                if issubclass(exc_type, RequestTimeoutError):
                    self._metrics._timeouts += 1
                else:
                    self._metrics._errors += 1


class ServiceMetrics:
    """Per-endpoint metrics registry; one per :class:`MatchService`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self.started_at = time.time()

    def endpoint(self, name: str) -> EndpointMetrics:
        with self._lock:
            metrics = self._endpoints.get(name)
            if metrics is None:
                metrics = self._endpoints[name] = EndpointMetrics(name)
            return metrics

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            endpoints = dict(self._endpoints)
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "endpoints": {
                name: metrics.snapshot()
                for name, metrics in sorted(endpoints.items())
            },
        }


class Deadline:
    """A cooperative request deadline.

    ``Deadline(seconds)`` starts the clock immediately; ``check()`` is
    called between units of work and raises
    :class:`RequestTimeoutError` once the budget is spent. ``None`` /
    ``0`` budgets never expire (:meth:`unbounded`).
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds if seconds else None
        self._expires = (
            time.monotonic() + seconds if self.seconds else math.inf
        )

    @classmethod
    def unbounded(cls) -> "Deadline":
        return cls(None)

    def remaining(self) -> float:
        return self._expires - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, context: str) -> None:
        if self.expired():
            raise RequestTimeoutError(
                f"deadline of {self.seconds}s exceeded: {context}"
            )


def search_latency_schema(
    stats: Dict[str, Any], total_seconds: float
) -> Dict[str, float]:
    """The shared CLI/daemon timing block for one search request.

    ``total_ms`` is the caller-observed wall time; ``index_ms`` /
    ``match_ms`` are the repository's own phase timings from the
    search stats. The CLI's ``repro search --format json`` and the
    daemon's ``/search`` response carry exactly this dict under
    ``latency_ms``, so timing dashboards read both identically.
    """
    return {
        "total_ms": round(total_seconds * 1000.0, 3),
        "index_ms": float(stats.get("time_index_ms", 0.0)),
        "match_ms": float(stats.get("time_match_ms", 0.0)),
    }
