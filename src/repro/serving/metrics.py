"""Serving metrics: registry-backed latency instruments + deadlines.

The instruments themselves now live in :mod:`repro.obs.metrics` — a
central :class:`~repro.obs.metrics.MetricsRegistry` owned by the
service. This module keeps the serving-shaped views over them:

* :class:`EndpointMetrics` — per-endpoint latency histogram,
  in-flight gauge, and error/timeout/rejected counters, all
  registered under labelled Prometheus families
  (``repro_request_latency_seconds{endpoint=...}`` etc.), with a
  ``track()`` context manager the service wraps around request
  execution;
* :class:`ServiceMetrics` — one registry per
  :class:`~repro.serving.service.MatchService`; its ``snapshot()``
  feeds ``/stats`` and ``registry.render_prometheus()`` feeds
  ``GET /metrics``, so the two always agree — they read the same
  instrument objects;
* :class:`Deadline` — a cooperative per-request timeout: long
  operations call ``check()`` between units of work (the repository
  checks between candidate matches) and get a
  :class:`~repro.exceptions.RequestTimeoutError` naming what timed
  out where, stamped with the bound request id so 5xx responses are
  attributable in client logs;
* :func:`search_latency_schema` — re-exported from
  :mod:`repro.obs.metrics`: the one timing dict shape both the CLI
  (``repro search --format json``) and the daemon report.

Everything here is thread-safe; recording takes one short lock.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, Optional

from repro.exceptions import RequestTimeoutError
from repro.obs import trace
from repro.obs.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    search_latency_schema,
)

__all__ = [
    "Deadline",
    "EndpointMetrics",
    "LatencyHistogram",
    "ServiceMetrics",
    "search_latency_schema",
]


class EndpointMetrics:
    """Latency + liveness for one endpoint (search/match/ingest/...).

    All instruments are created in the service's shared registry with
    an ``endpoint`` label, so ``GET /metrics`` exposes exactly the
    series ``snapshot()`` summarises."""

    def __init__(self, name: str, registry: MetricsRegistry) -> None:
        self.name = name
        self.latency = registry.histogram(
            "repro_request_latency_seconds",
            "Request execution latency by endpoint.",
            endpoint=name,
        )
        self._errors = registry.counter(
            "repro_request_errors_total",
            "Requests that raised a non-timeout error.",
            endpoint=name,
        )
        self._timeouts = registry.counter(
            "repro_request_timeouts_total",
            "Requests that exceeded their deadline.",
            endpoint=name,
        )
        self._rejected = registry.counter(
            "repro_requests_rejected_total",
            "Requests refused at admission (overload).",
            endpoint=name,
        )
        self._in_flight = registry.gauge(
            "repro_requests_in_flight",
            "Requests currently executing.",
            endpoint=name,
        )

    @property
    def in_flight(self) -> int:
        return int(self._in_flight.value)

    def reject(self) -> None:
        """Count a request refused before execution (overload)."""
        self._rejected.inc()

    def track(self) -> "_Tracker":
        """Context manager timing one request's execution."""
        return _Tracker(self)

    def snapshot(self) -> Dict[str, Any]:
        info = {
            "in_flight": int(self._in_flight.value),
            "errors": self._errors.value,
            "timeouts": self._timeouts.value,
            "rejected": self._rejected.value,
        }
        info.update(self.latency.snapshot())
        return info


class _Tracker:
    def __init__(self, metrics: EndpointMetrics) -> None:
        self._metrics = metrics
        self._start = 0.0

    def __enter__(self) -> "_Tracker":
        self._metrics._in_flight.inc()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._metrics.latency.record(elapsed)
        self._metrics._in_flight.dec()
        if exc_type is not None:
            if issubclass(exc_type, RequestTimeoutError):
                self._metrics._timeouts.inc()
            else:
                self._metrics._errors.inc()


class ServiceMetrics:
    """Per-endpoint metrics; one registry per :class:`MatchService`."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self.started_at = time.time()
        self.registry.callback_gauge(
            "repro_uptime_seconds",
            lambda: time.time() - self.started_at,
            "Seconds since the service's metrics came up.",
        )

    def endpoint(self, name: str) -> EndpointMetrics:
        with self._lock:
            metrics = self._endpoints.get(name)
            if metrics is None:
                metrics = self._endpoints[name] = EndpointMetrics(
                    name, self.registry
                )
            return metrics

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            endpoints = dict(self._endpoints)
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "endpoints": {
                name: metrics.snapshot()
                for name, metrics in sorted(endpoints.items())
            },
        }


class Deadline:
    """A cooperative request deadline.

    ``Deadline(seconds)`` starts the clock immediately; ``check()`` is
    called between units of work and raises
    :class:`RequestTimeoutError` once the budget is spent. ``None`` /
    ``0`` budgets never expire (:meth:`unbounded`). The error message
    carries the bound request id, when one is set, so timeouts are
    attributable end to end.
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds if seconds else None
        self._expires = (
            time.monotonic() + seconds if self.seconds else math.inf
        )

    @classmethod
    def unbounded(cls) -> "Deadline":
        return cls(None)

    def remaining(self) -> float:
        return self._expires - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, context: str) -> None:
        if self.expired():
            rid = trace.request_id()
            suffix = f" [request {rid}]" if rid else ""
            raise RequestTimeoutError(
                f"deadline of {self.seconds}s exceeded: {context}{suffix}"
            )
