"""Serving subsystem: concurrent match service + HTTP/JSON daemon.

Layers (each usable on its own):

* :mod:`repro.serving.metrics` — latency histograms, per-endpoint
  gauges, cooperative deadlines;
* :mod:`repro.serving.service` — :class:`MatchService`, the bounded
  session pool with admission control and background segment
  compaction;
* :mod:`repro.serving.http` — the stdlib ThreadingHTTPServer front
  end behind ``repro serve``.
"""

from repro.serving.http import MatchHTTPServer, serve
from repro.serving.metrics import (
    Deadline,
    EndpointMetrics,
    LatencyHistogram,
    ServiceMetrics,
    search_latency_schema,
)
from repro.serving.service import MatchService

__all__ = [
    "Deadline",
    "EndpointMetrics",
    "LatencyHistogram",
    "MatchHTTPServer",
    "MatchService",
    "ServiceMetrics",
    "search_latency_schema",
    "serve",
]
