"""The concurrent match service: a session pool over a repository.

The paper frames Match as a service over a repository of schemas; the
:class:`~repro.repository.store.SchemaRepository` made the repository
durable, and this module makes it *serve*: a long-lived
:class:`MatchService` multiplexes ``search`` / ``match`` / ``ingest``
requests over a bounded pool of :class:`~repro.pipeline.session.
MatchSession` workers.

Execution model
---------------
Requests run on a thread pool sized to the session pool (one session
per worker thread, so checkout never blocks). Python threads are the
right vehicle here despite the GIL: the dense engine's numpy region
ops release the GIL, artifact loading is I/O, and the shared
linguistic memo plus the repository's persistent simcache mean most of
a warm request's time is spent in vectorized code. Each worker session
keeps its own prepared/lsim LRU tiers (bounded by
``config.max_prepared_schemas``) but all sessions share one pipeline —
and therefore one linguistic memo, preloaded from the repository's
``simcache.json``.

Admission control is explicit: at most ``config.serving_queue_depth``
requests may be admitted-but-unfinished; beyond that the service
raises :class:`~repro.exceptions.ServiceOverloadedError` immediately
(backpressure, not unbounded buffering). Every request carries a
cooperative :class:`~repro.serving.metrics.Deadline` that includes its
queueing time; searches check it between candidate matches, so a
timed-out request releases its session promptly and surfaces
:class:`~repro.exceptions.RequestTimeoutError`.

Ingest batches flush one append-only index segment each; when the
segment sequence exceeds ``config.segment_compaction_threshold`` a
background thread compacts it — ingest requests never pay compaction
latency.

An asyncio front end rides on top for free: every operation has an
``*_async`` twin returning an awaitable (the concurrent future wrapped
with :func:`asyncio.wrap_future`), which is what the HTTP daemon and
embedding event loops use.
"""

from __future__ import annotations

import asyncio
import contextvars
import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Union

from repro import faults
from repro.exceptions import (
    ParallelError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.model.schema import Schema
from repro.obs import trace
from repro.pipeline.prepared import PreparedSchema
from repro.pipeline.result import CupidResult
from repro.pipeline.session import MatchSession
from repro.repository.store import (
    RepositorySearchResult,
    SchemaRepository,
)
from repro.serving.metrics import Deadline, ServiceMetrics
from repro.structure.parallel import available_cpu_count

SchemaLike = Union[Schema, PreparedSchema]


class MatchService:
    """Concurrent search/match/ingest over a schema repository.

    >>> with MatchService(SchemaRepository(path)) as service:
    ...     service.ingest([schema_a, schema_b])
    ...     hits = service.search(query, k=3, candidates=8)
    ...     service.stats()["endpoints"]["search"]["p99_ms"]

    Parameters default to the repository config's serving knobs:
    ``sessions`` (pool width; 0 = one per CPU core), ``queue_depth``
    (admission bound), ``timeout_s`` (default per-request deadline;
    0 = none). The service owns the repository's persistence: closing
    it flushes pending segments, the manifest, and the simcache.
    """

    def __init__(
        self,
        repository: SchemaRepository,
        sessions: Optional[int] = None,
        queue_depth: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        config = repository.config
        width = (
            sessions if sessions is not None else config.serving_sessions
        )
        if width == 0:
            # Available (cgroup/affinity-respecting) cores, not the
            # machine's: a 2-core container on a 64-core host must not
            # get a 64-session pool.
            width = available_cpu_count()
        if width < 1:
            raise ValueError(f"sessions must be >= 0 (got {width})")
        self.repository = repository
        self._width = width
        self._queue_depth = (
            queue_depth
            if queue_depth is not None
            else config.serving_queue_depth
        )
        self._default_timeout = (
            timeout_s if timeout_s is not None else config.serving_timeout_s
        )
        # One session per worker thread; all share the repository
        # pipeline (hence its warm memo and the preloaded simcache),
        # each holds its own LRU-bounded prepared/lsim tiers.
        self._sessions: List[MatchSession] = [
            MatchSession(pipeline=repository.session.pipeline)
            for _ in range(width)
        ]
        self._idle: "queue.Queue[MatchSession]" = queue.Queue()
        for session in self._sessions:
            self._idle.put(session)
        self._executor = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="repro-serve"
        )
        self.metrics = ServiceMetrics()
        self._admission_lock = threading.Lock()
        self._admitted = 0
        self._closed = False
        #: Requests that survived a worker-pool death via the one-shot
        #: fresh-pool retry (the self-healing counter in /stats).
        self._worker_pool_retries = 0
        self._compaction_lock = threading.Lock()
        self._compaction_thread: Optional[threading.Thread] = None
        self._compaction_timer: Optional[threading.Timer] = None
        #: Consecutive background-compaction failures (drives the
        #: exponential backoff; reset on success).
        self._compaction_failures = 0
        #: Total supervised compaction retries ever scheduled.
        self._compaction_retries = 0
        self._compaction_backoff = config.serving_compaction_backoff_s

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _deadline(self, timeout: Optional[float]) -> Deadline:
        if timeout is None:
            timeout = self._default_timeout
        return Deadline(timeout) if timeout else Deadline.unbounded()

    def submit(
        self, endpoint: str, fn, *args, timeout: Optional[float] = None
    ) -> "Future[Any]":
        """Admit a request and schedule it on the pool.

        Returns the :class:`concurrent.futures.Future`; the sync
        wrappers below just wait on it. The deadline starts *now*, so
        time spent queued counts against it.
        """
        metrics = self.metrics.endpoint(endpoint)
        # The rejection paths carry the caller's request id (bound at
        # the HTTP edge) so 5xx responses are attributable end to end.
        rid = trace.request_id()
        rid_suffix = f" [request {rid}]" if rid else ""
        with self._admission_lock:
            if self._closed:
                metrics.reject()
                raise ServiceClosedError(
                    f"{endpoint} rejected: service is closed{rid_suffix}"
                )
            if self._admitted >= self._queue_depth:
                metrics.reject()
                raise ServiceOverloadedError(
                    f"{endpoint} rejected: {self._admitted} requests "
                    f"in flight (queue depth {self._queue_depth})"
                    f"{rid_suffix}"
                )
            self._admitted += 1
        deadline = self._deadline(timeout)
        # Request-scoped contextvars (request id, open span) do not
        # cross executor threads on their own: capture the caller's
        # context now and run the request inside it, so every span and
        # timeout raised on the worker thread stays correlated.
        submit_context = contextvars.copy_context()

        def run() -> Any:
            try:
                with trace.span("serve." + endpoint, endpoint=endpoint):
                    with metrics.track():
                        deadline.check(f"{endpoint} still queued")
                        faults.check("serve.execute")
                        session = self._idle.get()
                        try:
                            try:
                                return fn(session, deadline, *args)
                            except ParallelError:
                                # The dead pool evicted itself from the
                                # process-wide registry, so re-running
                                # the request builds fresh workers. One
                                # retry: a pool that dies twice in a
                                # row is a systemic failure the caller
                                # must see.
                                with self._admission_lock:
                                    self._worker_pool_retries += 1
                                trace.annotate(worker_pool_retry=True)
                                deadline.check(
                                    f"{endpoint} retrying on a fresh "
                                    "worker pool"
                                )
                                return fn(session, deadline, *args)
                        finally:
                            self._idle.put(session)
            finally:
                with self._admission_lock:
                    self._admitted -= 1

        return self._executor.submit(submit_context.run, run)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def search(
        self,
        query: SchemaLike,
        k: int = 5,
        candidates: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> RepositorySearchResult:
        """Top-k repository search on a pool session."""
        return self.submit(
            "search", self._do_search, query, k, candidates,
            timeout=timeout,
        ).result()

    def search_async(
        self,
        query: SchemaLike,
        k: int = 5,
        candidates: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> "asyncio.Future[RepositorySearchResult]":
        return asyncio.wrap_future(
            self.submit(
                "search", self._do_search, query, k, candidates,
                timeout=timeout,
            )
        )

    def _do_search(
        self,
        session: MatchSession,
        deadline: Deadline,
        query: SchemaLike,
        k: int,
        candidates: Optional[int],
    ) -> RepositorySearchResult:
        return self.repository.search(
            query, k=k, candidates=candidates,
            session=session, deadline=deadline,
        )

    def match(
        self,
        source: Union[SchemaLike, str],
        target: Union[SchemaLike, str],
        timeout: Optional[float] = None,
    ) -> CupidResult:
        """Match two schemas on a pool session.

        Either side may be a repository schema id (string), which is
        loaded from the corpus artifacts.
        """
        return self.submit(
            "match", self._do_match, source, target, timeout=timeout
        ).result()

    def match_async(
        self,
        source: Union[SchemaLike, str],
        target: Union[SchemaLike, str],
        timeout: Optional[float] = None,
    ) -> "asyncio.Future[CupidResult]":
        return asyncio.wrap_future(
            self.submit(
                "match", self._do_match, source, target, timeout=timeout
            )
        )

    def _resolve(self, schema: Union[SchemaLike, str]) -> SchemaLike:
        if isinstance(schema, str):
            return self.repository.load(schema)
        return schema

    def _do_match(
        self,
        session: MatchSession,
        deadline: Deadline,
        source: Union[SchemaLike, str],
        target: Union[SchemaLike, str],
    ) -> CupidResult:
        deadline.check("match before execution")
        return session.match(self._resolve(source), self._resolve(target))

    def ingest(
        self,
        schemas: Union[SchemaLike, Sequence[SchemaLike]],
        timeout: Optional[float] = None,
    ) -> List[str]:
        """Ingest one schema or a batch; returns repository ids.

        The whole request is one ingest batch: its profiles flush as
        one append-only index segment, and if the segment sequence has
        outgrown the compaction threshold a *background* compaction is
        scheduled — the request never pays for it.
        """
        return self.submit(
            "ingest", self._do_ingest, schemas, timeout=timeout
        ).result()

    def ingest_async(
        self,
        schemas: Union[SchemaLike, Sequence[SchemaLike]],
        timeout: Optional[float] = None,
    ) -> "asyncio.Future[List[str]]":
        return asyncio.wrap_future(
            self.submit("ingest", self._do_ingest, schemas, timeout=timeout)
        )

    def _do_ingest(
        self,
        session: MatchSession,
        deadline: Deadline,
        schemas: Union[SchemaLike, Sequence[SchemaLike]],
    ) -> List[str]:
        if isinstance(schemas, (Schema, PreparedSchema)):
            schemas = [schemas]
        ids = []
        for position, schema in enumerate(schemas):
            deadline.check(
                f"ingest after {position} of {len(schemas)} schemas"
            )
            ids.append(self.repository.ingest(schema, session=session))
        self.repository.save(auto_compact=False)
        self._maybe_compact()
        return ids

    # ------------------------------------------------------------------
    # Background compaction
    # ------------------------------------------------------------------

    #: Ceiling on the supervised compaction backoff delay, seconds.
    COMPACTION_BACKOFF_CAP_S = 30.0

    def _maybe_compact(self) -> None:
        threshold = self.repository.config.segment_compaction_threshold
        if not threshold:
            return
        if self.repository.segment_count() <= threshold:
            return
        with self._compaction_lock:
            if (
                self._compaction_thread is not None
                and self._compaction_thread.is_alive()
            ):
                return  # one compactor at a time; it folds everything
            if self._compaction_timer is not None:
                return  # a supervised retry is already scheduled
            self._compaction_thread = threading.Thread(
                target=self._compact_now,
                name="repro-compact",
                daemon=True,
            )
            self._compaction_thread.start()

    def _compact_now(self) -> None:
        """Run one background compaction under supervision.

        A failure (e.g. disk full) leaves the longer-but-valid segment
        sequence in place and schedules a retry with capped
        exponential backoff — the service heals itself once the
        condition clears instead of waiting for the next ingest.
        """
        with self._compaction_lock:
            self._compaction_timer = None
        try:
            self.repository.compact()
        except Exception:
            with self._compaction_lock:
                self._compaction_failures += 1
                base = self._compaction_backoff
                if not base or self._closing_for_compaction():
                    return
                delay = min(
                    self.COMPACTION_BACKOFF_CAP_S,
                    base * 2 ** (self._compaction_failures - 1),
                )
                self._compaction_retries += 1
                timer = threading.Timer(delay, self._compact_now)
                timer.daemon = True
                self._compaction_timer = timer
                timer.start()
        else:
            with self._compaction_lock:
                self._compaction_failures = 0

    def _closing_for_compaction(self) -> bool:
        with self._admission_lock:
            return self._closed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Cheap liveness snapshot (no pool dispatch)."""
        with self._admission_lock:
            admitted, closed = self._admitted, self._closed
        return {
            "status": "closed" if closed else "ok",
            "schemas": len(self.repository),
            "segments": self.repository.segment_count(),
            "sessions": self._width,
            "in_flight": admitted,
            "queue_depth": self._queue_depth,
            # A read-only repository still serves searches; liveness
            # stays "ok" so orchestrators don't restart a healthy
            # reader out of a full disk.
            "read_only": self.repository.read_only,
        }

    def stats(self) -> Dict[str, Any]:
        """Full metrics: endpoint latency histograms (p50/p95/p99),
        in-flight gauges, session-pool cache counters, and repository
        counters — the ``/stats`` payload."""
        pool: Dict[str, int] = {}
        for session in self._sessions:
            for key, value in session.cache_info().items():
                if isinstance(value, (int, float)):
                    pool[key] = pool.get(key, 0) + value
        info = self.metrics.snapshot()
        info["health"] = self.health()
        info["session_pool"] = pool
        info["repository"] = self.repository.cache_info()
        recovery = self.repository.recovery_info()
        with self._admission_lock:
            recovery["worker_pool_retries"] = self._worker_pool_retries
        with self._compaction_lock:
            recovery["compaction_retries"] = self._compaction_retries
            recovery["compaction_failures"] = self._compaction_failures
        info["recovery"] = recovery
        return info

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight requests, then flush the repository.

        New requests are rejected with :class:`ServiceClosedError` the
        moment draining starts. Idempotent.
        """
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=True)
        with self._compaction_lock:
            compactor = self._compaction_thread
            if self._compaction_timer is not None:
                self._compaction_timer.cancel()
                self._compaction_timer = None
        if compactor is not None:
            compactor.join(timeout=60.0)
        self.repository.save()

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
