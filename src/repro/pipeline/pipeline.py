"""The composable match pipeline (the paper's "independent component").

A :class:`MatchPipeline` is an ordered list of stages sharing one set
of components (thesaurus, config, compatibility table, linguistic
matcher, TreeMatch, mapping generator). ``run`` threads a
:class:`~repro.pipeline.context.MatchContext` through the stages,
timing each, and assembles a :class:`~repro.pipeline.result.
CupidResult`.

Pipelines are immutable: the composition methods (:meth:`replace_
stage`, :meth:`insert_before`/:meth:`insert_after`, :meth:`without_
stage`, :meth:`with_variant`) return new pipelines sharing the same
components, so a tuned variant and the default can coexist and share
linguistic memo state.

>>> from repro.pipeline import MatchPipeline
>>> pipeline = MatchPipeline.default()
>>> result = pipeline.run(source_schema, target_schema)  # doctest: +SKIP
>>> fast = pipeline.with_variant("mapping", "one-to-one")
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Protocol, Union, runtime_checkable

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.exceptions import ReproError
from repro.obs import trace
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.matcher import LinguisticMatcher, LsimTable
from repro.linguistic.thesaurus import Thesaurus
from repro.mapping.generator import MappingGenerator
from repro.model.datatypes import (
    TypeCompatibilityTable,
    default_compatibility_table,
)
from repro.model.schema import Schema
from repro.pipeline.context import InitialMapping, MatchContext
from repro.pipeline.prepared import PreparedSchema
from repro.pipeline.result import CupidResult
from repro.pipeline.stages import (
    LinguisticStage,
    MappingStage,
    MatchStage,
    StructuralStage,
    TreeBuildStage,
    build_stage_variant,
)
from repro.structure.treematch import TreeMatch

SchemaLike = Union[Schema, PreparedSchema]


@runtime_checkable
class Matcher(Protocol):
    """Anything that matches two schemas into a :class:`CupidResult`.

    :class:`~repro.core.cupid.CupidMatcher`, :class:`MatchPipeline`,
    :class:`~repro.pipeline.session.MatchSession`, and adapted
    baselines (:func:`repro.pipeline.adapters.baseline_pipeline`) all
    satisfy this protocol.
    """

    def match(self, source: Schema, target: Schema) -> CupidResult:
        ...


class MatchPipeline:
    """An ordered, substitutable sequence of match stages.

    Build one with :meth:`default` (the paper's linguistic → trees →
    structural → mapping sequence) and derive variants via the
    composition methods. All derived pipelines share this pipeline's
    components — in particular the linguistic matcher and its
    similarity memo.
    """

    def __init__(
        self,
        stages: List[MatchStage],
        *,
        thesaurus: Thesaurus,
        config: CupidConfig,
        compat: TypeCompatibilityTable,
        linguistic: LinguisticMatcher,
        treematch: TreeMatch,
        generator: MappingGenerator,
    ) -> None:
        if not stages:
            raise ReproError("a match pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ReproError(
                f"duplicate stage names in pipeline: {names}"
            )
        self.stages: List[MatchStage] = list(stages)
        self.thesaurus = thesaurus
        self.config = config
        self.compat = compat
        #: Shared components; stages reference these (or substitutes).
        self.linguistic = linguistic
        self.treematch = treematch
        self.generator = generator

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def default(
        cls,
        thesaurus: Optional[Thesaurus] = None,
        config: Optional[CupidConfig] = None,
        compat: Optional[TypeCompatibilityTable] = None,
    ) -> "MatchPipeline":
        """The standard Cupid pipeline (Sections 5–7)."""
        thesaurus = (
            thesaurus if thesaurus is not None else builtin_thesaurus()
        )
        config = config or DEFAULT_CONFIG
        config.validate()
        compat = compat or default_compatibility_table()
        linguistic = LinguisticMatcher(thesaurus, config)
        treematch = TreeMatch(config, compat)
        generator = MappingGenerator(config)
        stages: List[MatchStage] = [
            LinguisticStage(linguistic),
            TreeBuildStage(),
            StructuralStage(treematch),
            MappingStage(generator, treematch),
        ]
        return cls(
            stages,
            thesaurus=thesaurus,
            config=config,
            compat=compat,
            linguistic=linguistic,
            treematch=treematch,
            generator=generator,
        )

    def _with_stages(self, stages: List[MatchStage]) -> "MatchPipeline":
        return MatchPipeline(
            stages,
            thesaurus=self.thesaurus,
            config=self.config,
            compat=self.compat,
            linguistic=self.linguistic,
            treematch=self.treematch,
            generator=self.generator,
        )

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def get_stage(self, name: str) -> MatchStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ReproError(
            f"pipeline has no stage {name!r} "
            f"(stages: {self.stage_names()})"
        )

    def _index_of(self, name: str) -> int:
        for i, stage in enumerate(self.stages):
            if stage.name == name:
                return i
        raise ReproError(
            f"pipeline has no stage {name!r} "
            f"(stages: {self.stage_names()})"
        )

    def replace_stage(self, name: str, stage: MatchStage) -> "MatchPipeline":
        """New pipeline with the named stage swapped for ``stage``."""
        i = self._index_of(name)
        stages = list(self.stages)
        stages[i] = stage
        return self._with_stages(stages)

    def insert_before(self, name: str, stage: MatchStage) -> "MatchPipeline":
        """New pipeline with ``stage`` inserted before the named stage."""
        i = self._index_of(name)
        stages = list(self.stages)
        stages.insert(i, stage)
        return self._with_stages(stages)

    def insert_after(self, name: str, stage: MatchStage) -> "MatchPipeline":
        """New pipeline with ``stage`` inserted after the named stage."""
        i = self._index_of(name)
        stages = list(self.stages)
        stages.insert(i + 1, stage)
        return self._with_stages(stages)

    def without_stage(self, name: str) -> "MatchPipeline":
        """New pipeline with the named stage removed."""
        i = self._index_of(name)
        stages = list(self.stages)
        del stages[i]
        return self._with_stages(stages)

    def with_variant(self, name: str, variant: str) -> "MatchPipeline":
        """New pipeline with a registered variant of the named stage.

        Known variants: ``linguistic=off``, ``structural=no-context``,
        ``mapping=one-to-one``, ``mapping=hungarian`` (see
        :data:`repro.pipeline.stages.STAGE_VARIANTS`).
        """
        if variant == "default":
            return self
        return self.replace_stage(
            name, build_stage_variant(name, variant, self)
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def prepare(self, schema: SchemaLike) -> PreparedSchema:
        """Wrap ``schema`` in a (lazy) :class:`PreparedSchema`."""
        if isinstance(schema, PreparedSchema):
            return schema
        return PreparedSchema(schema, self.linguistic, self.config)

    def run(
        self,
        source: SchemaLike,
        target: SchemaLike,
        initial_mapping: Optional[InitialMapping] = None,
        lsim_table: Optional[LsimTable] = None,
    ) -> CupidResult:
        """Run every stage over ``source`` × ``target``.

        Accepts raw :class:`Schema` objects (prepared on the fly, like
        the monolithic matcher did) or :class:`PreparedSchema` objects
        whose cached artifacts are reused. ``lsim_table`` pre-seeds the
        context so the linguistic stage is skipped — the session-level
        cache hook.
        """
        prep_s = self.prepare(source)
        prep_t = self.prepare(target)
        context = MatchContext(
            config=self.config,
            thesaurus=self.thesaurus,
            compat=self.compat,
            source=prep_s,
            target=prep_t,
            initial_mapping=initial_mapping,
            lsim_table=lsim_table,
        )
        run_span = trace.start_span("pipeline.run")
        try:
            for stage in self.stages:
                with trace.span("stage." + stage.timing_key, stage=stage.name):
                    start = time.perf_counter()
                    stage.run(context)
                    elapsed = time.perf_counter() - start
                context.timings[stage.timing_key] = (
                    context.timings.get(stage.timing_key, 0.0) + elapsed
                )
        finally:
            trace.end_span(run_span)
        if context.leaf_mapping is None or context.nonleaf_mapping is None:
            raise ReproError(
                "pipeline finished without producing mappings "
                f"(stages: {self.stage_names()})"
            )
        return CupidResult(
            source_schema=prep_s.schema,
            target_schema=prep_t.schema,
            lsim_table=context.lsim_table,
            source_tree=context.source_tree,
            target_tree=context.target_tree,
            treematch_result=context.treematch_result,
            leaf_mapping=context.leaf_mapping,
            nonleaf_mapping=context.nonleaf_mapping,
            timings=context.timings,
        )

    def match(
        self,
        source: SchemaLike,
        target: SchemaLike,
        initial_mapping: Optional[InitialMapping] = None,
    ) -> CupidResult:
        """Alias for :meth:`run` (satisfies the :class:`Matcher`
        protocol)."""
        return self.run(source, target, initial_mapping=initial_mapping)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def run_stats(
        self, result: CupidResult, include_memo: bool = True
    ) -> Dict[str, object]:
        """Counter dump for one match run (``--stats`` / JSON output).

        Collects the TreeMatch pair counters, the dense store's shape,
        and the linguistic memo's hit rates — the numbers to eyeball
        when a perf regression needs triage. The memo counters are
        cumulative over the pipeline's lifetime, not per run; pass
        ``include_memo=False`` when reporting per-match stats for a
        session (the session reports the memo once instead).
        """
        stats: Dict[str, object] = {"engine": self.config.engine}
        tm = result.treematch_result
        if tm is not None:
            stats.update(
                compared_pairs=tm.compared_pairs,
                pruned_pairs=tm.pruned_pairs,
                scaled_pairs=tm.scaled_pairs,
            )
            if tm.recompute_pairs:
                # Dirty-set effectiveness of the incremental second
                # TreeMatch pass (the reference engine always rescans:
                # its dirty fraction reads 1.0).
                stats.update(
                    recompute_pairs=tm.recompute_pairs,
                    recompute_dirty_pairs=tm.recompute_dirty,
                    recompute_skipped_pairs=tm.recompute_skipped,
                    # Pairs whose depth-pruned frontier contains
                    # non-leaf stand-ins, so the dirty-set skip had to
                    # stand down (explains skip rates under
                    # leaf_prune_depth > 0).
                    recompute_standdown_pairs=tm.recompute_standdown,
                    recompute_dirty_fraction=round(
                        tm.recompute_dirty / tm.recompute_pairs, 4
                    ),
                )
            describe = getattr(tm.sims, "describe", None)
            if describe is not None:
                stats.update(describe())
        if result.lsim_table is not None:
            kernel_stats = getattr(result.lsim_table, "kernel_stats", None)
            if kernel_stats:
                # Distinct-name kernel counters (vocabulary sizes and
                # the dedup rate of the linguistic phase).
                stats.update(kernel_stats)
            stats["lsim_entries"] = len(result.lsim_table)
        stats["leaf_mappings"] = len(result.leaf_mapping)
        stats["nonleaf_mappings"] = len(result.nonleaf_mapping)
        memo = self.linguistic.memo
        if include_memo and memo is not None:
            stats.update(memo.stats())
        for phase, seconds in result.timings.items():
            stats[f"time_{phase}_ms"] = round(seconds * 1000.0, 3)
        return stats
