"""The concrete match-pipeline stages and their substitutable variants.

The body of the old monolithic ``CupidMatcher.match`` is split into
four stages, each a small object with a ``run(context)`` method:

* :class:`LinguisticStage` — lsim table (paper Section 5),
* :class:`TreeBuildStage` — schema trees + initial-mapping hints
  (Sections 4 and 8.4),
* :class:`StructuralStage` — TreeMatch (Section 6 / Figure 3),
* :class:`MappingStage` — leaf and non-leaf mapping generation
  (Section 7).

A stage is anything satisfying :class:`MatchStage`: a ``name`` (the
pipeline's substitution handle), a ``timing_key`` (where its wall time
lands in ``CupidResult.timings``), and ``run``. The registry at the
bottom maps ``(stage name, variant name)`` to alternative
implementations, which is what the CLI's ``--pipeline`` flag and
``MatchPipeline.with_variant`` use.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.exceptions import MappingError, ReproError
from repro.linguistic.matcher import LinguisticMatcher, LsimTable
from repro.obs import trace
from repro.mapping.assignment import greedy_one_to_one, hungarian_one_to_one
from repro.mapping.generator import MappingGenerator
from repro.pipeline.context import MatchContext, path_parts
from repro.structure.treematch import TreeMatch


@runtime_checkable
class MatchStage(Protocol):
    """One interchangeable phase of a match pipeline."""

    #: Substitution handle, unique within a pipeline.
    name: str
    #: Key under which the pipeline records this stage's wall time.
    timing_key: str

    def run(self, context: MatchContext) -> None:
        """Read earlier artifacts off ``context``, write your own."""
        ...


class LinguisticStage:
    """Computes the lsim table (Section 5) from prepared schemas.

    Skips itself when ``context.lsim_table`` is already set — that is
    the cache hook :class:`~repro.pipeline.session.MatchSession` uses
    to reuse a table computed for the same schema pair earlier.

    With the dense engine the matcher routes through the distinct-name
    kernel (:mod:`repro.linguistic.kernel`), producing a factored
    table whose per-schema vocabularies live on the prepared schemas —
    bit-identical values, deduplicated work on repetitive schemas.
    """

    name = "linguistic"
    timing_key = "linguistic"

    def __init__(self, matcher: LinguisticMatcher) -> None:
        self.matcher = matcher

    def run(self, context: MatchContext) -> None:
        if context.lsim_table is not None:
            trace.annotate(lsim_cached=True)
            return
        context.lsim_table = self.matcher.compute_prepared(
            context.source.linguistic, context.target.linguistic
        )
        trace.annotate(lsim_pairs=len(context.lsim_table))


class EmptyLinguisticStage:
    """``linguistic=off`` variant: no linguistic knowledge at all.

    Produces an empty lsim table, so wsim is driven purely by data-type
    compatibility and structure — the structure-only ablation.
    """

    name = "linguistic"
    timing_key = "linguistic"

    def run(self, context: MatchContext) -> None:
        if context.lsim_table is None:
            context.lsim_table = LsimTable()


class TreeBuildStage:
    """Materializes both schema trees and applies initial-mapping hints.

    The trees come from the :class:`PreparedSchema` artifacts (built
    now if this is the schema's first match, reused otherwise). Hints
    implement Section 8.4's user-interaction loop: each hinted pair's
    lsim is raised to ``config.initial_mapping_lsim`` before structure
    matching.
    """

    name = "trees"
    timing_key = "trees"

    def run(self, context: MatchContext) -> None:
        context.source_tree = context.source.tree
        context.target_tree = context.target.tree
        if context.initial_mapping:
            if context.lsim_table is None:
                raise ReproError(
                    "initial_mapping hints need an lsim table to apply "
                    "to, but no stage before the tree-build stage "
                    "produced one (this pipeline cannot honor "
                    "user feedback)"
                )
            self._apply_initial_mapping(context)

    @staticmethod
    def _apply_initial_mapping(context: MatchContext) -> None:
        value = context.config.initial_mapping_lsim
        for source_path, target_path in context.initial_mapping:
            try:
                s = context.source_tree.node_for_path(
                    *path_parts(source_path)
                )
                t = context.target_tree.node_for_path(
                    *path_parts(target_path)
                )
            except KeyError as exc:
                raise MappingError(
                    f"initial mapping refers to unknown path: {exc}"
                ) from exc
            context.lsim_table.set(s.element, t.element, value)


class StructuralStage:
    """Runs TreeMatch (Figure 3) and stores its result on the context.

    Hands the dense engine the prepared leaf layouts so per-schema
    index work is not repeated across a session's matches.
    """

    name = "structural"
    timing_key = "treematch"

    def __init__(self, treematch: TreeMatch) -> None:
        self.treematch = treematch

    def run(self, context: MatchContext) -> None:
        if context.lsim_table is None or context.source_tree is None:
            raise ReproError(
                "structural stage needs lsim_table and trees; run the "
                "linguistic and tree-build stages (or seed the context) "
                "first"
            )
        layouts = (None, None)
        if self.treematch.config.engine == "dense":
            layouts = (context.source.leaf_layout, context.target.leaf_layout)
        context.treematch_result = self.treematch.run(
            context.source_tree,
            context.target_tree,
            context.lsim_table,
            source_layout=layouts[0],
            target_layout=layouts[1],
        )


class _NoContextTreeMatch(TreeMatch):
    """TreeMatch without the cinc/cdec context adjustment.

    Leaf similarities keep their initial type-compatibility + lsim
    blend; ancestors still aggregate strong links. Quantifies how much
    of Cupid's quality comes from context propagation."""

    def _scale_leaf_pairs(self, s, t, sims, factor):
        return 0


class MappingStage:
    """Generates leaf and non-leaf mappings (Section 7).

    ``extract`` optionally post-processes the naive 1:n leaf mapping
    into a 1:1 one: ``"one-to-one"`` (greedy) or ``"hungarian"``
    (optimal assignment).
    """

    name = "mapping"
    timing_key = "mapping"

    def __init__(
        self,
        generator: MappingGenerator,
        treematch: TreeMatch,
        extract: Optional[str] = None,
    ) -> None:
        if extract not in (None, "one-to-one", "hungarian"):
            raise ReproError(
                f"unknown mapping extraction {extract!r} "
                "(expected 'one-to-one' or 'hungarian')"
            )
        self.generator = generator
        self.treematch = treematch
        self.extract = extract

    def run(self, context: MatchContext) -> None:
        result = context.treematch_result
        if result is None:
            raise ReproError(
                "mapping stage needs a TreeMatch result; run the "
                "structural stage first"
            )
        leaf = self.generator.leaf_mapping(result)
        if self.extract == "one-to-one":
            leaf = greedy_one_to_one(leaf)
        elif self.extract == "hungarian":
            leaf = hungarian_one_to_one(leaf)
        context.leaf_mapping = leaf
        context.nonleaf_mapping = self.generator.nonleaf_mapping(
            result, self.treematch
        )


# ----------------------------------------------------------------------
# Variant registry (CLI --pipeline and MatchPipeline.with_variant)
# ----------------------------------------------------------------------

#: stage name -> tuple of known variant names (besides "default").
STAGE_VARIANTS = {
    "linguistic": ("off",),
    "structural": ("no-context",),
    "mapping": ("one-to-one", "hungarian"),
}


def build_stage_variant(stage_name: str, variant: str, pipeline) -> object:
    """Instantiate the ``variant`` implementation of ``stage_name``,
    wired to ``pipeline``'s shared components."""
    if stage_name == "linguistic" and variant == "off":
        return EmptyLinguisticStage()
    if stage_name == "structural" and variant == "no-context":
        return StructuralStage(
            _NoContextTreeMatch(pipeline.config, pipeline.compat)
        )
    if stage_name == "mapping" and variant in STAGE_VARIANTS["mapping"]:
        return MappingStage(
            pipeline.generator, pipeline.treematch, extract=variant
        )
    known = ", ".join(
        f"{stage}={v}"
        for stage, variants in STAGE_VARIANTS.items()
        for v in variants
    )
    raise ReproError(
        f"unknown pipeline stage variant {stage_name}={variant} "
        f"(known: {known})"
    )
