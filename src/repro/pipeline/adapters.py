"""Adapters that turn the Section 9 baselines into match pipelines.

The paper compares Cupid against other matchers by running each over
the same schema pairs; with these adapters every baseline is a
:class:`~repro.pipeline.pipeline.MatchPipeline` satisfying the same
:class:`~repro.pipeline.pipeline.Matcher` protocol and producing
:class:`~repro.pipeline.result.CupidResult`-compatible output, so the
evaluation harness, CLI, and benchmarks can drive them
interchangeably.

A baseline whose ``match(source, target)`` already returns a
:class:`~repro.mapping.mapping.Mapping` (``PathNameMatcher``,
``TopDownMatcher``) adapts directly; matchers with their own result
types (``MomisMatcher``'s clusters, ``DikeMatcher``'s ER-model domain)
need an ``extract`` callable converting their output to a ``Mapping``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import CupidConfig
from repro.exceptions import ReproError
from repro.linguistic.thesaurus import Thesaurus
from repro.mapping.mapping import Mapping
from repro.model.datatypes import TypeCompatibilityTable
from repro.pipeline.context import MatchContext
from repro.pipeline.pipeline import MatchPipeline
from repro.pipeline.stages import TreeBuildStage


class BaselineStage:
    """Runs a whole baseline matcher as one pipeline stage.

    Replaces the linguistic/structural/mapping stages: the baseline's
    leaf-level output becomes ``leaf_mapping``; ``nonleaf_mapping`` is
    empty and the Cupid-specific artifacts stay ``None`` on the
    result.
    """

    name = "baseline"
    timing_key = "baseline"

    def __init__(
        self,
        matcher,
        extract: Optional[Callable[[object], Mapping]] = None,
    ) -> None:
        self.matcher = matcher
        self.extract = extract

    def run(self, context: MatchContext) -> None:
        outcome = self.matcher.match(
            context.source.schema, context.target.schema
        )
        if self.extract is not None:
            outcome = self.extract(outcome)
        if not isinstance(outcome, Mapping):
            raise ReproError(
                f"baseline {type(self.matcher).__name__} returned "
                f"{type(outcome).__name__}, not a Mapping — supply an "
                "extract= callable to baseline_pipeline()"
            )
        context.leaf_mapping = outcome
        context.nonleaf_mapping = Mapping(
            context.source.schema.name, context.target.schema.name
        )


def baseline_pipeline(
    matcher,
    *,
    thesaurus: Optional[Thesaurus] = None,
    config: Optional[CupidConfig] = None,
    compat: Optional[TypeCompatibilityTable] = None,
    extract: Optional[Callable[[object], Mapping]] = None,
) -> MatchPipeline:
    """Wrap a baseline matcher as a two-stage pipeline.

    The tree-build stage still runs (baselines are judged on the same
    expanded trees, and the result needs trees for path resolution);
    the baseline stage then produces the mapping.
    """
    default = MatchPipeline.default(
        thesaurus=thesaurus, config=config, compat=compat
    )
    return default._with_stages(
        [TreeBuildStage(), BaselineStage(matcher, extract=extract)]
    )
