"""The explicit state threaded between match-pipeline stages.

The paper positions Match as "an independent component" built from
interchangeable phases; :class:`MatchContext` is the contract between
those phases. Each :class:`~repro.pipeline.stages.MatchStage` reads the
artifacts earlier stages produced (prepared schemas, the lsim table,
schema trees, the TreeMatch result) and writes its own, so stages can
be substituted, inserted, or skipped without the pipeline knowing what
any particular stage computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.config import CupidConfig
from repro.linguistic.thesaurus import Thesaurus
from repro.model.datatypes import TypeCompatibilityTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.linguistic.matcher import LsimTable
    from repro.mapping.mapping import Mapping
    from repro.pipeline.prepared import PreparedSchema
    from repro.structure.treematch import TreeMatchResult
    from repro.tree.schema_tree import SchemaTree

#: An initial-mapping hint: a (source, target) pair of containment
#: paths, each given as a dotted string ("POLines.Item.Qty") or a tuple
#: of names below the schema root.
PathLike = Union[str, Sequence[str]]
InitialMapping = Iterable[Tuple[PathLike, PathLike]]


def path_parts(path: PathLike) -> Tuple[str, ...]:
    """Split a dotted path string (or pass a tuple through)."""
    if isinstance(path, str):
        return tuple(p for p in path.split(".") if p)
    return tuple(path)


@dataclass
class MatchContext:
    """Mutable state of one match run, threaded through the stages.

    ``config`` / ``thesaurus`` / ``compat`` are the run's knowledge and
    control parameters; ``source`` / ``target`` carry the per-schema
    prepared artifacts; the remaining fields are filled in by the
    stages (``lsim_table`` by the linguistic stage, the trees by the
    tree-build stage, and so on). A field arriving pre-set is a cache
    hook: the default linguistic stage, for example, skips itself when
    ``lsim_table`` is already present (how :class:`MatchSession` reuses
    a cached table for a schema pair it has matched before).

    ``extras`` is a free-form scratch dict for user-defined stages that
    need to hand data to a later user-defined stage.
    """

    config: CupidConfig
    thesaurus: Thesaurus
    compat: TypeCompatibilityTable
    source: "PreparedSchema"
    target: "PreparedSchema"
    initial_mapping: Optional[InitialMapping] = None
    lsim_table: Optional["LsimTable"] = None
    source_tree: Optional["SchemaTree"] = None
    target_tree: Optional["SchemaTree"] = None
    treematch_result: Optional["TreeMatchResult"] = None
    leaf_mapping: Optional["Mapping"] = None
    nonleaf_mapping: Optional["Mapping"] = None
    #: Wall-clock seconds per stage timing key, filled by the pipeline.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Scratch space for user-defined stages.
    extras: Dict[str, object] = field(default_factory=dict)
