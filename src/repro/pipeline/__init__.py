"""Composable match pipelines, prepared schemas, and match sessions.

This package is the architectural seam of the reproduction: the paper
positions Match as "an independent component" with interchangeable
phases, and everything here makes that literal.

* :class:`MatchStage` / :mod:`repro.pipeline.stages` — the phase
  contract plus the four concrete Cupid stages (linguistic, trees,
  structural, mapping) extracted from the old monolithic matcher.
* :class:`MatchPipeline` — composes stages, threads a
  :class:`MatchContext` between them, supports stage substitution,
  insertion, and registered variants (``--pipeline`` on the CLI).
* :class:`PreparedSchema` — the one-time per-schema work
  (normalization, categorization, tree construction, dense leaf
  layout), computed lazily and cached. The dense engine's distinct-name
  **vocabulary** (:class:`repro.linguistic.kernel.SchemaVocabulary` —
  distinct normalized names, category classes, element profiles) is a
  further tier here: built by the first kernel match a schema
  participates in, retained on the cached linguistic preparation, and
  reused by every later match against any partner
  (``PreparedSchema.vocabulary``; sizes surface in
  ``MatchSession.cache_info()`` and ``--stats``).
* :class:`MatchSession` — caches ``PreparedSchema``s and per-pair lsim
  tables: ``session.match(a, b)``, ``session.match_many(source,
  targets)``, ``session.rematch(result, feedback=...)``.
* :func:`baseline_pipeline` / :class:`BaselineStage` — run the
  Section 9 baselines through the same :class:`Matcher` protocol with
  :class:`CupidResult`-compatible output.

:class:`repro.CupidMatcher` remains a thin backward-compatible shim
over ``MatchPipeline.default()``.
"""

from repro.pipeline.adapters import BaselineStage, baseline_pipeline
from repro.pipeline.context import InitialMapping, MatchContext, PathLike
from repro.pipeline.pipeline import Matcher, MatchPipeline
from repro.pipeline.prepared import PreparedSchema
from repro.pipeline.result import CupidResult
from repro.pipeline.session import MatchSession
from repro.pipeline.stages import (
    STAGE_VARIANTS,
    EmptyLinguisticStage,
    LinguisticStage,
    MappingStage,
    MatchStage,
    StructuralStage,
    TreeBuildStage,
)

__all__ = [
    "BaselineStage",
    "CupidResult",
    "EmptyLinguisticStage",
    "InitialMapping",
    "LinguisticStage",
    "MappingStage",
    "MatchContext",
    "MatchPipeline",
    "MatchSession",
    "MatchStage",
    "Matcher",
    "PathLike",
    "PreparedSchema",
    "STAGE_VARIANTS",
    "StructuralStage",
    "TreeBuildStage",
    "baseline_pipeline",
]
