"""Per-schema preparation, computed once and reused across matches.

The monolithic ``CupidMatcher.match`` re-did all of this on every call:
name normalization, categorization, schema-tree construction (plus
join-view augmentation), and the dense engine's leaf-index layout. None
of it depends on the *partner* schema — only on (schema, thesaurus,
config) — so in the paper's own motivating scenarios (matching one
mediated schema against N sources, warehouse loading) it is pure
repeated work.

:class:`PreparedSchema` captures that work lazily: each artifact is
built on first access and cached. A :class:`~repro.pipeline.session.
MatchSession` keeps one ``PreparedSchema`` per schema, which is where
the one-vs-many batch speedup comes from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import CupidConfig
from repro.model.schema import Schema
from repro.structure.dense import LeafLayout
from repro.tree.construction import construct_schema_tree
from repro.tree.lazy import construct_schema_tree_lazy
from repro.tree.refint import augment_with_join_views
from repro.tree.schema_tree import SchemaTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.linguistic.matcher import (
        LinguisticMatcher,
        LinguisticPreparation,
    )


class PreparedSchema:
    """Lazily-built, cached per-schema match artifacts.

    Construction is free; each artifact is computed on first access:

    * :attr:`linguistic` — normalized names + categories (Section 5's
      per-schema half).
    * :attr:`tree` — the expanded schema tree, with join views when
      ``config.use_refint_joins`` is set (Sections 8.2/8.3).
    * :attr:`leaf_layout` — the dense engine's leaf-index layout.

    The artifacts are tied to the preparing pipeline's thesaurus and
    config; reusing a ``PreparedSchema`` under a different config is
    undefined (a :class:`~repro.pipeline.session.MatchSession` never
    does).
    """

    __slots__ = ("schema", "_linguistic_matcher", "_config",
                 "_linguistic", "_tree", "_layout")

    def __init__(
        self,
        schema: Schema,
        linguistic_matcher: "LinguisticMatcher",
        config: CupidConfig,
    ) -> None:
        self.schema = schema
        self._linguistic_matcher = linguistic_matcher
        self._config = config
        self._linguistic: Optional["LinguisticPreparation"] = None
        self._tree: Optional[SchemaTree] = None
        self._layout: Optional[LeafLayout] = None

    @classmethod
    def from_artifacts(
        cls,
        schema: Schema,
        linguistic_matcher: "LinguisticMatcher",
        config: CupidConfig,
        linguistic: "LinguisticPreparation",
    ) -> "PreparedSchema":
        """A prepared schema seeded with a restored linguistic tier.

        The deserialization hook for
        :mod:`repro.repository.artifacts`: the (expensive) linguistic
        preparation — and, via ``linguistic.vocabulary``, the kernel
        vocabulary — comes off disk instead of being computed, while
        the tree and leaf layout stay lazy (they rebuild
        deterministically from the schema). ``linguistic`` must be the
        exact artifact :meth:`linguistic` would have produced under
        this matcher and config; bit-parity of later matches is the
        caller's contract.
        """
        prepared = cls(schema, linguistic_matcher, config)
        prepared._linguistic = linguistic
        return prepared

    def build_all(self) -> "PreparedSchema":
        """Force every lazy tier now (ingest-time eager build).

        Touches :attr:`linguistic`, the kernel vocabulary (when the
        matcher would actually route matches through it), :attr:`tree`,
        and :attr:`leaf_layout`, so serialization sees fully-built
        artifacts and the cold-start cost is paid at ingest, not on the
        first search that hits this schema. Returns ``self``.
        """
        linguistic = self.linguistic
        if self._linguistic_matcher.kernel_applicable():
            self._linguistic_matcher.vocabulary(linguistic)
        self.tree
        self.leaf_layout
        return self

    def prepared_by(self, linguistic_matcher: "LinguisticMatcher") -> bool:
        """Whether this schema was prepared by ``linguistic_matcher``.

        Artifacts are only valid under the matcher (thesaurus + config)
        that built them; boundaries that persist them — the repository's
        ingest — use this to detect a foreign ``PreparedSchema`` and
        re-prepare under their own components instead of silently
        storing mismatched tiers.
        """
        return self._linguistic_matcher is linguistic_matcher

    @property
    def linguistic(self) -> "LinguisticPreparation":
        """Normalized names and categories (built once)."""
        if self._linguistic is None:
            self._linguistic = self._linguistic_matcher.prepare(self.schema)
        return self._linguistic

    @property
    def vocabulary(self):
        """The distinct-name vocabulary, if the kernel has built it.

        The vocabulary (:class:`repro.linguistic.kernel.
        SchemaVocabulary`) is attached to the cached
        :class:`LinguisticPreparation` by the first kernel match this
        schema participates in, making it another per-schema cache
        tier; returns None while unbuilt (never forces a build — the
        reference engine has no use for it).
        """
        if self._linguistic is None:
            return None
        return self._linguistic.vocabulary

    @property
    def tree(self) -> SchemaTree:
        """The expanded schema tree (built once, config-dependent).

        Construction (and, for ``use_refint_joins``, join-view
        augmentation) stamps the pre/post-order interval encoding —
        :meth:`SchemaTree.reindex` — so the tree arrives with window
        addressing already valid, and a restored schema re-derives
        the identical encoding deterministically (the persisted
        ``leaf_order`` artifact is exactly this traversal's leaf
        order; ``SchemaRepository.verify`` cross-checks both).
        """
        if self._tree is None:
            build = (
                construct_schema_tree_lazy
                if self._config.lazy_expansion
                else construct_schema_tree
            )
            tree = build(self.schema)
            if self._config.use_refint_joins:
                augment_with_join_views(tree)
            self._tree = tree
        return self._tree

    @property
    def leaf_layout(self) -> LeafLayout:
        """Dense leaf-index layout over :attr:`tree` (built once)."""
        if self._layout is None:
            self._layout = LeafLayout(self.tree)
        return self._layout

    def __getstate__(self):
        """Pickle support (slots classes get no default protocol-0/1
        state): carry the schema, matcher, config, and the expensive
        linguistic tier; drop the tree and leaf layout. Both rebuild
        deterministically from (schema, config) on next access, and
        dropping them keeps payloads small and avoids pickling the
        tree's densely cross-referenced parent/child node graph."""
        return (
            self.schema,
            self._linguistic_matcher,
            self._config,
            self._linguistic,
        )

    def __setstate__(self, state) -> None:
        (
            self.schema,
            self._linguistic_matcher,
            self._config,
            self._linguistic,
        ) = state
        self._tree = None
        self._layout = None

    def cache_info(self) -> dict:
        """Which artifact tiers are built, and the layout's leaf count.

        The leaf count is what sizes the similarity plane: together
        with :meth:`MatchSession.cache_info`'s tile-occupancy counters
        it shows how much of the ``n_s×n_t`` plane the blocked store
        actually materialized.
        """
        info = {
            "linguistic_built": self._linguistic is not None,
            "vocabulary_built": self.vocabulary is not None,
            "tree_built": self._tree is not None,
            "leaf_layout_built": self._layout is not None,
        }
        if self._layout is not None:
            info["leaves"] = len(self._layout.leaves)
        return info

    def __repr__(self) -> str:
        built = [
            name for name, attr in (
                ("linguistic", self._linguistic),
                ("vocabulary", self.vocabulary),
                ("tree", self._tree),
                ("layout", self._layout),
            ) if attr is not None
        ]
        state = ", ".join(built) if built else "nothing built yet"
        return f"<PreparedSchema {self.schema.name!r}: {state}>"
