"""Session-oriented matching: prepare once, match many times.

The paper's own deployment scenarios are batch-shaped: a mediated
schema matched against N source schemas, a warehouse schema matched
against each incoming feed, a user iterating hint → re-match on the
same pair. The monolithic ``CupidMatcher.match`` re-did every per-
schema phase on each call; a :class:`MatchSession` caches them:

* one :class:`~repro.pipeline.prepared.PreparedSchema` per schema
  (normalization, categorization, tree construction, dense leaf
  layout), shared across every match that schema participates in;
* one lsim table per (source, target) pair, so re-matching the same
  pair — the Section 8.4 iterative-feedback loop — skips the linguistic
  phase entirely (:meth:`rematch`);
* the pipeline's linguistic memo, warm across all of the session's
  matches.

Results are bit-identical to independent ``CupidMatcher.match`` calls:
everything cached is a pure function of (schema, thesaurus, config).

>>> from repro import MatchSession
>>> session = MatchSession()
>>> results = session.match_many(mediated, sources)     # doctest: +SKIP
>>> better = session.rematch(results[0],
...     feedback=[("Order.Qty", "PO.Quantity")])        # doctest: +SKIP
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import CupidConfig
from repro.linguistic.matcher import LsimTable
from repro.linguistic.thesaurus import Thesaurus
from repro.model.datatypes import TypeCompatibilityTable
from repro.model.schema import Schema
from repro.pipeline.context import InitialMapping
from repro.pipeline.pipeline import MatchPipeline, SchemaLike
from repro.pipeline.prepared import PreparedSchema
from repro.pipeline.result import CupidResult


class MatchSession:
    """Caches per-schema and per-pair artifacts across matches.

    Parameters mirror :class:`~repro.core.cupid.CupidMatcher`; pass a
    custom ``pipeline`` to run a substituted stage sequence under the
    same caching (the session only caches what the pipeline's stages
    actually consume).
    """

    def __init__(
        self,
        thesaurus: Optional[Thesaurus] = None,
        config: Optional[CupidConfig] = None,
        compat: Optional[TypeCompatibilityTable] = None,
        pipeline: Optional[MatchPipeline] = None,
        simcache_path: Optional[str] = None,
    ) -> None:
        if pipeline is None:
            pipeline = MatchPipeline.default(
                thesaurus=thesaurus, config=config, compat=compat
            )
        self.pipeline = pipeline
        # id(schema) -> (schema, prepared); holding the schema keeps
        # the id stable for the entry's lifetime. Insertion order is
        # least-recently-matched first: prepare() re-inserts on every
        # hit, so when config.max_prepared_schemas bounds the cache the
        # front entry is always the eviction victim.
        self._prepared: Dict[int, Tuple[Schema, PreparedSchema]] = {}
        # id(prepared) for every currently-registered prepared schema.
        # Guards the lsim cache against id reuse: entries may only be
        # added (or trusted) while both endpoints are live, and
        # eviction purges every pair the victim participates in.
        self._live_prep_ids: set = set()
        # (id(prep_s), id(prep_t)) -> pristine lsim table for the pair.
        self._lsim_cache: Dict[Tuple[int, int], LsimTable] = {}
        self._counters = {
            "matches": 0,
            "prepare_hits": 0,
            "prepare_misses": 0,
            "lsim_hits": 0,
            "lsim_misses": 0,
            "prepared_evictions": 0,
            "lsim_evictions": 0,
            "simcache_preloaded_entries": 0,
            "simcache_discarded": 0,
            "simcache_write_failures": 0,
        }
        # Tile occupancy accumulated over the session's blocked-store
        # matches (each match owns one store; the session sums them so
        # ``--stats`` can show how much of the similarity plane the
        # whole batch ever materialized).
        self._store_counters = {
            "blocked_store_matches": 0,
            "store_tiles_total": 0,
            "store_tiles_allocated": 0,
            "store_tiles_touched": 0,
            "store_overlay_cells": 0,
            "store_bytes": 0,
        }
        # Parallel-shard counters summed over the session's matches
        # (all zero while config.workers <= 1).
        self._parallel_counters = {
            "parallel_matches": 0,
            "parallel_scan_ops": 0,
            "parallel_scale_ops": 0,
            "parallel_shards_dispatched": 0,
            "parallel_ops_forwarded": 0,
            "parallel_stamp_merges": 0,
        }
        # The repository's persistent memo tier, available to
        # standalone sessions: a JSON dump of the token-pair and
        # element-name caches, preloaded at construction and written
        # back by save_simcache() / the context-manager exit. The path
        # comes from the argument or config.simcache_path ("" = off).
        path = simcache_path or self.pipeline.config.simcache_path
        self._simcache_path = os.path.abspath(path) if path else ""
        self._simcache_baseline = 0
        if self._simcache_path:
            self._load_simcache()
        # Guards the prepared/lsim tiers and every counter dict, so the
        # session is safe to share across threads (the serving pool's
        # workers, a concurrent ``match_many``). Held only for cache
        # bookkeeping — pipeline.run() and prepare()'s heavy lifting
        # execute outside it, so matches on distinct pairs overlap.
        # The linguistic memo is intentionally *not* behind this lock:
        # its entries are pure values keyed by token/name texts, so a
        # racing recompute stores an identical result (wasted work,
        # never a wrong one), and serializing it would serialize the
        # whole linguistic phase across the pool.
        self._tier_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Caching
    # ------------------------------------------------------------------

    def prepare(self, schema: SchemaLike) -> PreparedSchema:
        """The session's cached :class:`PreparedSchema` for ``schema``.

        Accepts an already-prepared schema (registered so later calls
        with its raw schema hit the same artifact).
        """
        if isinstance(schema, PreparedSchema):
            with self._tier_lock:
                registered = self._prepared.get(id(schema.schema))
                if registered is not None:
                    # The session's own artifact wins: while
                    # registered, its id() — the lsim-cache key —
                    # cannot be reused by a new object.
                    self._counters["prepare_hits"] += 1
                    self._touch(id(schema.schema))
                    return registered[1]
                self._register(id(schema.schema), schema.schema, schema)
                return schema
        with self._tier_lock:
            entry = self._prepared.get(id(schema))
            if entry is not None:
                self._counters["prepare_hits"] += 1
                self._touch(id(schema))
                return entry[1]
        # Preparation runs outside the lock — it is the expensive part
        # and a pure function of the schema, so two threads racing on
        # the same schema compute identical artifacts and the first to
        # register wins.
        prepared = self.pipeline.prepare(schema)
        with self._tier_lock:
            entry = self._prepared.get(id(schema))
            if entry is not None:
                self._counters["prepare_hits"] += 1
                self._touch(id(schema))
                return entry[1]
            self._counters["prepare_misses"] += 1
            self._register(id(schema), schema, prepared)
        return prepared

    def _touch(self, key: int) -> None:
        """Move ``key``'s entry to the recently-used end."""
        self._prepared[key] = self._prepared.pop(key)

    def _register(
        self, key: int, schema: Schema, prepared: PreparedSchema
    ) -> None:
        self._prepared[key] = (schema, prepared)
        self._live_prep_ids.add(id(prepared))
        limit = self.pipeline.config.max_prepared_schemas
        while limit and len(self._prepared) > limit:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        """Drop the least-recently-matched prepared schema.

        Its cached lsim tables go with it: their keys embed the
        evicted object's id(), which a future PreparedSchema could
        legitimately reuse once this reference is dropped.
        """
        victim_key = next(iter(self._prepared))
        _, prepared = self._prepared.pop(victim_key)
        prep_id = id(prepared)
        self._live_prep_ids.discard(prep_id)
        stale = [
            pair for pair in self._lsim_cache
            if prep_id in pair
        ]
        for pair in stale:
            del self._lsim_cache[pair]
        self._counters["prepared_evictions"] += 1
        self._counters["lsim_evictions"] += len(stale)

    def _cached_lsim(
        self, prep_s: PreparedSchema, prep_t: PreparedSchema
    ) -> Optional[LsimTable]:
        with self._tier_lock:
            cached = self._lsim_cache.get((id(prep_s), id(prep_t)))
            if cached is None:
                return None
            self._counters["lsim_hits"] += 1
            # Hand out a copy: initial-mapping hints mutate the table.
            return cached.copy()

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def match(
        self,
        source: SchemaLike,
        target: SchemaLike,
        initial_mapping: Optional[InitialMapping] = None,
    ) -> CupidResult:
        """Match with every applicable session cache engaged."""
        prep_s = self.prepare(source)
        prep_t = self.prepare(target)
        with self._tier_lock:
            self._counters["matches"] += 1
        lsim_table = self._cached_lsim(prep_s, prep_t)
        fresh = lsim_table is None
        if fresh:
            with self._tier_lock:
                self._counters["lsim_misses"] += 1
        result = self.pipeline.run(
            prep_s,
            prep_t,
            initial_mapping=initial_mapping,
            lsim_table=lsim_table,
        )
        with self._tier_lock:
            if (
                fresh
                and not initial_mapping
                and result.lsim_table is not None
                and id(prep_s) in self._live_prep_ids
                and id(prep_t) in self._live_prep_ids
            ):
                # Only a hint-free table is pristine enough to cache,
                # and only while both prepared schemas are still
                # registered (an LRU eviction between prepare() and
                # here would leave a table keyed by a reusable id).
                self._lsim_cache[(id(prep_s), id(prep_t))] = (
                    result.lsim_table.copy()
                )
            self._accumulate_store_stats(result)
        return result

    def _accumulate_store_stats(self, result: CupidResult) -> None:
        tm = result.treematch_result
        if tm is None:
            return
        from repro.structure.blocked import BlockedSimilarityStore

        sims = tm.sims
        describe = getattr(sims, "describe", None)
        facts = describe() if describe is not None else {}
        if facts.get("parallel_workers", 0):
            parallel = self._parallel_counters
            parallel["parallel_matches"] += 1
            for key in (
                "parallel_scan_ops",
                "parallel_scale_ops",
                "parallel_shards_dispatched",
                "parallel_ops_forwarded",
                "parallel_stamp_merges",
            ):
                parallel[key] += facts.get(key, 0)
        if not isinstance(sims, BlockedSimilarityStore):
            return
        counters = self._store_counters
        counters["blocked_store_matches"] += 1
        counters["store_tiles_total"] += sims.tiles_total()
        counters["store_tiles_allocated"] += sims.tiles_allocated()
        counters["store_tiles_touched"] += sims.tiles_touched()
        counters["store_overlay_cells"] += sims.overlay_cells()
        counters["store_bytes"] += sims.store_bytes()

    def match_many(
        self,
        source: SchemaLike,
        targets: Iterable[SchemaLike],
    ) -> List[CupidResult]:
        """Match one source against each target (one prepare, N
        matches) — the mediated-schema / warehouse-loading batch shape.
        """
        prep_s = self.prepare(source)
        return [self.match(prep_s, target) for target in targets]

    def rematch(
        self,
        result: CupidResult,
        feedback: Optional[InitialMapping] = None,
    ) -> CupidResult:
        """Re-run a previous result's pair with user feedback.

        Section 8.4: "the user can make corrections to a generated
        result map, and then re-run the match with the corrected input
        map". The pair's prepared schemas and lsim table come from the
        session caches, so only the structural and mapping phases
        actually re-run.
        """
        return self.match(
            result.source_schema,
            result.target_schema,
            initial_mapping=feedback,
        )

    # ------------------------------------------------------------------
    # Persistent similarity cache (the repository tier, standalone)
    # ------------------------------------------------------------------

    def _memo_computed_entries(self) -> int:
        """Similarity entries this process computed itself (each memo
        miss computes exactly one token or element entry; preloaded
        entries arrive without misses). Gates the save: an unchanged
        count means the file on disk is already current."""
        memo = self.pipeline.linguistic.memo
        if memo is None:
            return 0
        return memo.token_misses + memo.element_misses

    def _load_simcache(self) -> None:
        """Preload the memo from ``simcache_path`` if it matches.

        Same format and same safety rules as the repository's
        ``simcache.json``: a torn file is a cache miss, and a dump
        written under a different thesaurus or config fingerprint is
        silently dropped — entries computed under other knowledge
        would poison bit-parity. The memo tiers are keyed by token
        texts and raw names, not by prepared-schema identity, so LRU
        eviction of prepared schemas never invalidates them.
        """
        from repro.repository.artifacts import (
            FORMAT_VERSION,
            config_fingerprint,
        )
        from repro.repository.store import _read_json

        self._simcache_baseline = self._memo_computed_entries()
        memo = self.pipeline.linguistic.memo
        if memo is None or not os.path.exists(self._simcache_path):
            return
        try:
            data = _read_json(self._simcache_path, "similarity cache")
        except Exception:
            self._counters["simcache_discarded"] += 1
            return
        if (
            data.get("format_version") != FORMAT_VERSION
            or data.get("thesaurus_fingerprint")
            != self.pipeline.thesaurus.fingerprint()
            or data.get("config_fingerprint")
            != config_fingerprint(self.pipeline.config)
        ):
            self._counters["simcache_discarded"] += 1
            return
        self._counters["simcache_preloaded_entries"] += memo.preload_cache(
            data.get("caches", {})
        )

    def save_simcache(self) -> None:
        """Write the memo's persistable tiers back to ``simcache_path``.

        No-op when no path is configured or nothing new was computed
        since the preload. Write failures (read-only mount, missing
        permissions) are counted, not raised — the simcache is a pure
        optimization.
        """
        if not self._simcache_path:
            return
        from repro.repository.artifacts import (
            FORMAT_VERSION,
            config_fingerprint,
        )
        from repro.repository.store import _write_json

        memo = self.pipeline.linguistic.memo
        if memo is None:
            return
        if self._memo_computed_entries() == self._simcache_baseline:
            return
        try:
            _write_json(
                self._simcache_path,
                {
                    "format_version": FORMAT_VERSION,
                    "thesaurus_fingerprint": (
                        self.pipeline.thesaurus.fingerprint()
                    ),
                    "config_fingerprint": config_fingerprint(
                        self.pipeline.config
                    ),
                    "caches": memo.export_cache(),
                },
            )
        except OSError:
            self._counters["simcache_write_failures"] += 1
            return
        self._simcache_baseline = self._memo_computed_entries()

    def __enter__(self) -> "MatchSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Flush even when unwinding an exception — the memo is always
        # internally consistent — but never mask the original error.
        try:
            self.save_simcache()
        except Exception:
            if exc_type is None:
                raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cache_info(self) -> Dict[str, int]:
        """Session cache counters (also in CLI ``match-many --stats``)."""
        with self._tier_lock:
            return self._cache_info_locked()

    def _cache_info_locked(self) -> Dict[str, int]:
        info = dict(self._counters)
        if not self._simcache_path:
            # A session without its own simcache reports no simcache
            # counters — callers that layer their own persistent memo
            # tier on top (the repository) merge this dict over their
            # counters, and structurally-zero entries would mask them.
            for key in (
                "simcache_preloaded_entries",
                "simcache_discarded",
                "simcache_write_failures",
            ):
                del info[key]
        info["prepared_schemas"] = len(self._prepared)
        info["cached_lsim_pairs"] = len(self._lsim_cache)
        # The vocabulary tier: distinct-name factorings the kernel has
        # built and retained on the session's prepared schemas.
        vocabularies = 0
        distinct_names = 0
        for _, prepared in self._prepared.values():
            vocabulary = prepared.vocabulary
            if vocabulary is not None:
                vocabularies += 1
                distinct_names += vocabulary.n_names
        info["vocabulary_tables"] = vocabularies
        info["vocabulary_distinct_names"] = distinct_names
        # Blocked-store tile occupancy, summed over the session's
        # matches (all zero while no match used the blocked store).
        info.update(self._store_counters)
        # Tile-shard dispatch counters (all zero while workers <= 1).
        info.update(self._parallel_counters)
        return info
