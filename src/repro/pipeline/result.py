"""The result artifact every match pipeline produces.

:class:`CupidResult` is the common output contract: the default Cupid
pipeline fills every field; adapted baseline pipelines
(:mod:`repro.pipeline.adapters`) leave the Cupid-specific artifacts
(``lsim_table``, ``treematch_result``) as ``None`` but still deliver
the trees, the mappings, and per-stage timings, so downstream tooling
(CLI, evaluation, benchmarks) can consume any matcher's output through
one type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ReproError
from repro.linguistic.matcher import LsimTable
from repro.mapping.assignment import greedy_one_to_one
from repro.mapping.mapping import Mapping
from repro.model.schema import Schema
from repro.pipeline.context import PathLike, path_parts
from repro.structure.treematch import TreeMatchResult
from repro.tree.schema_tree import SchemaTree, SchemaTreeNode


@dataclass
class CupidResult:
    """All artifacts of one match run.

    ``lsim_table`` and ``treematch_result`` are ``None`` for pipelines
    whose stages do not produce them (e.g. adapted baselines); the
    accessors that need them raise :class:`ReproError` in that case.
    """

    source_schema: Schema
    target_schema: Schema
    lsim_table: Optional[LsimTable]
    source_tree: SchemaTree
    target_tree: SchemaTree
    treematch_result: Optional[TreeMatchResult]
    leaf_mapping: Mapping
    nonleaf_mapping: Mapping
    #: Wall-clock seconds per pipeline stage (linguistic / trees /
    #: treematch / mapping), for benchmark and ``--stats`` reporting.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Cached combined mapping (built on first ``.mapping`` access; the
    #: mappings above are immutable once the run returns).
    _combined: Optional[Mapping] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def mapping(self) -> Mapping:
        """Leaf + non-leaf mapping elements combined (cached)."""
        if self._combined is None:
            combined = Mapping(
                self.source_schema.name, self.target_schema.name
            )
            for element in self.leaf_mapping:
                combined.add(element)
            for element in self.nonleaf_mapping:
                combined.add(element)
            self._combined = combined
        return self._combined

    def one_to_one(self) -> Mapping:
        """Greedy 1:1 extraction of the leaf mapping (Section 7)."""
        return greedy_one_to_one(self.leaf_mapping)

    def wsim(self, source_path: PathLike, target_path: PathLike) -> float:
        """Weighted similarity of two nodes addressed by path."""
        if self.treematch_result is None:
            raise ReproError(
                "this result has no TreeMatch artifacts (produced by a "
                "pipeline without a structural stage)"
            )
        s = self._resolve(self.source_tree, source_path)
        t = self._resolve(self.target_tree, target_path)
        return self.treematch_result.wsim_of(s, t)

    def lsim(self, source_path: PathLike, target_path: PathLike) -> float:
        if self.lsim_table is None:
            raise ReproError(
                "this result has no lsim table (produced by a pipeline "
                "without a linguistic stage)"
            )
        s = self._resolve(self.source_tree, source_path)
        t = self._resolve(self.target_tree, target_path)
        return self.lsim_table.get(s.element, t.element)

    @staticmethod
    def _resolve(tree: SchemaTree, path: PathLike) -> SchemaTreeNode:
        return tree.node_for_path(*path_parts(path))
