"""Mapping generation (paper Section 7).

The naïve leaf-level generator: "For each leaf element t in the target
schema, if the leaf element s in the source schema with highest
weighted similarity to t is acceptable (wsim(s, t) ≥ thaccept), then a
mapping element from s to t is returned. This resulting mapping may be
1:n, since a source element may map to many target elements."

Non-leaf mappings require the second post-order pass (because leaf
updates during TreeMatch stale the inner-node similarities), then the
same best-candidate scheme over inner nodes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.mapping.mapping import Mapping, MappingElement
from repro.structure.treematch import TreeMatch, TreeMatchResult
from repro.tree.schema_tree import SchemaTreeNode


class MappingGenerator:
    """Generates leaf, non-leaf, and combined mappings from TreeMatch output."""

    def __init__(self, config: Optional[CupidConfig] = None) -> None:
        self.config = config or DEFAULT_CONFIG

    def leaf_mapping(self, result: TreeMatchResult) -> Mapping:
        """The naïve 1:n leaf-level mapping of Section 7.

        Leaf similarities read the *final* ssim values: leaf pairs are
        compared early in the post-order loop, but their ssim keeps
        being updated by later ancestor comparisons, and it is those
        final values that encode the context disambiguation (e.g.
        POBillTo's City binding to InvoiceTo's rather than DeliverTo's).
        """
        mapping = Mapping(
            result.source_tree.schema.name, result.target_tree.schema.name
        )
        sims = result.sims
        source_leaves = list(result.source_tree.root.leaves())
        for t in result.target_tree.root.leaves():
            best_node = None
            best_score = -1.0
            for s in source_leaves:
                score = sims.wsim(s, t)
                if score > best_score + self._TIE_EPSILON:
                    best_node = s
                    best_score = score
                elif (
                    best_node is not None
                    and abs(score - best_score) <= self._TIE_EPSILON
                    and self._ancestors_prefer(s, best_node, t, result)
                ):
                    best_node = s
                    best_score = max(best_score, score)
            if best_node is not None and best_score >= self.config.thaccept:
                mapping.add(self._element(best_node, t, best_score))
        return mapping

    _TIE_EPSILON = 1e-9

    def _ancestors_prefer(
        self,
        challenger: SchemaTreeNode,
        incumbent: SchemaTreeNode,
        target: SchemaTreeNode,
        result: TreeMatchResult,
    ) -> bool:
        """Break a leaf-score tie by comparing ancestor-pair wsim.

        When two source leaves tie for a target leaf (common for shared
        types: the Name under ShippingAddress and the Name under
        BillingAddress are identical up to context), the leaf whose
        ancestors match the target's ancestors better wins. This is the
        hierarchical-mapping intuition of Section 7 ("the mapping
        element between two XML-elements e1 and e2 would have as its
        sub-elements the mapping elements between matching
        XML-attributes of e1 and e2").
        """
        t_ancestor = target.parent
        challenger_ancestor = challenger.parent
        incumbent_ancestor = incumbent.parent
        while (
            t_ancestor is not None
            and challenger_ancestor is not None
            and incumbent_ancestor is not None
        ):
            challenger_wsim = result.wsim.get(
                (challenger_ancestor.node_id, t_ancestor.node_id), 0.0
            )
            incumbent_wsim = result.wsim.get(
                (incumbent_ancestor.node_id, t_ancestor.node_id), 0.0
            )
            if abs(challenger_wsim - incumbent_wsim) > self._TIE_EPSILON:
                return challenger_wsim > incumbent_wsim
            t_ancestor = t_ancestor.parent
            challenger_ancestor = challenger_ancestor.parent
            incumbent_ancestor = incumbent_ancestor.parent
        # Fully tied all the way up: prefer the lexicographically
        # smaller path for determinism.
        return challenger.path() < incumbent.path()

    def nonleaf_mapping(
        self, result: TreeMatchResult, treematch: TreeMatch
    ) -> Mapping:
        """Inner-node mapping after the recomputation pass (Section 7)."""
        treematch.recompute_wsim(result)
        mapping = Mapping(
            result.source_tree.schema.name, result.target_tree.schema.name
        )
        source_inner = [
            n for n in result.source_tree.postorder() if not n.is_leaf
        ]
        target_inner = [
            n for n in result.target_tree.postorder() if not n.is_leaf
        ]
        for t in target_inner:
            best = self._best_source(source_inner, t, result)
            if best is not None:
                s, score = best
                mapping.add(self._element(s, t, score))
        return mapping

    def combined_mapping(
        self, result: TreeMatchResult, treematch: TreeMatch
    ) -> Mapping:
        """Leaf + non-leaf mapping elements in one mapping."""
        leaf = self.leaf_mapping(result)
        nonleaf = self.nonleaf_mapping(result, treematch)
        combined = Mapping(
            result.source_tree.schema.name, result.target_tree.schema.name
        )
        for element in leaf:
            combined.add(element)
        for element in nonleaf:
            combined.add(element)
        return combined

    # ------------------------------------------------------------------

    def _best_source(
        self,
        candidates: List[SchemaTreeNode],
        target: SchemaTreeNode,
        result: TreeMatchResult,
    ):
        """Highest-wsim acceptable source for ``target``, ties by path."""
        best_node: Optional[SchemaTreeNode] = None
        best_score = -1.0
        for s in candidates:
            score = result.wsim.get((s.node_id, target.node_id))
            if score is None:
                continue
            if score > best_score or (
                score == best_score
                and best_node is not None
                and s.path() < best_node.path()
            ):
                best_node = s
                best_score = score
        if best_node is None or best_score < self.config.thaccept:
            return None
        return best_node, best_score

    @staticmethod
    def _element(
        s: SchemaTreeNode, t: SchemaTreeNode, score: float
    ) -> MappingElement:
        return MappingElement(
            source_path=s.path(),
            target_path=t.path(),
            similarity=score,
            source_node=s,
            target_node=t,
        )
