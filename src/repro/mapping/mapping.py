"""Mappings — the output of Match (paper Section 2).

"A mapping consists of a set of mapping elements, each of which
indicates that certain elements of schema S1 are related to certain
elements of schema S2." Because Cupid matches schema *tree* nodes, a
mapping element carries full context paths ("the resulting output
mappings identify similar elements, qualified by contexts",
Section 8.2), plus the similarity score that justified it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import MappingError
from repro.tree.schema_tree import SchemaTreeNode


@dataclass(frozen=True)
class MappingElement:
    """One correspondence between a source and a target tree node."""

    source_path: Tuple[str, ...]
    target_path: Tuple[str, ...]
    similarity: float
    source_node: Optional[SchemaTreeNode] = None
    target_node: Optional[SchemaTreeNode] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity <= 1.0:
            raise MappingError(
                f"mapping similarity {self.similarity} outside [0, 1]"
            )
        if not self.source_path or not self.target_path:
            raise MappingError("mapping elements need non-empty paths")

    @property
    def source_name(self) -> str:
        return self.source_path[-1]

    @property
    def target_name(self) -> str:
        return self.target_path[-1]

    def name_pair(self) -> Tuple[str, str]:
        return (self.source_name, self.target_name)

    def path_pair(self) -> Tuple[str, str]:
        return (".".join(self.source_path), ".".join(self.target_path))

    def __str__(self) -> str:
        return (
            f"{'.'.join(self.source_path)} -> {'.'.join(self.target_path)} "
            f"({self.similarity:.3f})"
        )


class Mapping:
    """An ordered collection of mapping elements with lookup helpers."""

    def __init__(
        self,
        source_schema_name: str,
        target_schema_name: str,
        elements: Optional[Sequence[MappingElement]] = None,
    ) -> None:
        self.source_schema_name = source_schema_name
        self.target_schema_name = target_schema_name
        self._elements: List[MappingElement] = list(elements or [])

    def add(self, element: MappingElement) -> None:
        self._elements.append(element)

    @property
    def elements(self) -> List[MappingElement]:
        return list(self._elements)

    def __iter__(self) -> Iterator[MappingElement]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def path_pairs(self) -> Set[Tuple[str, str]]:
        """All (source path, target path) string pairs."""
        return {e.path_pair() for e in self._elements}

    def name_pairs(self) -> Set[Tuple[str, str]]:
        """All (source name, target name) pairs (context dropped)."""
        return {e.name_pair() for e in self._elements}

    def targets_of(self, source_path: str) -> List[MappingElement]:
        return [
            e for e in self._elements
            if ".".join(e.source_path) == source_path
        ]

    def sources_of(self, target_path: str) -> List[MappingElement]:
        return [
            e for e in self._elements
            if ".".join(e.target_path) == target_path
        ]

    def best_per_target(self) -> Dict[str, MappingElement]:
        """Highest-similarity element per target path."""
        best: Dict[str, MappingElement] = {}
        for element in self._elements:
            key = ".".join(element.target_path)
            current = best.get(key)
            if current is None or element.similarity > current.similarity:
                best[key] = element
        return best

    def sorted_by_similarity(self) -> List[MappingElement]:
        return sorted(
            self._elements, key=lambda e: (-e.similarity, e.path_pair())
        )

    def is_one_to_one(self) -> bool:
        """True if no source or target path appears twice."""
        sources = [".".join(e.source_path) for e in self._elements]
        targets = [".".join(e.target_path) for e in self._elements]
        return len(set(sources)) == len(sources) and len(set(targets)) == len(targets)

    def __repr__(self) -> str:
        return (
            f"<Mapping {self.source_schema_name!r} -> "
            f"{self.target_schema_name!r}: {len(self)} elements>"
        )
