"""Mappings and mapping generation (paper Sections 2 and 7)."""

from repro.mapping.mapping import Mapping, MappingElement
from repro.mapping.generator import MappingGenerator
from repro.mapping.assignment import greedy_one_to_one, hungarian_one_to_one

__all__ = [
    "Mapping",
    "MappingElement",
    "MappingGenerator",
    "greedy_one_to_one",
    "hungarian_one_to_one",
]
