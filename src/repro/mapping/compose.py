"""Mapping reuse: inversion and composition.

The taxonomy (Section 3) lists reuse of past match information:
"Reusing past match information can also help, for example, to compute
a mapping that is the composition of mappings that were performed
earlier." Since Cupid's mappings are non-directional (Section 2),
inversion is lossless; composition chains A→B and B→C through shared
B-side paths with multiplicative confidence.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import MappingError
from repro.mapping.mapping import Mapping, MappingElement


def invert_mapping(mapping: Mapping) -> Mapping:
    """Swap source and target sides ("we treat mappings as
    non-directional")."""
    inverted = Mapping(mapping.target_schema_name, mapping.source_schema_name)
    for element in mapping:
        inverted.add(
            MappingElement(
                source_path=element.target_path,
                target_path=element.source_path,
                similarity=element.similarity,
                source_node=element.target_node,
                target_node=element.source_node,
            )
        )
    return inverted


def compose_mappings(
    first: Mapping,
    second: Mapping,
    min_similarity: float = 0.0,
) -> Mapping:
    """Compose A→B with B→C into A→C.

    Elements join on exact B-side paths; composite similarity is the
    product of the two links (both must hold for the composite to
    hold). Pairs reachable through several intermediates keep their
    strongest composite. Raises :class:`MappingError` when the shared
    schema names disagree, which catches accidental mis-chaining.
    """
    if first.target_schema_name != second.source_schema_name:
        raise MappingError(
            f"cannot compose: first maps into "
            f"{first.target_schema_name!r} but second maps from "
            f"{second.source_schema_name!r}"
        )
    by_b: Dict[str, List[MappingElement]] = {}
    for element in second:
        by_b.setdefault(".".join(element.source_path), []).append(element)

    best: Dict[Tuple[str, str], MappingElement] = {}
    for left in first:
        b_key = ".".join(left.target_path)
        for right in by_b.get(b_key, []):
            similarity = left.similarity * right.similarity
            if similarity < min_similarity:
                continue
            key = (
                ".".join(left.source_path),
                ".".join(right.target_path),
            )
            current = best.get(key)
            if current is None or similarity > current.similarity:
                best[key] = MappingElement(
                    source_path=left.source_path,
                    target_path=right.target_path,
                    similarity=similarity,
                    source_node=left.source_node,
                    target_node=right.target_node,
                )

    composed = Mapping(
        first.source_schema_name, second.target_schema_name
    )
    for element in sorted(
        best.values(), key=lambda e: (-e.similarity, e.path_pair())
    ):
        composed.add(element)
    return composed
