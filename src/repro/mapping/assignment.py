"""1:1 mapping extraction (paper Section 7).

"Query Discovery might require a 1:1 mapping instead of the 1:n mapping
returned by the naïve scheme above. Such requirements need to be
captured by a ... tool-specific mapping-generator that takes the
computed similarities as input."

Two extractors over a 1:n mapping's candidate set:

* :func:`greedy_one_to_one` — pick elements in descending similarity,
  skipping any whose source or target is already used (stable,
  dependency-free).
* :func:`hungarian_one_to_one` — optimal assignment maximizing total
  similarity via ``scipy.optimize.linear_sum_assignment``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.mapping.mapping import Mapping, MappingElement


def greedy_one_to_one(mapping: Mapping) -> Mapping:
    """Greedy maximum-weight matching over the mapping's elements."""
    result = Mapping(mapping.source_schema_name, mapping.target_schema_name)
    used_sources: Set[str] = set()
    used_targets: Set[str] = set()
    for element in mapping.sorted_by_similarity():
        source_key = ".".join(element.source_path)
        target_key = ".".join(element.target_path)
        if source_key in used_sources or target_key in used_targets:
            continue
        used_sources.add(source_key)
        used_targets.add(target_key)
        result.add(element)
    return result


def hungarian_one_to_one(mapping: Mapping) -> Mapping:
    """Optimal 1:1 extraction (requires scipy).

    Builds the dense similarity matrix over the mapping's distinct
    source/target paths (absent pairs are 0) and solves the linear sum
    assignment problem for maximum total similarity. Assignments with
    zero similarity are dropped.
    """
    try:
        import numpy as np
        from scipy.optimize import linear_sum_assignment
    except ImportError as exc:  # pragma: no cover - environment-specific
        raise ImportError(
            "hungarian_one_to_one requires numpy and scipy; "
            "use greedy_one_to_one instead"
        ) from exc

    sources: List[str] = sorted({".".join(e.source_path) for e in mapping})
    targets: List[str] = sorted({".".join(e.target_path) for e in mapping})
    if not sources or not targets:
        return Mapping(mapping.source_schema_name, mapping.target_schema_name)

    source_index = {path: i for i, path in enumerate(sources)}
    target_index = {path: j for j, path in enumerate(targets)}
    best_element: Dict[Tuple[int, int], MappingElement] = {}

    matrix = np.zeros((len(sources), len(targets)))
    for element in mapping:
        i = source_index[".".join(element.source_path)]
        j = target_index[".".join(element.target_path)]
        if element.similarity > matrix[i, j]:
            matrix[i, j] = element.similarity
            best_element[(i, j)] = element

    rows, cols = linear_sum_assignment(matrix, maximize=True)
    result = Mapping(mapping.source_schema_name, mapping.target_schema_name)
    for i, j in zip(rows, cols):
        element = best_element.get((i, j))
        if element is not None and matrix[i, j] > 0:
            result.add(element)
    return result
