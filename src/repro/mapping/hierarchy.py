"""Hierarchical mapping structure (paper Section 7).

"A further step would be to enrich the structure of the map itself.
For example, the mapping element between two XML-elements e1 and e2
would have as its sub-elements the mapping elements between matching
XML-attributes of e1 and e2. Such a mapping would be consistent with
the vision of model management ... which proposed treating both
schemas and mappings as similar objects (models). However, we defer
such treatment to future work."

This module implements that future work: a :class:`HierarchicalMapping`
nests each leaf correspondence under the deepest non-leaf
correspondence whose endpoints contain it on both sides, turning the
flat list into a mapping *model*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mapping.mapping import Mapping, MappingElement


@dataclass
class MappingNode:
    """One correspondence with its nested sub-correspondences."""

    element: MappingElement
    children: List["MappingNode"] = field(default_factory=list)

    def iter_depth_first(self):
        yield self
        for child in self.children:
            yield from child.iter_depth_first()

    def render(self, indent: int = 0) -> str:
        lines = [("  " * indent) + str(self.element)]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class HierarchicalMapping:
    """A forest of nested mapping elements."""

    def __init__(self, roots: List[MappingNode]) -> None:
        self.roots = roots

    def __len__(self) -> int:
        return sum(1 for root in self.roots for _ in root.iter_depth_first())

    def render(self) -> str:
        return "\n".join(root.render() for root in self.roots)

    def find(self, source_path: str, target_path: str) -> Optional[MappingNode]:
        for root in self.roots:
            for node in root.iter_depth_first():
                if node.element.path_pair() == (source_path, target_path):
                    return node
        return None


def _is_prefix_or_equal(
    prefix: Tuple[str, ...], path: Tuple[str, ...]
) -> bool:
    return len(prefix) <= len(path) and path[: len(prefix)] == prefix


def build_hierarchical_mapping(
    nonleaf: Mapping, leaf: Mapping
) -> HierarchicalMapping:
    """Nest correspondences by containment on both sides.

    A correspondence (s2, t2) becomes a child of (s1, t1) when s1 is a
    path prefix of s2 and t1 of t2 — strictly deeper on at least one
    side (1:n mappings legitimately share a source path, e.g. POBillTo
    mapping to both InvoiceTo and InvoiceTo.Address) — and no deeper
    such parent exists. Orphans become roots.
    """
    all_elements = list(nonleaf) + list(leaf)
    nodes = [MappingNode(element) for element in all_elements]

    def depth(node: MappingNode) -> int:
        return len(node.element.source_path) + len(node.element.target_path)

    roots: List[MappingNode] = []
    for node in nodes:
        best_parent: Optional[MappingNode] = None
        for candidate in nodes:
            if candidate is node or depth(candidate) >= depth(node):
                continue
            if _is_prefix_or_equal(
                candidate.element.source_path, node.element.source_path
            ) and _is_prefix_or_equal(
                candidate.element.target_path, node.element.target_path
            ):
                if best_parent is None or depth(candidate) > depth(best_parent):
                    best_parent = candidate
        if best_parent is None:
            roots.append(node)
        else:
            best_parent.children.append(node)

    for node in nodes:
        node.children.sort(key=lambda n: n.element.path_pair())
    roots.sort(key=lambda n: n.element.path_pair())
    return HierarchicalMapping(roots)
