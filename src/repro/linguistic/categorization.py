"""Categorization (Section 5.2).

"Cupid clusters schema elements belonging to the two schemas into
categories. A category is a group of elements that can be identified by
a set of keywords, which are derived from concepts, data types, and
element names. ... The purpose of categorization is to reduce the
number of element-to-element comparisons."

Three category sources, one per bullet in the paper:

* **Concept tagging** — one category per unique concept tag.
* **Data types** — one category per broad data type ("Number", ...).
* **Container** — one category per containing element, keyed by the
  container's name tokens (Street/City under Address → category with
  keyword Address).

Elements can belong to multiple categories. Two categories are
*compatible* when the name similarity of their keyword token sets
exceeds ``thns``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config import CupidConfig
from repro.linguistic.name_similarity import token_set_similarity
from repro.linguistic.normalizer import NormalizedName, Normalizer
from repro.linguistic.thesaurus import Thesaurus
from repro.linguistic.tokens import Token, TokenType
from repro.model.datatypes import BROAD_CLASS
from repro.model.element import SchemaElement
from repro.model.schema import Schema


@dataclass
class Category:
    """A keyword-identified group of schema elements."""

    key: str                      # unique id within its schema, e.g. "dtype:Number"
    keywords: Tuple[Token, ...]   # tokens identifying the category
    source: str                   # "concept" | "dtype" | "container"
    members: List[SchemaElement] = field(default_factory=list)

    def __repr__(self) -> str:
        kw = " ".join(t.text for t in self.keywords)
        return f"<Category {self.key} [{kw}]: {len(self.members)} members>"


class Categorizer:
    """Builds per-schema categories and decides category compatibility."""

    def __init__(
        self,
        thesaurus: Thesaurus,
        normalizer: Normalizer,
        config: CupidConfig,
    ) -> None:
        self.thesaurus = thesaurus
        self.normalizer = normalizer
        self.config = config

    def categorize(self, schema: Schema) -> Dict[str, Category]:
        """Assign every named element of ``schema`` to its categories.

        Returns categories keyed by their unique key. Each element may
        appear in several categories (concept + data type + container).
        """
        categories: Dict[str, Category] = {}

        def get_or_create(
            key: str, keywords: Tuple[Token, ...], source: str
        ) -> Category:
            category = categories.get(key)
            if category is None:
                category = Category(key=key, keywords=keywords, source=source)
                categories[key] = category
            return category

        # The schema root belongs to a dedicated category so roots are
        # linguistically comparable across schemas (they have no
        # container, data type, or — usually — concept of their own).
        root_category = get_or_create(
            "root", (Token("schema", TokenType.CONTENT),), "container"
        )
        root_category.members.append(schema.root)

        for element in schema.elements:
            if element.not_instantiated or not element.name:
                continue
            normalized = self.normalizer.normalize(element.name)

            # 1. Concept tagging: a category per unique concept tag.
            for concept in sorted(normalized.concepts):
                category = get_or_create(
                    f"concept:{concept}",
                    (Token(concept, TokenType.CONCEPT),),
                    "concept",
                )
                category.members.append(element)

            # 1b. Name tokens: keywords are "derived from concepts,
            # data types, and element names" (Section 5.2) — the money
            # category example includes elements where the keyword
            # "appears in its name". One category per significant
            # (content/concept) name token.
            for token in normalized.comparable_tokens():
                if token.token_type in (TokenType.CONTENT, TokenType.CONCEPT):
                    category = get_or_create(
                        f"name:{token.text}",
                        (Token(token.text, TokenType.CONTENT),),
                        "name",
                    )
                    category.members.append(element)

            # 2. Broad data type: Number, Text, Temporal, ...
            if element.data_type is not None:
                broad = BROAD_CLASS[element.data_type]
                category = get_or_create(
                    f"dtype:{broad}",
                    (Token(broad.lower(), TokenType.CONTENT),),
                    "dtype",
                )
                category.members.append(element)

            # 3. Container: the containing element names a category.
            container = schema.container_of(element)
            if container is not None and container.name and not container.not_instantiated:
                container_tokens = tuple(
                    self.normalizer.normalize(container.name).comparable_tokens()
                )
                if container_tokens:
                    category = get_or_create(
                        f"container:{container.element_id}",
                        container_tokens,
                        "container",
                    )
                    category.members.append(element)

        return categories

    def category_similarity(
        self, c1: Category, c2: Category, memo=None
    ) -> float:
        """Name similarity of two categories' keyword token sets."""
        if memo is not None:
            return memo.token_set_similarity(c1.keywords, c2.keywords)
        return token_set_similarity(
            c1.keywords, c2.keywords, self.thesaurus, self.config
        )

    def compatible(self, c1: Category, c2: Category) -> bool:
        """"Two categories are compatible if the name similarity of
        their token sets exceeds a given threshold, thns."

        Data-type categories additionally only pair with data-type
        categories: the paper uses them "primarily to prune the
        matching", and cross-pairing a type keyword like "number" with
        content names would create spurious compatibilities.
        """
        return self.compatible_similarity(c1, c2) is not None

    def compatible_similarity(
        self, c1: Category, c2: Category, memo=None
    ) -> Optional[float]:
        """The category similarity if the pair is compatible, else None.

        Folds :meth:`compatible` and :meth:`category_similarity` into
        one call so the all-pairs category scan computes each keyword
        comparison once instead of twice.
        """
        if (c1.source == "dtype") != (c2.source == "dtype"):
            return None
        similarity = self.category_similarity(c1, c2, memo)
        return similarity if similarity >= self.config.thns else None
