"""Incremental thesaurus learning from validated mappings.

Paper, Section 9.3 conclusion 2: "A robust solution will need a module
to incrementally learn synonyms and abbreviations from mappings that
are performed over time."

:class:`ThesaurusLearner` consumes user-validated mappings and mines
candidate lexical knowledge from them:

* **Synonyms** — when a confirmed element pair has exactly one
  unmatched token on each side, those tokens are aligned; pairs seen
  repeatedly graduate to synonym proposals with confidence growing in
  the evidence count.
* **Abbreviations** — an aligned pair where one token is a prefix or a
  subsequence of the other (``qty``/``quantity``, ``num``/``number``)
  is proposed as an abbreviation instead.

The learner never mutates the base thesaurus; :meth:`proposals` returns
scored candidates and :meth:`learned_thesaurus` materializes the
accepted ones merged over a base — so a human stays in the loop, as the
paper's validation-centric workflow prescribes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.linguistic.normalizer import Normalizer
from repro.linguistic.thesaurus import Thesaurus
from repro.linguistic.tokens import TokenType
from repro.mapping.mapping import Mapping


@dataclass(frozen=True)
class LexicalProposal:
    """One mined candidate entry."""

    term_a: str
    term_b: str
    kind: str          # "synonym" | "abbreviation"
    evidence: int      # number of validated pairs supporting it
    confidence: float  # in [0, 1], grows with evidence

    def __str__(self) -> str:
        return (
            f"{self.kind}: {self.term_a} ~ {self.term_b} "
            f"(evidence={self.evidence}, confidence={self.confidence:.2f})"
        )


def _is_subsequence(short: str, long: str) -> bool:
    it = iter(long)
    return all(ch in it for ch in short)


def _looks_like_abbreviation(a: str, b: str) -> Optional[Tuple[str, str]]:
    """Return (short, long) if one term abbreviates the other."""
    short, long = (a, b) if len(a) < len(b) else (b, a)
    if len(short) >= len(long) or len(short) < 2:
        return None
    if long.startswith(short) or _is_subsequence(short, long):
        return (short, long)
    return None


class ThesaurusLearner:
    """Mines synonym/abbreviation candidates from validated mappings."""

    def __init__(
        self,
        normalizer: Normalizer,
        min_evidence: int = 1,
        base_confidence: float = 0.7,
    ) -> None:
        if not 0.0 < base_confidence <= 1.0:
            raise ValueError("base_confidence must be in (0, 1]")
        self.normalizer = normalizer
        self.min_evidence = min_evidence
        self.base_confidence = base_confidence
        self._pair_counts: Counter = Counter()

    # ------------------------------------------------------------------

    def observe(self, mapping: Mapping) -> int:
        """Mine one validated mapping; returns pairs extracted."""
        extracted = 0
        for element in mapping:
            pair = self._align(element.source_name, element.target_name)
            if pair is not None:
                self._pair_counts[pair] += 1
                extracted += 1
        return extracted

    def _align(self, name1: str, name2: str) -> Optional[Tuple[str, str]]:
        """Align the single unmatched token pair of two names, if any."""
        tokens1 = {
            t.text for t in self.normalizer.normalize(name1).comparable_tokens()
            if t.token_type in (TokenType.CONTENT, TokenType.CONCEPT)
        }
        tokens2 = {
            t.text for t in self.normalizer.normalize(name2).comparable_tokens()
            if t.token_type in (TokenType.CONTENT, TokenType.CONCEPT)
        }
        only1 = sorted(tokens1 - tokens2)
        only2 = sorted(tokens2 - tokens1)
        if len(only1) == 1 and len(only2) == 1:
            a, b = only1[0], only2[0]
            if a != b:
                return tuple(sorted((a, b)))  # symmetric key
        return None

    # ------------------------------------------------------------------

    def proposals(self) -> List[LexicalProposal]:
        """Scored candidates, strongest first."""
        results: List[LexicalProposal] = []
        for (a, b), count in self._pair_counts.items():
            if count < self.min_evidence:
                continue
            confidence = min(
                1.0, self.base_confidence + 0.1 * (count - 1)
            )
            abbreviation = _looks_like_abbreviation(a, b)
            if abbreviation is not None:
                results.append(
                    LexicalProposal(
                        term_a=abbreviation[0],
                        term_b=abbreviation[1],
                        kind="abbreviation",
                        evidence=count,
                        confidence=confidence,
                    )
                )
            else:
                results.append(
                    LexicalProposal(
                        term_a=a, term_b=b, kind="synonym",
                        evidence=count, confidence=confidence,
                    )
                )
        results.sort(key=lambda p: (-p.confidence, p.term_a, p.term_b))
        return results

    def learned_thesaurus(
        self,
        base: Optional[Thesaurus] = None,
        accept: Optional[Iterable[LexicalProposal]] = None,
    ) -> Thesaurus:
        """Materialize accepted proposals merged over ``base``.

        ``accept`` defaults to all current proposals (auto-accept) —
        callers wanting human validation pass the reviewed subset.
        """
        learned = Thesaurus(name="learned")
        for proposal in accept if accept is not None else self.proposals():
            if proposal.kind == "abbreviation":
                learned.add_abbreviation(proposal.term_a, [proposal.term_b])
            else:
                learned.add_synonym(
                    proposal.term_a, proposal.term_b, proposal.confidence
                )
        if base is None:
            return learned
        return base.merged_with(learned)
