"""Name tokenization (Section 5.1, "Tokenization").

"The names are parsed into tokens by a customizable tokenizer using
punctuation, upper case, special symbols, digits, etc.
E.g. POLines -> {PO, Lines}."

The tokenizer handles the naming conventions that occur in the paper's
schemas: CamelCase (``UnitOfMeasure``), embedded acronyms (``POLines``
→ ``PO`` + ``Lines``), digits (``Street4`` → ``Street`` + ``4``),
punctuation/underscores (``Customer_Number``, ``e-mail``), and special
symbols (``#``).
"""

from __future__ import annotations

import re
from typing import List

#: Characters treated as special-symbol tokens in their own right.
_SPECIAL_CHARS = set("#$%&@*+!?")

#: Split points: non-alphanumeric runs are separators, except the
#: special symbols above, which are kept as tokens.
_SEPARATOR_RE = re.compile(r"[^A-Za-z0-9#$%&@*+!?]+")

#: Case/digit transitions inside an alphanumeric word:
#:   lower→Upper    (poLines   → po | Lines)
#:   ACRONYMWord    (POLines   → PO | Lines)
#:   letter→digit   (Street4   → Street | 4)
#:   digit→letter   (4thStreet → 4 | thStreet)
_CAMEL_RE = re.compile(
    r"""
    [A-Z]+(?=[A-Z][a-z])   # acronym followed by a capitalized word
    | [A-Z]?[a-z]+          # capitalized or lowercase word
    | [A-Z]+                # trailing acronym
    | [0-9]+                # digit run
    """,
    re.VERBOSE,
)


def split_camel(word: str) -> List[str]:
    """Split one alphanumeric word on case and digit transitions."""
    return _CAMEL_RE.findall(word)


def tokenize(name: str) -> List[str]:
    """Split a raw element name into lower-cased token strings.

    >>> tokenize("POLines")
    ['po', 'lines']
    >>> tokenize("Customer_Number")
    ['customer', 'number']
    >>> tokenize("Street4")
    ['street', '4']
    >>> tokenize("Item#")
    ['item', '#']
    """
    if not name:
        return []
    tokens: List[str] = []
    # Separate out special-symbol characters first so "#": survives.
    pieces: List[str] = []
    current = []
    for ch in name:
        if ch in _SPECIAL_CHARS:
            if current:
                pieces.append("".join(current))
                current = []
            pieces.append(ch)
        else:
            current.append(ch)
    if current:
        pieces.append("".join(current))

    for piece in pieces:
        if piece in _SPECIAL_CHARS:
            tokens.append(piece)
            continue
        for word in _SEPARATOR_RE.split(piece):
            if not word:
                continue
            tokens.extend(part.lower() for part in split_camel(word))
    return tokens
