"""Thesaurus: synonyms, hypernyms, abbreviations, concepts, stopwords.

Section 5 of the paper: "We use a thesaurus to help match names by
identifying short-forms (Qty for Quantity), acronyms (UoM for
UnitOfMeasure) and synonyms (Bill and Invoice). ... Each thesaurus
entry is annotated with a coefficient in the range [0,1] that indicates
the strength of the relationship."

The thesaurus is deliberately plain data + lookups; the interesting
logic lives in the normalizer and similarity functions that consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class ThesaurusEntry:
    """A symmetric relatedness entry between two token strings."""

    term_a: str
    term_b: str
    strength: float
    relation: str  # "synonym" or "hypernym"

    def __post_init__(self) -> None:
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(
                f"thesaurus strength {self.strength} outside [0, 1]"
            )


class Thesaurus:
    """Mutable thesaurus with the four knowledge kinds Cupid consumes.

    * pairwise relatedness (synonyms, hypernyms) with strengths,
    * abbreviation/acronym expansions (possibly multi-token),
    * stopwords (articles, prepositions, conjunctions),
    * concepts — trigger-token → concept-name tagging (Section 5.1:
      "elements with tokens Price, Cost and Value are all associated
      with the concept Money").

    All lookups are case-insensitive; terms are stored lower-cased.
    """

    def __init__(self, name: str = "thesaurus") -> None:
        self.name = name
        self._pairs: Dict[Tuple[str, str], ThesaurusEntry] = {}
        self._expansions: Dict[str, Tuple[str, ...]] = {}
        self._stopwords: Set[str] = set()
        self._concepts: Dict[str, str] = {}  # trigger token -> concept name
        # term -> sorted [(related term, strength)], built lazily by
        # related_terms() and dropped on mutation.
        self._related_cache: Optional[
            Dict[str, List[Tuple[str, float]]]
        ] = None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add_synonym(self, a: str, b: str, strength: float = 0.9) -> None:
        """Register ``a`` ≈ ``b`` symmetrically with the given strength."""
        self._add_pair(a, b, strength, "synonym")

    def add_hypernym(self, term: str, broader: str, strength: float = 0.75) -> None:
        """Register that ``broader`` is a hypernym of ``term``.

        Stored symmetrically: Cupid's mappings are non-directional, and
        the paper's MOMIS comparison treats Person/Customer hypernymy as
        match-supporting in either direction.
        """
        self._add_pair(term, broader, strength, "hypernym")

    def _add_pair(self, a: str, b: str, strength: float, relation: str) -> None:
        a, b = a.lower().strip(), b.lower().strip()
        if not a or not b:
            raise ValueError("thesaurus terms must be non-empty")
        if a == b:
            raise ValueError(f"cannot relate {a!r} to itself")
        entry = ThesaurusEntry(a, b, strength, relation)
        self._pairs[(a, b)] = entry
        self._pairs[(b, a)] = entry
        self._related_cache = None

    def add_abbreviation(self, short: str, expansion: Sequence[str]) -> None:
        """Register an abbreviation/acronym expansion.

        ``expansion`` is a token sequence: ``add_abbreviation("po",
        ["purchase", "order"])`` implements the paper's
        ``{PO, Lines} -> {Purchase, Order, Lines}`` example.
        """
        short = short.lower().strip()
        tokens = tuple(t.lower().strip() for t in expansion)
        if not short or not all(tokens):
            raise ValueError("abbreviation and expansion must be non-empty")
        self._expansions[short] = tokens

    def add_stopwords(self, words: Iterable[str]) -> None:
        self._stopwords.update(w.lower().strip() for w in words)

    def add_concept(self, concept: str, triggers: Iterable[str]) -> None:
        """Tag every trigger token with ``concept``."""
        concept = concept.lower().strip()
        for trigger in triggers:
            self._concepts[trigger.lower().strip()] = concept

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def relatedness(self, a: str, b: str) -> Optional[float]:
        """Strength of the (a, b) entry, or None if absent."""
        entry = self._pairs.get((a.lower(), b.lower()))
        return entry.strength if entry else None

    def related_terms(self, term: str) -> List[Tuple[str, float]]:
        """Every term related to ``term``, with strengths, sorted.

        The synset view a repository's candidate index expands query
        tokens through: a schema indexed under "invoice" should be a
        candidate for a query naming "bill", at the pair's thesaurus
        strength. Sorted by (-strength, term) so expansion order is
        deterministic. Lookups hit a lazily-built adjacency map (the
        candidate index probes one per query token per search, so a
        linear scan of the pair table here would put the whole
        thesaurus on the search hot path); mutation invalidates it.
        """
        cache = self._related_cache
        if cache is None:
            cache = {}
            for (a, b), entry in self._pairs.items():
                cache.setdefault(a, []).append((b, entry.strength))
            for related in cache.values():
                related.sort(key=lambda pair: (-pair[1], pair[0]))
            self._related_cache = cache
        return list(cache.get(term.lower(), ()))

    def fingerprint(self) -> str:
        """Content hash of every entry, stable across processes.

        Two thesauri with the same synonyms/hypernyms, expansions,
        stopwords, and concept triggers produce the same fingerprint
        regardless of insertion order. Persistent artifacts (repository
        schemas, the cross-session similarity cache) are keyed by this:
        loading them under different linguistic knowledge would
        silently change match results, so mismatches must be
        detectable.
        """
        import hashlib
        import json

        payload = {
            "pairs": sorted(
                (*sorted((e.term_a, e.term_b)), repr(e.strength), e.relation)
                for e in self.entries
            ),
            "expansions": sorted(
                (short, list(tokens))
                for short, tokens in self._expansions.items()
            ),
            "stopwords": sorted(self._stopwords),
            "concepts": sorted(self._concepts.items()),
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def expansion(self, token: str) -> Optional[Tuple[str, ...]]:
        return self._expansions.get(token.lower())

    def is_stopword(self, token: str) -> bool:
        return token.lower() in self._stopwords

    def concept_of(self, token: str) -> Optional[str]:
        return self._concepts.get(token.lower())

    @property
    def entries(self) -> List[ThesaurusEntry]:
        """Unique pair entries (each symmetric pair reported once)."""
        seen: Set[int] = set()
        unique: List[ThesaurusEntry] = []
        for entry in self._pairs.values():
            if id(entry) not in seen:
                seen.add(id(entry))
                unique.append(entry)
        return unique

    def merged_with(self, other: "Thesaurus") -> "Thesaurus":
        """A new thesaurus with this one's entries plus ``other``'s.

        ``other`` wins on conflicts — domain-specific vocabularies
        override the common-language baseline.
        """
        merged = Thesaurus(name=f"{self.name}+{other.name}")
        for source in (self, other):
            merged._pairs.update(source._pairs)
            merged._expansions.update(source._expansions)
            merged._stopwords.update(source._stopwords)
            merged._concepts.update(source._concepts)
        return merged

    def __repr__(self) -> str:
        return (
            f"<Thesaurus {self.name!r}: {len(self.entries)} pairs, "
            f"{len(self._expansions)} abbreviations, "
            f"{len(self._concepts)} concept triggers>"
        )


def empty_thesaurus() -> Thesaurus:
    """A thesaurus with no knowledge at all (for ablation E6)."""
    return Thesaurus(name="empty")
