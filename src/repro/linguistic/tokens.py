"""Token model for linguistic matching (Section 5.1).

"Each name token is also marked as being one of five token types:
number, special symbol (e.g. #), common word (prepositions and
conjunctions), concept (as explained earlier) or content (all the
rest)."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """The five token types of Section 5.1."""

    NUMBER = "number"
    SPECIAL = "special"
    COMMON = "common"
    CONCEPT = "concept"
    CONTENT = "content"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TokenType.{self.name}"


@dataclass(frozen=True)
class Token:
    """A normalized name token.

    ``text`` is the lower-cased (possibly expanded) token string;
    ``token_type`` is its Section 5.1 classification; ``ignored`` marks
    articles/prepositions/conjunctions that the Elimination step flags
    ("marked to be ignored during comparison").
    """

    text: str
    token_type: TokenType = TokenType.CONTENT
    ignored: bool = False

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("tokens must have non-empty text")

    def with_type(self, token_type: TokenType) -> "Token":
        return Token(self.text, token_type, self.ignored)

    def mark_ignored(self) -> "Token":
        return Token(self.text, self.token_type, True)

    def __str__(self) -> str:
        return self.text
