"""Description-based linguistic matching (paper Section 10).

"Some of the immediate challenges for further work include ... using
schema annotations (textual descriptions of schema elements in the
data dictionary) for the linguistic matching."

Schema elements already carry a free-text ``description``; this module
compares those descriptions with the information-retrieval flavour the
taxonomy mentions ("IR techniques can be used to compare descriptions
that annotate some schema elements"): stopword-filtered bag-of-words
with the same thesaurus-aware token similarity as name matching.

:class:`DescriptionMatcher` is consumed by
:class:`~repro.linguistic.matcher.LinguisticMatcher` when
``CupidConfig.use_descriptions`` is on: the final lsim becomes the
maximum of the name-based lsim and the weighted description similarity,
so a missing description never hurts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CupidConfig
from repro.linguistic.name_similarity import token_set_similarity
from repro.linguistic.normalizer import Normalizer
from repro.linguistic.thesaurus import Thesaurus
from repro.linguistic.tokens import Token
from repro.model.element import SchemaElement

#: Descriptions are prose: always drop English function words, even
#: when the active thesaurus (e.g. the empty ablation one) carries no
#: stopword list — elimination is part of normalization, not domain
#: knowledge.
_PROSE_STOPWORDS = frozenset(
    "a an the of in on at to for by with from as and or nor but so per "
    "via is are was were be been being this that these those it its "
    "used uses using each all any".split()
)


def _light_stem(word: str) -> str:
    """Strip plural 's' from longer words (invoices→invoice).

    Deliberately minimal — the taxonomy's "IR techniques" for
    annotations; a full stemmer would be overkill for data-dictionary
    prose.
    """
    if len(word) > 4 and word.endswith("s") and not word.endswith("ss"):
        return word[:-1]
    return word


class DescriptionMatcher:
    """Similarity of element descriptions, as a bag of normalized tokens."""

    def __init__(
        self,
        thesaurus: Thesaurus,
        normalizer: Normalizer,
        config: CupidConfig,
    ) -> None:
        self.thesaurus = thesaurus
        self.normalizer = normalizer
        self.config = config
        self._cache: Dict[str, Tuple[Token, ...]] = {}

    def tokens_of(self, element: SchemaElement) -> Tuple[Token, ...]:
        """Normalized, deduplicated word tokens of the description."""
        text = element.description.strip()
        if not text:
            return ()
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        seen = set()
        tokens: List[Token] = []
        for word in text.split():
            normalized = self.normalizer.normalize(word)
            for token in normalized.comparable_tokens():
                if token.text in _PROSE_STOPWORDS:
                    continue
                text_form = _light_stem(token.text)
                if text_form not in seen:
                    seen.add(text_form)
                    tokens.append(Token(text_form, token.token_type))
        result = tuple(tokens)
        self._cache[text] = result
        return result

    def similarity(self, m1: SchemaElement, m2: SchemaElement) -> float:
        """Token-set similarity of the two descriptions (0 if either is
        missing — annotations are optional by nature)."""
        t1 = self.tokens_of(m1)
        t2 = self.tokens_of(m2)
        if not t1 or not t2:
            return 0.0
        return token_set_similarity(t1, t2, self.thesaurus, self.config)
