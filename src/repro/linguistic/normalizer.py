"""Name normalization (Section 5.1).

Normalization turns a raw element name into a set of typed tokens in
four steps:

1. **Tokenization** — split on punctuation, case, digits
   (``POLines`` → ``{PO, Lines}``).
2. **Expansion** — expand abbreviations and acronyms via the thesaurus
   (``{PO, Lines}`` → ``{Purchase, Order, Lines}``).
3. **Elimination** — mark articles/prepositions/conjunctions as ignored
   during comparison.
4. **Tagging** — associate tokens with known concepts (Price/Cost/Value
   → Money) and record the concepts on the normalized name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.linguistic.thesaurus import Thesaurus
from repro.linguistic.tokenizer import tokenize
from repro.linguistic.tokens import Token, TokenType

_SPECIAL_CHARS = set("#$%&@*+!?")


@dataclass(frozen=True)
class NormalizedName:
    """The result of normalizing one element name.

    ``tokens`` excludes nothing — ignored tokens are present but
    flagged, matching the paper's "marked to be ignored during
    comparison". ``concepts`` collects the concept tags applied in
    step 4.
    """

    raw: str
    tokens: Tuple[Token, ...]
    concepts: frozenset

    def tokens_of_type(self, token_type: TokenType) -> List[Token]:
        return [
            t for t in self.tokens
            if t.token_type is token_type and not t.ignored
        ]

    def comparable_tokens(self) -> List[Token]:
        """Tokens that take part in similarity (non-ignored)."""
        return [t for t in self.tokens if not t.ignored]

    def token_texts(self) -> List[str]:
        return [t.text for t in self.comparable_tokens()]

    def __str__(self) -> str:
        return " ".join(t.text for t in self.tokens)


def _classify(text: str, thesaurus: Thesaurus) -> Tuple[TokenType, bool]:
    """Return (token type, ignored flag) for one token string.

    Concept *triggers* stay content tokens — tagging (step 4) adds the
    concept name as a separate CONCEPT token rather than retyping the
    trigger: "elements with tokens Price, Cost and Value are all
    associated with the concept Money" means Price keeps matching as a
    word while Money joins the comparison as shared semantics.
    """
    if text.isdigit():
        return TokenType.NUMBER, False
    if text in _SPECIAL_CHARS:
        return TokenType.SPECIAL, False
    if thesaurus.is_stopword(text):
        # Common words are both typed COMMON and ignored for comparison.
        return TokenType.COMMON, True
    return TokenType.CONTENT, False


class Normalizer:
    """Applies the four normalization steps with a given thesaurus.

    Normalization is pure and memoized per raw name: schemas repeat
    names constantly (Street, City, ...) and the matcher normalizes
    every element of both schemas.
    """

    def __init__(self, thesaurus: Thesaurus) -> None:
        self.thesaurus = thesaurus
        self._cache: Dict[str, NormalizedName] = {}

    def normalize(self, name: str) -> NormalizedName:
        cached = self._cache.get(name)
        if cached is not None:
            return cached

        expanded: List[str] = []
        # Whole-name lookup first: mixed-case acronyms like "UoM" would
        # otherwise be split by the camel-case tokenizer into "uo"+"m"
        # and never match their thesaurus entry.
        whole = self.thesaurus.expansion(name.lower())
        if whole:
            expanded.extend(whole)
        else:
            for raw_token in tokenize(name):
                expansion = self.thesaurus.expansion(raw_token)
                if expansion:
                    expanded.extend(expansion)
                else:
                    expanded.append(raw_token)

        tokens: List[Token] = []
        concepts: Set[str] = set()
        for text in expanded:
            token_type, ignored = _classify(text, self.thesaurus)
            tokens.append(Token(text, token_type, ignored))
            concept = self.thesaurus.concept_of(text)
            if concept:
                concepts.add(concept)

        # Tagging: the concept names join the token set as CONCEPT
        # tokens, so semantically tagged elements (Price, Cost) share
        # concept tokens (money) even when their words differ.
        for concept in sorted(concepts):
            tokens.append(Token(concept, TokenType.CONCEPT))

        normalized = NormalizedName(
            raw=name, tokens=tuple(tokens), concepts=frozenset(concepts)
        )
        self._cache[name] = normalized
        return normalized
