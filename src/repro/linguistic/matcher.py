"""The linguistic matching phase (Section 5) producing the lsim table.

Pipeline: normalize all element names → categorize both schemas →
find compatible category pairs → compare elements of compatible
categories → ``lsim(m1, m2) = ns(m1, m2) × max_{c1,c2} ns(c1, c2)``.

"The similarity is assumed to be zero for schema elements that do not
belong to any compatible categories."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.linguistic.categorization import Categorizer, Category
from repro.linguistic.name_similarity import element_name_similarity
from repro.linguistic.normalizer import Normalizer
from repro.linguistic.thesaurus import Thesaurus
from repro.model.element import SchemaElement
from repro.model.schema import Schema


class LsimTable:
    """Sparse table of linguistic similarity coefficients.

    Keys are ``(source_element_id, target_element_id)``; absent pairs
    read as 0.0 (not linguistically comparable).
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str], float] = {}

    def set(self, source: SchemaElement, target: SchemaElement, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"lsim {value} outside [0, 1]")
        self._table[(source.element_id, target.element_id)] = value

    def get(self, source: SchemaElement, target: SchemaElement) -> float:
        return self._table.get((source.element_id, target.element_id), 0.0)

    def get_by_id(self, source_id: str, target_id: str) -> float:
        return self._table.get((source_id, target_id), 0.0)

    def items(self) -> Iterable[Tuple[Tuple[str, str], float]]:
        return self._table.items()

    def __len__(self) -> int:
        return len(self._table)


class LinguisticMatcher:
    """Computes lsim between all comparable element pairs of two schemas."""

    def __init__(
        self,
        thesaurus: Thesaurus,
        config: Optional[CupidConfig] = None,
    ) -> None:
        self.thesaurus = thesaurus
        self.config = config or DEFAULT_CONFIG
        self.config.validate()
        self.normalizer = Normalizer(thesaurus)
        self.categorizer = Categorizer(thesaurus, self.normalizer, self.config)
        self._descriptions = None
        if self.config.use_descriptions:
            from repro.linguistic.descriptions import DescriptionMatcher

            self._descriptions = DescriptionMatcher(
                thesaurus, self.normalizer, self.config
            )

    def compute(self, source: Schema, target: Schema) -> LsimTable:
        """Build the full lsim table for ``source`` × ``target``.

        Only element pairs that share at least one compatible category
        pair are compared; for them,
        ``lsim = ns(m1, m2) × max ns(c1, c2)`` over the compatible
        category pairs both belong to.
        """
        source_categories = self.categorizer.categorize(source)
        target_categories = self.categorizer.categorize(target)

        # Map element id -> categories it belongs to, per schema.
        source_membership = _membership(source_categories.values())
        target_membership = _membership(target_categories.values())

        # Precompute compatible category pairs and their similarity.
        compatible_pairs: Dict[Tuple[str, str], float] = {}
        for c1 in source_categories.values():
            for c2 in target_categories.values():
                if self.categorizer.compatible(c1, c2):
                    compatible_pairs[(c1.key, c2.key)] = (
                        self.categorizer.category_similarity(c1, c2)
                    )

        # For each element pair in some compatible category pair, the
        # category scale factor is the max over all its compatible pairs.
        scale: Dict[Tuple[str, str], float] = {}
        elements_by_id_s = {e.element_id: e for e in source.elements}
        elements_by_id_t = {e.element_id: e for e in target.elements}
        for (key1, key2), cat_sim in compatible_pairs.items():
            for m1 in source_categories[key1].members:
                for m2 in target_categories[key2].members:
                    pair = (m1.element_id, m2.element_id)
                    if cat_sim > scale.get(pair, 0.0):
                        scale[pair] = cat_sim

        table = LsimTable()
        for (id1, id2), cat_scale in scale.items():
            m1 = elements_by_id_s[id1]
            m2 = elements_by_id_t[id2]
            ns = element_name_similarity(
                self.normalizer.normalize(m1.name),
                self.normalizer.normalize(m2.name),
                self.thesaurus,
                self.config,
            )
            lsim = min(1.0, ns * cat_scale)
            if self._descriptions is not None:
                # Annotations can only raise lsim: a strong description
                # match rescues pairs with uninformative names.
                desc = self._descriptions.similarity(m1, m2)
                lsim = max(lsim, self.config.description_weight * desc)
            if lsim > 0.0:
                table.set(m1, m2, lsim)

        if self._descriptions is not None:
            # Categorization prunes by names; annotated pairs whose
            # names share nothing still deserve a description-driven
            # comparison (that is the point of the annotations).
            described_s = [
                e for e in source.elements
                if e.description and not e.not_instantiated
            ]
            described_t = [
                e for e in target.elements
                if e.description and not e.not_instantiated
            ]
            for m1 in described_s:
                for m2 in described_t:
                    if (m1.element_id, m2.element_id) in scale:
                        continue
                    desc = self._descriptions.similarity(m1, m2)
                    lsim = self.config.description_weight * desc
                    if lsim > 0.0:
                        table.set(m1, m2, lsim)
        return table


def _membership(
    categories: Iterable[Category],
) -> Dict[str, List[Category]]:
    membership: Dict[str, List[Category]] = {}
    for category in categories:
        for member in category.members:
            membership.setdefault(member.element_id, []).append(category)
    return membership
