"""The linguistic matching phase (Section 5) producing the lsim table.

Pipeline: normalize all element names → categorize both schemas →
find compatible category pairs → compare elements of compatible
categories → ``lsim(m1, m2) = ns(m1, m2) × max_{c1,c2} ns(c1, c2)``.

"The similarity is assumed to be zero for schema elements that do not
belong to any compatible categories."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.linguistic.categorization import Categorizer, Category
from repro.linguistic.name_similarity import (
    NameSimilarityMemo,
    element_name_similarity,
)
from repro.linguistic.normalizer import NormalizedName, Normalizer
from repro.linguistic.thesaurus import Thesaurus
from repro.model.element import SchemaElement
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids the
    # matcher <-> kernel import cycle; kernel imports LsimTable)
    from repro.linguistic.kernel import SchemaVocabulary


class LsimTable:
    """Sparse table of linguistic similarity coefficients.

    Keys are ``(source_element_id, target_element_id)``; absent pairs
    read as 0.0 (not linguistically comparable).
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str], float] = {}

    def set(self, source: SchemaElement, target: SchemaElement, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"lsim {value} outside [0, 1]")
        self._table[(source.element_id, target.element_id)] = value

    def get(self, source: SchemaElement, target: SchemaElement) -> float:
        return self._table.get((source.element_id, target.element_id), 0.0)

    def get_by_id(self, source_id: str, target_id: str) -> float:
        return self._table.get((source_id, target_id), 0.0)

    def items(self) -> Iterable[Tuple[Tuple[str, str], float]]:
        return self._table.items()

    def copy(self) -> "LsimTable":
        """Independent copy (cheap: one dict copy).

        :class:`repro.pipeline.session.MatchSession` caches the table
        per schema pair and hands out copies, so initial-mapping hints
        applied to one run never leak into the cached original.
        """
        duplicate = LsimTable()
        duplicate._table = dict(self._table)
        return duplicate

    def __len__(self) -> int:
        return len(self._table)


@dataclass
class LinguisticPreparation:
    """One schema's share of the linguistic phase (Section 5).

    Categorization and name normalization depend only on the schema
    (plus thesaurus/config), not on what it will be matched against —
    so a :class:`~repro.pipeline.prepared.PreparedSchema` computes this
    once and every subsequent match against any partner reuses it.
    """

    schema: Schema
    categories: Dict[str, Category]
    normalized: Dict[str, NormalizedName]
    elements_by_id: Dict[str, SchemaElement]
    #: Elements carrying a data-dictionary description (the
    #: ``use_descriptions`` extension compares these even when
    #: categorization would prune the pair).
    described: List[SchemaElement]
    #: Distinct-name/profile factoring for the linguistic kernel
    #: (:mod:`repro.linguistic.kernel`), built lazily on the first
    #: kernel match and cached here — a PreparedSchema retains this
    #: object, which makes the vocabulary a per-schema session cache
    #: tier like the tree and leaf layout.
    vocabulary: Optional["SchemaVocabulary"] = None


class LinguisticMatcher:
    """Computes lsim between all comparable element pairs of two schemas."""

    def __init__(
        self,
        thesaurus: Thesaurus,
        config: Optional[CupidConfig] = None,
    ) -> None:
        self.thesaurus = thesaurus
        self.config = config or DEFAULT_CONFIG
        self.config.validate()
        self.normalizer = Normalizer(thesaurus)
        self.categorizer = Categorizer(thesaurus, self.normalizer, self.config)
        #: Similarity memo for the dense engine; the reference engine
        #: recomputes every pair (it is the correctness oracle).
        self.memo: Optional[NameSimilarityMemo] = (
            NameSimilarityMemo(thesaurus, self.config)
            if self.config.engine == "dense"
            else None
        )
        self._descriptions = None
        if self.config.use_descriptions:
            from repro.linguistic.descriptions import DescriptionMatcher

            self._descriptions = DescriptionMatcher(
                thesaurus, self.normalizer, self.config
            )

    def prepare(self, schema: Schema) -> LinguisticPreparation:
        """The per-schema half of :meth:`compute`.

        Normalizes every element name exactly once and categorizes the
        schema; both are pure functions of (schema, thesaurus, config),
        so callers may cache the result and reuse it across matches
        against any number of partners.
        """
        return LinguisticPreparation(
            schema=schema,
            categories=self.categorizer.categorize(schema),
            normalized={
                e.element_id: self.normalizer.normalize(e.name)
                for e in schema.elements
            },
            elements_by_id={e.element_id: e for e in schema.elements},
            described=[
                e for e in schema.elements
                if e.description and not e.not_instantiated
            ],
        )

    def compute(self, source: Schema, target: Schema) -> LsimTable:
        """Build the full lsim table for ``source`` × ``target``.

        Only element pairs that share at least one compatible category
        pair are compared; for them,
        ``lsim = ns(m1, m2) × max ns(c1, c2)`` over the compatible
        category pairs both belong to.
        """
        return self.compute_prepared(
            self.prepare(source), self.prepare(target)
        )

    def vocabulary(self, prep: LinguisticPreparation) -> "SchemaVocabulary":
        """The preparation's distinct-name vocabulary, built once.

        Cached on the preparation itself, so a session that retains
        the :class:`~repro.pipeline.prepared.PreparedSchema` reuses the
        factoring across every match the schema participates in.
        """
        if prep.vocabulary is None:
            from repro.linguistic.kernel import SchemaVocabulary

            prep.vocabulary = SchemaVocabulary(prep)
        return prep.vocabulary

    def kernel_applicable(self) -> bool:
        """Whether the distinct-name kernel may serve this matcher.

        Requires the dense engine's memo (the kernel reads name
        similarities through it) and no description matching
        (description similarity depends on the *element*, not only its
        name, so broadcast-by-profile would be unsound). The single
        source of the applicability rule — eager builders
        (:meth:`PreparedSchema.build_all`) consult it too, so they
        cannot drift from the match path.
        """
        return (
            self.config.linguistic_kernel
            and self.memo is not None
            and self._descriptions is None
        )

    def compute_prepared(
        self,
        source_prep: LinguisticPreparation,
        target_prep: LinguisticPreparation,
    ) -> LsimTable:
        """The cross-schema half of :meth:`compute`.

        Consumes two :class:`LinguisticPreparation` artifacts (freshly
        built or cached) and produces the pair's lsim table; the values
        are bit-identical either way because preparation is pure.

        With the dense engine, routes through the distinct-name kernel
        (:mod:`repro.linguistic.kernel`): similarity per distinct name
        pair, broadcast to element pairs — same values, fewer
        computations on repetitive schemas.
        """
        if self.kernel_applicable():
            from repro.linguistic.kernel import (
                compute_factored_lsim,
                numpy_enabled,
            )

            return compute_factored_lsim(
                self.categorizer,
                self.memo,
                self.vocabulary(source_prep),
                self.vocabulary(target_prep),
                numpy_enabled(self.config.dense_backend),
            )
        return self._compute_prepared_reference(source_prep, target_prep)

    def _compute_prepared_reference(
        self,
        source_prep: LinguisticPreparation,
        target_prep: LinguisticPreparation,
    ) -> LsimTable:
        """Per-element-pair lsim (the correctness oracle's path, and
        the fallback when descriptions or the reference engine are in
        play)."""
        source_categories = source_prep.categories
        target_categories = target_prep.categories
        normalized_s = source_prep.normalized
        normalized_t = target_prep.normalized
        memo = self.memo

        # Precompute compatible category pairs and their similarity
        # (one keyword comparison per pair — compatibility and strength
        # come from the same call).
        compatible_pairs: Dict[Tuple[str, str], float] = {}
        for c1 in source_categories.values():
            for c2 in target_categories.values():
                cat_sim = self.categorizer.compatible_similarity(
                    c1, c2, memo
                )
                if cat_sim is not None:
                    compatible_pairs[(c1.key, c2.key)] = cat_sim

        # For each element pair in some compatible category pair, the
        # category scale factor is the max over all its compatible pairs.
        scale: Dict[Tuple[str, str], float] = {}
        elements_by_id_s = source_prep.elements_by_id
        elements_by_id_t = target_prep.elements_by_id
        for (key1, key2), cat_sim in compatible_pairs.items():
            for m1 in source_categories[key1].members:
                for m2 in target_categories[key2].members:
                    pair = (m1.element_id, m2.element_id)
                    if cat_sim > scale.get(pair, 0.0):
                        scale[pair] = cat_sim

        table = LsimTable()
        for (id1, id2), cat_scale in scale.items():
            m1 = elements_by_id_s[id1]
            m2 = elements_by_id_t[id2]
            name1 = normalized_s[id1]
            name2 = normalized_t[id2]
            if memo is not None:
                ns = memo.element_name_similarity(name1, name2)
            else:
                ns = element_name_similarity(
                    name1, name2, self.thesaurus, self.config
                )
            lsim = min(1.0, ns * cat_scale)
            if self._descriptions is not None:
                # Annotations can only raise lsim: a strong description
                # match rescues pairs with uninformative names.
                desc = self._descriptions.similarity(m1, m2)
                lsim = max(lsim, self.config.description_weight * desc)
            if lsim > 0.0:
                table.set(m1, m2, lsim)

        if self._descriptions is not None:
            # Categorization prunes by names; annotated pairs whose
            # names share nothing still deserve a description-driven
            # comparison (that is the point of the annotations).
            for m1 in source_prep.described:
                for m2 in target_prep.described:
                    if (m1.element_id, m2.element_id) in scale:
                        continue
                    desc = self._descriptions.similarity(m1, m2)
                    lsim = self.config.description_weight * desc
                    if lsim > 0.0:
                        table.set(m1, m2, lsim)
        return table
