"""Linguistic matching (paper Section 5).

The first phase of Cupid: normalization (tokenize, expand, eliminate,
tag), categorization (cluster elements into keyword-identified
categories to prune comparisons), and comparison (token-set name
similarity scaled by category similarity) yielding the ``lsim`` table.

Note: ``repro.config`` imports :class:`TokenType` from this package, so
the config-dependent members (categorizer, name similarity, matcher)
are exposed lazily via module ``__getattr__`` to keep imports acyclic.
"""

from repro.linguistic.tokens import Token, TokenType
from repro.linguistic.tokenizer import tokenize
from repro.linguistic.thesaurus import Thesaurus, ThesaurusEntry, empty_thesaurus
from repro.linguistic.lexicon import (
    builtin_thesaurus,
    paper_experiment_thesaurus,
)
from repro.linguistic.normalizer import NormalizedName, Normalizer

__all__ = [
    "Categorizer",
    "Category",
    "LinguisticMatcher",
    "LsimTable",
    "NormalizedName",
    "Normalizer",
    "Thesaurus",
    "ThesaurusEntry",
    "Token",
    "TokenType",
    "builtin_thesaurus",
    "element_name_similarity",
    "empty_thesaurus",
    "paper_experiment_thesaurus",
    "token_set_similarity",
    "token_similarity",
    "tokenize",
]

_LAZY = {
    "Categorizer": ("repro.linguistic.categorization", "Categorizer"),
    "Category": ("repro.linguistic.categorization", "Category"),
    "LinguisticMatcher": ("repro.linguistic.matcher", "LinguisticMatcher"),
    "LsimTable": ("repro.linguistic.matcher", "LsimTable"),
    "element_name_similarity": (
        "repro.linguistic.name_similarity", "element_name_similarity"
    ),
    "token_set_similarity": (
        "repro.linguistic.name_similarity", "token_set_similarity"
    ),
    "token_similarity": (
        "repro.linguistic.name_similarity", "token_similarity"
    ),
}


def __getattr__(name):
    """Lazily resolve config-dependent members (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
