"""Bundled lexical knowledge.

The Cupid prototype used a thesaurus combining "terms used in common
language as well as domain-specific references" (Section 5.1). We have
no network access to WordNet, so we bundle a hand-curated lexicon that
covers common business/schema vocabulary — a strict superset of the six
entries the paper's own CIDX–Excel experiment used (4 abbreviations:
UOM, PO, Qty, Num; 2 synonym pairs: Invoice≈Bill, Ship≈Deliver).

Two constructors are exported:

* :func:`builtin_thesaurus` — the full bundled lexicon, the default for
  library users.
* :func:`paper_experiment_thesaurus` — exactly the paper's six entries,
  used by the Table 3 benchmark for fidelity to Section 9.2.
"""

from __future__ import annotations

from repro.linguistic.thesaurus import Thesaurus

#: Articles, prepositions, and conjunctions eliminated in Section 5.1.
STOPWORDS = (
    "a an the of in on at to for by with from as and or nor but so "
    "per via is are was be been"
).split()

#: (short form, expansion tokens) — abbreviations and acronyms.
ABBREVIATIONS = [
    ("po", ["purchase", "order"]),
    ("qty", ["quantity"]),
    ("uom", ["unit", "of", "measure"]),
    ("num", ["number"]),
    ("no", ["number"]),
    ("nbr", ["number"]),
    ("amt", ["amount"]),
    ("addr", ["address"]),
    ("tel", ["telephone"]),
    ("ph", ["phone"]),
    ("fax", ["facsimile"]),
    ("id", ["identifier"]),
    ("desc", ["description"]),
    ("descr", ["description"]),
    ("acct", ["account"]),
    ("cust", ["customer"]),
    ("emp", ["employee"]),
    ("ord", ["order"]),
    ("prod", ["product"]),
    ("attn", ["attention"]),
    ("ssn", ["social", "security", "number"]),
    ("dob", ["date", "of", "birth"]),
    ("fk", ["foreign", "key"]),
    ("pk", ["primary", "key"]),
    ("min", ["minimum"]),
    ("max", ["maximum"]),
    ("avg", ["average"]),
    ("org", ["organization"]),
    ("dept", ["department"]),
    ("mgr", ["manager"]),
    ("cat", ["category"]),
    ("exp", ["expiration"]),
    ("cred", ["credit"]),
    ("rdb", ["relational", "database"]),
]

#: (a, b, strength) synonym entries.
SYNONYMS = [
    ("invoice", "bill", 0.95),
    ("ship", "deliver", 0.95),
    ("shipping", "delivery", 0.95),
    # Related but not interchangeable: strong enough to support a match
    # when nothing better exists, weak enough that an exact-name
    # counterpart (Count vs ItemCount) always wins over the synonym.
    ("quantity", "count", 0.7),
    ("telephone", "phone", 0.95),
    ("e-mail", "email", 1.0),
    ("mail", "email", 0.7),
    ("zip", "postal", 0.9),
    ("state", "province", 0.85),
    ("company", "organization", 0.85),
    ("client", "customer", 0.9),
    ("cost", "price", 0.9),
    ("value", "amount", 0.8),
    ("item", "article", 0.85),
    ("item", "product", 0.75),
    ("goods", "product", 0.8),
    ("vendor", "supplier", 0.9),
    ("purchase", "order", 0.5),
    ("city", "town", 0.85),
    ("street", "road", 0.8),
    ("first", "given", 0.8),
    ("last", "family", 0.8),
    ("surname", "last", 0.8),
    ("salary", "pay", 0.85),
    ("wage", "pay", 0.85),
    ("begin", "start", 0.9),
    ("end", "finish", 0.9),
    ("car", "automobile", 0.95),
    ("employee", "worker", 0.85),
    ("header", "heading", 0.8),
    ("line", "row", 0.7),
    ("function", "role", 0.7),
    ("code", "identifier", 0.6),
    ("contact", "person", 0.6),
    ("territory", "region", 0.8),
    ("area", "region", 0.8),
    ("brand", "make", 0.7),
    ("payment", "remittance", 0.8),
    ("freight", "shipping", 0.7),
    ("discount", "rebate", 0.8),
]

#: (term, broader term, strength) hypernym entries.
HYPERNYMS = [
    ("customer", "person", 0.75),
    ("employee", "person", 0.75),
    ("contact", "person", 0.7),
    ("city", "place", 0.6),
    ("country", "place", 0.6),
    ("invoice", "document", 0.5),
    ("order", "document", 0.5),
    ("car", "vehicle", 0.75),
    ("truck", "vehicle", 0.75),
    ("street", "address", 0.5),
    ("quantity", "number", 0.5),
    ("price", "money", 0.6),
]

#: concept name → trigger tokens (Section 5.1 "Tagging": "elements with
#: tokens Price, Cost and Value are all associated with ... Money").
CONCEPTS = {
    "money": ["price", "cost", "value", "amount", "charge", "fee",
              "salary", "wage", "pay", "rate", "discount", "total"],
    "address": ["street", "city", "state", "province", "zip", "postal",
                "country", "address"],
    "person": ["name", "contact", "attention", "person"],
    "time": ["date", "day", "month", "year", "time", "quarter", "week",
             "holiday", "weekend"],
    "identifier": ["identifier", "key", "code", "ssn", "guid"],
    "communication": ["telephone", "phone", "email", "facsimile",
                      "extension", "workphone"],
    "quantity": ["quantity", "count", "measure", "unit"],
}


def builtin_thesaurus() -> Thesaurus:
    """The full bundled common-language + business-domain thesaurus."""
    thesaurus = Thesaurus(name="builtin")
    thesaurus.add_stopwords(STOPWORDS)
    for short, expansion in ABBREVIATIONS:
        thesaurus.add_abbreviation(short, expansion)
    for a, b, strength in SYNONYMS:
        thesaurus.add_synonym(a, b, strength)
    for term, broader, strength in HYPERNYMS:
        thesaurus.add_hypernym(term, broader, strength)
    for concept, triggers in CONCEPTS.items():
        thesaurus.add_concept(concept, triggers)
    return thesaurus


def paper_experiment_thesaurus() -> Thesaurus:
    """Exactly the thesaurus of the paper's CIDX–Excel run (§9.2).

    "For Cupid, the thesauri had a total of 4 abbreviations (UOM, PO,
    Qty, Num) and 2 synonymy entries (Invoice,Bill; Ship,Deliver) that
    were relevant to the example." Stopwords are kept: elimination is
    part of normalization, not of the domain thesaurus.
    """
    thesaurus = Thesaurus(name="paper-cidx-excel")
    thesaurus.add_stopwords(STOPWORDS)
    thesaurus.add_abbreviation("uom", ["unit", "of", "measure"])
    thesaurus.add_abbreviation("po", ["purchase", "order"])
    thesaurus.add_abbreviation("qty", ["quantity"])
    thesaurus.add_abbreviation("num", ["number"])
    thesaurus.add_synonym("invoice", "bill", 0.95)
    thesaurus.add_synonym("ship", "deliver", 0.95)
    return thesaurus
