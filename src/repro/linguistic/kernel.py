"""Distinct-name linguistic similarity kernel.

The reference linguistic phase (Section 5) walks the element-pair
cross product of every compatible category pair: its cost grows with
the number of *elements*, even though ``lsim`` only depends on element
*names* and category *keywords*. Real schemas repeat both heavily
(wide fact tables reuse "id"/"name"/"date" columns, star schemas stamp
out the same dimension attributes), so the per-pair work is mostly
duplicates.

This module factors a prepared schema into its linguistic vocabulary:

* **distinct normalized names** — ``ns(m1, m2)`` reads nothing but the
  two names, so one similarity per distinct name pair covers every
  element pair that carries those names;
* **category classes** — two categories with the same keyword token
  sequence (and the same dtype-ness) are interchangeable in every
  compatibility decision, so compatibility is decided once per class
  pair instead of once per category pair;
* **profiles** — elements sharing (distinct name, category-class set)
  are fully exchangeable for lsim purposes; the scale map ("max
  category similarity over compatible pairs") and the final
  ``min(1, ns × scale)`` are computed once per *profile* pair and
  broadcast to every member element pair.

:class:`FactoredLsimTable` keeps the profile-level result and behaves
like a plain :class:`~repro.linguistic.matcher.LsimTable`: reads gather
through the factored indices, the dict form is materialized lazily on
first ``items()``, and the first ``set()`` (initial-mapping hints)
permanently switches the table to dict mode. Every value is produced by
exactly the scalar expressions the reference path uses (same ``ns``
through the memo, same float ``max`` over category similarities, same
``min(1.0, ns * scale)`` product), so the factored table is
**bit-identical** to the reference table — the engine parity tests
assert exact equality.

The scale-map build follows the optional-numpy pattern of
:mod:`repro.structure.dense`: flat ``array('d')`` matrices, upgraded
with zero-copy ``np.frombuffer`` views when numpy is importable, never
a hard dependency.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.linguistic.matcher import LsimTable

try:  # optional acceleration, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via dense_backend="stdlib"
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.linguistic.categorization import Categorizer, Category
    from repro.linguistic.matcher import LinguisticPreparation
    from repro.linguistic.name_similarity import NameSimilarityMemo
    from repro.linguistic.normalizer import NormalizedName


#: Compatible class pairs whose profile block has at least this many
#: cells use the numpy max-scatter; smaller blocks take the flat loop
#: (same trade-off as DenseSimilarityStore._VECTOR_MIN_CELLS).
_VECTOR_MIN_CELLS = 1024


def numpy_enabled(dense_backend: str) -> bool:
    """Whether the kernel should use its numpy paths for this config.

    Mirrors :func:`repro.structure.dense.resolve_backend` without
    importing it (structure already imports linguistic): ``"stdlib"``
    forces the flat-array loops, anything else uses numpy when
    importable. A forced-but-missing ``"numpy"`` backend fails loudly
    in the dense store; the kernel just falls back.
    """
    return _np is not None and dense_backend != "stdlib"


class SchemaVocabulary:
    """One schema's distinct-name / category-class / profile tables.

    A pure function of a :class:`~repro.linguistic.matcher.
    LinguisticPreparation` (itself pure in schema, thesaurus, config),
    so a :class:`~repro.pipeline.prepared.PreparedSchema` caches it as
    another per-schema artifact tier: every match the schema
    participates in reuses the same factoring.
    """

    __slots__ = (
        "names",
        "name_index",
        "classes",
        "class_is_dtype",
        "class_keywords",
        "class_texts",
        "class_profiles",
        "profile_names",
        "profile_members",
        "profile_of",
        "n_elements",
    )

    def __init__(self, prep: "LinguisticPreparation") -> None:
        #: Distinct normalized names, first-seen order.
        self.names: List["NormalizedName"] = []
        self.name_index: Dict[str, int] = {}
        #: One representative Category per distinct (dtype-ness,
        #: keyword-token sequence) class — compatibility and similarity
        #: read nothing else, so one representative decides for all.
        self.classes: List["Category"] = []
        #: Per class: is it a data-type category (the compatibility
        #: rule pairs dtype only with dtype)?
        self.class_is_dtype: List[bool] = []
        #: Per class: non-ignored keyword tokens / their text tuple —
        #: precomputed so the compatibility scan probes the memo
        #: without per-pair filtering or tuple building.
        self.class_keywords: List[Tuple] = []
        self.class_texts: List[Tuple[str, ...]] = []
        #: class id -> ascending profile ids containing the class.
        self.class_profiles: List[List[int]] = []
        #: profile id -> distinct-name (vocab) id.
        self.profile_names: List[int] = []
        #: profile id -> member element ids.
        self.profile_members: List[List[str]] = []
        #: element id -> profile id (absent: element in no category,
        #: linguistically incomparable, lsim 0 against everything).
        self.profile_of: Dict[str, int] = {}
        self.n_elements = len(prep.elements_by_id)
        self._build(prep)

    def _build(self, prep: "LinguisticPreparation") -> None:
        class_index: Dict[Tuple, int] = {}
        # element id -> set of class ids (categories can list an
        # element twice; the reference scale loop just re-maxes, so a
        # set keeps the same semantics).
        element_classes: Dict[str, set] = {}
        for category in prep.categories.values():
            key = (
                category.source == "dtype",
                tuple((t.text, t.ignored) for t in category.keywords),
            )
            class_id = class_index.get(key)
            if class_id is None:
                class_id = class_index[key] = len(self.classes)
                self.classes.append(category)
                self.class_is_dtype.append(key[0])
                filtered = tuple(
                    t for t in category.keywords if not t.ignored
                )
                self.class_keywords.append(filtered)
                self.class_texts.append(tuple(t.text for t in filtered))
            for member in category.members:
                element_classes.setdefault(
                    member.element_id, set()
                ).add(class_id)

        normalized = prep.normalized
        profile_index: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self.class_profiles = [[] for _ in self.classes]
        for element_id, class_ids in element_classes.items():
            raw = normalized[element_id].raw
            vocab_id = self.name_index.get(raw)
            if vocab_id is None:
                vocab_id = self.name_index[raw] = len(self.names)
                self.names.append(normalized[element_id])
            profile_key = (vocab_id, tuple(sorted(class_ids)))
            profile_id = profile_index.get(profile_key)
            if profile_id is None:
                profile_id = profile_index[profile_key] = len(
                    self.profile_names
                )
                self.profile_names.append(vocab_id)
                self.profile_members.append([])
                for class_id in profile_key[1]:
                    self.class_profiles[class_id].append(profile_id)
            self.profile_members[profile_id].append(element_id)
            self.profile_of[element_id] = profile_id

    @property
    def n_names(self) -> int:
        return len(self.names)

    @property
    def n_profiles(self) -> int:
        return len(self.profile_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SchemaVocabulary {self.n_elements} elements -> "
            f"{self.n_names} names, {len(self.classes)} classes, "
            f"{self.n_profiles} profiles>"
        )


class FactoredLsimTable(LsimTable):
    """An :class:`LsimTable` stored as a profile-level value matrix.

    ``values`` is row-major ``n_source_profiles × n_target_profiles``;
    cell (p, q) holds the lsim shared by every element pair drawn from
    the two profiles' member lists (0.0 where incompatible or the name
    similarity is zero — exactly the pairs the reference table omits).

    Three lifecycle states:

    * **factored** — reads gather through ``profile_of``; nothing
      materialized. The dense engine consumes this form directly.
    * **materialized** — ``items()``/``len()`` filled the dict form
      (same entries the reference path stores); reads still gather.
    * **mutated** — the first ``set()`` (initial-mapping hints)
      materializes and switches reads to the dict permanently.
    """

    def __init__(
        self,
        source_vocab: SchemaVocabulary,
        target_vocab: SchemaVocabulary,
        values: array,
        kernel_stats: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__()
        self._source_vocab = source_vocab
        self._target_vocab = target_vocab
        self._values = values
        self._np_values = None
        self._materialized = False
        self._factored_live = True
        #: Counter dump for ``--stats`` (vocabulary sizes, kernel
        #: dedup rates); shared by copies.
        self.kernel_stats: Dict[str, object] = kernel_stats or {}

    # -- factored accessors (consumed by the dense engine's gather) ----

    @property
    def factored_live(self) -> bool:
        """True while the factored form is authoritative (no ``set``)."""
        return self._factored_live

    @property
    def profile_of_source(self) -> Dict[str, int]:
        return self._source_vocab.profile_of

    @property
    def profile_of_target(self) -> Dict[str, int]:
        return self._target_vocab.profile_of

    @property
    def n_source_profiles(self) -> int:
        return self._source_vocab.n_profiles

    @property
    def n_target_profiles(self) -> int:
        return self._target_vocab.n_profiles

    @property
    def profile_values(self) -> array:
        return self._values

    def numpy_values(self):
        """Zero-copy numpy view over the profile value matrix."""
        if self._np_values is None:
            self._np_values = _np.frombuffer(
                self._values, dtype=_np.float64
            ).reshape(self.n_source_profiles, self.n_target_profiles)
        return self._np_values

    # -- LsimTable API -------------------------------------------------

    def get_by_id(self, source_id: str, target_id: str) -> float:
        if not self._factored_live:
            return self._table.get((source_id, target_id), 0.0)
        p = self._source_vocab.profile_of.get(source_id)
        if p is None:
            return 0.0
        q = self._target_vocab.profile_of.get(target_id)
        if q is None:
            return 0.0
        return self._values[p * self._target_vocab.n_profiles + q]

    def get(self, source, target) -> float:
        return self.get_by_id(source.element_id, target.element_id)

    def set(self, source, target, value: float) -> None:
        # Hints invalidate the factored form: broadcast-by-profile can
        # no longer represent a single overridden pair.
        self._ensure_materialized()
        self._factored_live = False
        super().set(source, target, value)

    def items(self) -> Iterable[Tuple[Tuple[str, str], float]]:
        self._ensure_materialized()
        return self._table.items()

    def __len__(self) -> int:
        self._ensure_materialized()
        return len(self._table)

    def copy(self) -> LsimTable:
        if not self._factored_live:
            return super().copy()
        # Factored copies share the immutable vocabulary/value arrays;
        # a later set() on the copy materializes its own dict, so the
        # session's cached original stays pristine.
        return FactoredLsimTable(
            self._source_vocab,
            self._target_vocab,
            self._values,
            kernel_stats=self.kernel_stats,
        )

    def _ensure_materialized(self) -> None:
        """Broadcast the profile matrix into the dict form (once).

        Entry set and values are exactly what the reference path
        stores: every member-pair of a nonzero profile cell, nothing
        else.
        """
        if self._materialized:
            return
        values = self._values
        n_t = self._target_vocab.n_profiles
        t_members = self._target_vocab.profile_members
        table = self._table
        for p, s_ids in enumerate(self._source_vocab.profile_members):
            base = p * n_t
            for q, t_ids in enumerate(t_members):
                value = values[base + q]
                if value > 0.0:
                    for id1 in s_ids:
                        for id2 in t_ids:
                            table[(id1, id2)] = value
        self._materialized = True


def compute_factored_lsim(
    categorizer: "Categorizer",
    memo: "NameSimilarityMemo",
    source_vocab: SchemaVocabulary,
    target_vocab: SchemaVocabulary,
    use_numpy: bool,
) -> FactoredLsimTable:
    """Build the pair's lsim table over the distinct-name cross product.

    Three steps, each over deduplicated axes:

    1. category-class compatibility (per class pair, via the shared
       :class:`Categorizer` logic and memo);
    2. the scale map as a profile×profile max matrix (numpy max-scatter
       per compatible class pair, flat-loop fallback);
    3. ``min(1, ns × scale)`` with ``ns`` computed once per distinct
       name pair and broadcast by index gather.
    """
    p_s, p_t = source_vocab.n_profiles, target_vocab.n_profiles
    size = p_s * p_t
    scale = array("d", bytes(8 * size))
    scale_np = (
        _np.frombuffer(scale, dtype=_np.float64).reshape(p_s, p_t)
        if use_numpy and size
        else None
    )

    # 1 + 2: compatibility per class pair, max-scattered onto the
    # profile blocks that carry the two classes. Mirrors
    # Categorizer.compatible_similarity — dtype classes pair only with
    # dtype classes (partitioned up front instead of re-tested per
    # pair), keyword similarity >= thns — through the memo's
    # prefiltered probe, so values match the reference scan exactly.
    thns = categorizer.config.thns
    token_set_sim = memo.token_set_similarity_prefiltered
    s_texts, t_texts = source_vocab.class_texts, target_vocab.class_texts
    s_keywords = source_vocab.class_keywords
    t_keywords = target_vocab.class_keywords
    t_class_ids_by_kind = ([], [])  # [non-dtype ids], [dtype ids]
    for j, is_dtype in enumerate(target_vocab.class_is_dtype):
        t_class_ids_by_kind[is_dtype].append(j)
    np_rows_cache: Dict[int, object] = {}
    np_cols_cache: Dict[int, object] = {}
    compatible_class_pairs = 0
    for i, is_dtype in enumerate(source_vocab.class_is_dtype):
        rows = source_vocab.class_profiles[i]
        if not rows:
            continue
        texts1 = s_texts[i]
        keywords1 = s_keywords[i]
        for j in t_class_ids_by_kind[is_dtype]:
            cols = target_vocab.class_profiles[j]
            if not cols:
                continue
            cat_sim = token_set_sim(
                (texts1, t_texts[j]), keywords1, t_keywords[j]
            )
            if cat_sim < thns:
                continue
            compatible_class_pairs += 1
            if (
                scale_np is not None
                and len(rows) * len(cols) >= _VECTOR_MIN_CELLS
            ):
                np_rows = np_rows_cache.get(i)
                if np_rows is None:
                    np_rows = np_rows_cache[i] = _np.asarray(
                        rows, dtype=_np.intp
                    )[:, None]
                np_cols = np_cols_cache.get(j)
                if np_cols is None:
                    np_cols = np_cols_cache[j] = _np.asarray(
                        cols, dtype=_np.intp
                    )
                block = scale_np[np_rows, np_cols]
                _np.maximum(block, cat_sim, out=block)
                scale_np[np_rows, np_cols] = block
            else:
                for r in rows:
                    base = r * p_t
                    for c in cols:
                        if cat_sim > scale[base + c]:
                            scale[base + c] = cat_sim

    # 3: one ns per distinct name pair, broadcast over the nonzero
    # scale cells. min(1.0, ns * scale) with the same operand order as
    # the reference loop keeps the values bit-identical.
    values = array("d", bytes(8 * size))
    names_s, names_t = source_vocab.names, target_vocab.names
    v_t = len(names_t)
    profile_pairs = 0
    element_pairs = 0
    distinct_pairs = 0
    batched_pairs = 0

    if scale_np is not None:
        rows_nz, cols_nz = _np.nonzero(scale_np)
        profile_pairs = int(rows_nz.size)
        if profile_pairs:
            vp_s = _np.asarray(source_vocab.profile_names, dtype=_np.intp)
            vp_t = _np.asarray(target_vocab.profile_names, dtype=_np.intp)
            members_s = _np.asarray(
                [len(m) for m in source_vocab.profile_members],
                dtype=_np.int64,
            )
            members_t = _np.asarray(
                [len(m) for m in target_vocab.profile_members],
                dtype=_np.int64,
            )
            element_pairs = int(
                (members_s[rows_nz] * members_t[cols_nz]).sum()
            )
            ns_matrix = _np.zeros((len(names_s), v_t))
            flat_ns = ns_matrix.reshape(-1)
            # Fused (v1, v2) keys deduplicated in C — the distinct
            # name pairs actually needing an ns computation.
            unique_keys = _np.unique(vp_s[rows_nz] * v_t + vp_t[cols_nz])
            distinct_pairs = int(unique_keys.size)
            key_list = unique_keys.tolist()
            if categorizer.config.linguistic_batch_ns:
                ns_values = memo.element_name_similarity_batch(
                    [
                        (names_s[key // v_t], names_t[key % v_t])
                        for key in key_list
                    ],
                    use_numpy=True,
                )
                batched_pairs = len(key_list)
                for key, ns in zip(key_list, ns_values):
                    flat_ns[key] = ns
            else:
                for key in key_list:
                    flat_ns[key] = memo.element_name_similarity(
                        names_s[key // v_t], names_t[key % v_t]
                    )
            values_np = _np.frombuffer(
                values, dtype=_np.float64
            ).reshape(p_s, p_t)
            _np.multiply(
                ns_matrix[vp_s[:, None], vp_t[None, :]],
                scale_np,
                out=values_np,
            )
            _np.minimum(values_np, 1.0, out=values_np)
    else:
        ns_cache: Dict[int, float] = {}
        profile_names_t = target_vocab.profile_names
        members_s = source_vocab.profile_members
        members_t = target_vocab.profile_members
        if categorizer.config.linguistic_batch_ns:
            # Pre-resolve the distinct name pairs the nonzero scale
            # cells will need with one batched memo call (flat-array
            # fallback inside the memo); the fill loop below then
            # always hits this cache. ns is pure per pair, so
            # resolution order cannot change any value.
            ordered: Dict[int, None] = {}
            for r in range(p_s):
                v_base = source_vocab.profile_names[r] * v_t
                base = r * p_t
                for c in range(p_t):
                    if scale[base + c] != 0.0:
                        ordered.setdefault(v_base + profile_names_t[c])
            key_list = list(ordered)
            ns_values = memo.element_name_similarity_batch(
                [
                    (names_s[key // v_t], names_t[key % v_t])
                    for key in key_list
                ],
                use_numpy=False,
            )
            ns_cache = dict(zip(key_list, ns_values))
            batched_pairs = len(key_list)
        for r in range(p_s):
            v1 = source_vocab.profile_names[r]
            v_base = v1 * v_t
            name1 = names_s[v1]
            base = r * p_t
            for c in range(p_t):
                cat_scale = scale[base + c]
                if cat_scale == 0.0:
                    continue
                profile_pairs += 1
                element_pairs += len(members_s[r]) * len(members_t[c])
                key = v_base + profile_names_t[c]
                ns = ns_cache.get(key)
                if ns is None:
                    ns = memo.element_name_similarity(
                        name1, names_t[profile_names_t[c]]
                    )
                    ns_cache[key] = ns
                lsim = ns * cat_scale
                values[base + c] = 1.0 if lsim > 1.0 else lsim
        distinct_pairs = len(ns_cache)

    stats: Dict[str, object] = {
        "vocab_source_elements": source_vocab.n_elements,
        "vocab_target_elements": target_vocab.n_elements,
        "vocab_source_names": source_vocab.n_names,
        "vocab_target_names": target_vocab.n_names,
        "vocab_source_profiles": p_s,
        "vocab_target_profiles": p_t,
        "kernel_category_classes": (
            len(source_vocab.classes) * len(target_vocab.classes)
        ),
        "kernel_compatible_class_pairs": compatible_class_pairs,
        "kernel_profile_pairs": profile_pairs,
        "kernel_element_pairs": element_pairs,
        "kernel_distinct_name_pairs": distinct_pairs,
        # Distinct name pairs resolved through the memo's batched ns
        # entry point (0 when linguistic_batch_ns is off or the
        # backend skipped the kernel's vector paths entirely).
        "kernel_ns_batched_pairs": batched_pairs,
        # Fraction of the reference path's per-element-pair ns lookups
        # the kernel answered from its distinct-name result.
        "kernel_hit_rate": (
            1.0 - distinct_pairs / element_pairs if element_pairs else 0.0
        ),
    }
    return FactoredLsimTable(
        source_vocab, target_vocab, values, kernel_stats=stats
    )
