"""Name-similarity functions (Sections 5.2 and 5.3).

Three layers, bottom-up:

* :func:`token_similarity` — ``sim(t1, t2)``: thesaurus lookup, falling
  back to common prefix/suffix substring matching.
* :func:`token_set_similarity` — ``ns(T1, T2)``: "the average of the
  best similarity of each token with a token in the other set".
* :func:`element_name_similarity` — ``ns(m1, m2)``: "a weighted mean of
  the per-token-type name similarity", weighting content and concept
  tokens more heavily.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.config import CupidConfig
from repro.linguistic.normalizer import NormalizedName
from repro.linguistic.thesaurus import Thesaurus
from repro.linguistic.tokens import Token, TokenType

try:  # optional acceleration, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_FORCE_STDLIB
    _np = None


#: Below this many name pairs, :meth:`NameSimilarityMemo.
#: element_name_similarity_batch` routes through the scalar method —
#: batch setup (index building, bucketing) costs more than it saves.
_BATCH_MIN_PAIRS = 16


def _common_prefix_len(a: str, b: str) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def _common_suffix_len(a: str, b: str) -> int:
    n = min(len(a), len(b))
    for i in range(1, n + 1):
        if a[-i] != b[-i]:
            return i - 1
    return n


def substring_similarity(a: str, b: str, ceiling: float = 0.8) -> float:
    """Prefix/suffix overlap similarity in [0, ceiling].

    "In the absence of such entries, we match sub-strings of the words
    t1 and t2 to identify common prefixes or suffixes" (Section 5.2).
    The overlap fraction is measured against the longer word, so
    ``customername`` vs ``name`` scores on suffix overlap, and a short
    accidental overlap (``count`` vs ``country``: prefix "count")
    is scaled down by the longer word's length. Overlaps shorter than
    3 characters are treated as noise.
    """
    if not a or not b:
        return 0.0
    # An overlap can be at most min(len) and must start at the first
    # or end at the last character; both checks reject the typical
    # unrelated pair before any per-character scan.
    if len(a) < 3 or len(b) < 3:
        return 0.0
    if a[0] != b[0] and a[-1] != b[-1]:
        return 0.0
    overlap = max(_common_prefix_len(a, b), _common_suffix_len(a, b))
    if overlap < 3:
        return 0.0
    # Divide before scaling so a full overlap is exactly `ceiling`.
    return ceiling * (overlap / max(len(a), len(b)))


def token_similarity(
    t1: Token,
    t2: Token,
    thesaurus: Thesaurus,
    config: Optional[CupidConfig] = None,
) -> float:
    """``sim(t1, t2)``: identical → 1; thesaurus entry → its strength;
    otherwise substring similarity."""
    ceiling = config.substring_sim_ceiling if config else 0.8
    floor = config.min_token_sim if config else 0.0
    if t1.text == t2.text:
        return 1.0
    related = thesaurus.relatedness(t1.text, t2.text)
    if related is not None:
        return max(related, floor)
    return max(substring_similarity(t1.text, t2.text, ceiling), floor)


def token_set_similarity(
    tokens1: Sequence[Token],
    tokens2: Sequence[Token],
    thesaurus: Thesaurus,
    config: Optional[CupidConfig] = None,
    memo: Optional["NameSimilarityMemo"] = None,
) -> float:
    """``ns(T1, T2)`` — the paper's bidirectional best-match average:

    ``(Σ_{t1∈T1} max_{t2∈T2} sim(t1,t2) + Σ_{t2∈T2} max_{t1∈T1}
    sim(t1,t2)) / (|T1| + |T2|)``

    Ignored (common-word) tokens are excluded by callers; if either set
    is empty the similarity is 0 (nothing to compare). With ``memo``,
    per-token-pair similarities are read through its cache.
    """
    t1 = [t for t in tokens1 if not t.ignored]
    t2 = [t for t in tokens2 if not t.ignored]
    if not t1 or not t2:
        return 0.0
    if memo is not None:
        sim = memo.token_similarity
    else:
        def sim(a: Token, b: Token) -> float:
            return token_similarity(a, b, thesaurus, config)
    forward = sum(max(sim(a, b) for b in t2) for a in t1)
    backward = sum(max(sim(a, b) for a in t1) for b in t2)
    return (forward + backward) / (len(t1) + len(t2))


def element_name_similarity(
    name1: NormalizedName,
    name2: NormalizedName,
    thesaurus: Thesaurus,
    config: CupidConfig,
    memo: Optional["NameSimilarityMemo"] = None,
) -> float:
    """``ns(m1, m2)`` — weighted mean of per-token-type similarities.

    For each token type ``i`` present in either name, the per-type
    similarity ``ns(T1i, T2i)`` contributes with weight
    ``w_i · (|T1i| + |T2i|)``; the result is normalized by the total
    weight so it stays in [0, 1]:

    ``ns(m1,m2) = Σ_i w_i·ns(T1i,T2i)·(|T1i|+|T2i|) / Σ_i
    w_i·(|T1i|+|T2i|)``

    This matches the printed formula when all five types are populated
    and degrades gracefully when a type is absent from both names.
    Content and concept tokens carry higher ``w_i`` (Section 5.3).
    """
    numerator = 0.0
    denominator = 0.0
    for token_type, weight in config.token_type_weights.items():
        t1 = name1.tokens_of_type(token_type)
        t2 = name2.tokens_of_type(token_type)
        count = len(t1) + len(t2)
        if count == 0 or weight == 0.0:
            continue
        denominator += weight * count
        if t1 and t2:
            per_type = token_set_similarity(t1, t2, thesaurus, config, memo)
            numerator += weight * per_type * count
        # If only one side has tokens of this type, those tokens have no
        # counterpart: they contribute weight (penalty) but 0 similarity.
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


class NameSimilarityMemo:
    """Memoized token and element-name similarities (dense engine).

    Schemas repeat both whole names (Street, City, ...) and tokens
    across elements; the all-pairs linguistic phase of Section 5 pays
    for each duplicate again. This cache keys ``sim(t1, t2)`` on the
    token *texts* and ``ns(m1, m2)`` on the normalized names' raw
    strings, so each distinct comparison is computed exactly once per
    matcher. Both functions are pure given a fixed thesaurus and
    config, so memoization cannot change any value — only skip
    recomputation; the inlined loops below mirror the module functions
    operation for operation (same iteration order, same float
    expressions) to keep results bit-identical to the reference path.
    """

    __slots__ = (
        "thesaurus",
        "config",
        "_token",
        "_set",
        "_element",
        "_buckets",
        "_weight_entries",
        "token_hits",
        "token_misses",
        "set_hits",
        "set_misses",
        "element_hits",
        "element_misses",
    )

    def __init__(self, thesaurus: Thesaurus, config: CupidConfig) -> None:
        self.thesaurus = thesaurus
        self.config = config
        # text1 -> text2 -> sim — nested rather than tuple-keyed so the
        # inner loops probe with one dict get and no tuple allocation.
        self._token: Dict[str, Dict[str, float]] = {}
        # (texts1, texts2) -> ns(T1, T2) for whole (filtered) token
        # sets; what the category-compatibility scan repeats most.
        self._set: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], float] = {}
        self._element: Dict[Tuple[str, str], float] = {}
        # raw name -> per-type non-ignored token lists, slot-aligned
        # with _weight_entries (avoids enum hashing in the pair loop).
        self._buckets: Dict[str, List[Optional[List[Token]]]] = {}
        self._weight_entries: List[Tuple[TokenType, float]] = list(
            config.token_type_weights.items()
        )
        self.token_hits = 0
        self.token_misses = 0
        self.set_hits = 0
        self.set_misses = 0
        self.element_hits = 0
        self.element_misses = 0

    def token_similarity(self, t1: Token, t2: Token) -> float:
        row = self._token.get(t1.text)
        if row is None:
            row = self._token[t1.text] = {}
        value = row.get(t2.text)
        if value is not None:
            self.token_hits += 1
            return value
        self.token_misses += 1
        value = token_similarity(t1, t2, self.thesaurus, self.config)
        row[t2.text] = value
        return value

    def token_set_similarity(
        self, tokens1: Sequence[Token], tokens2: Sequence[Token]
    ) -> float:
        """``ns(T1, T2)`` with per-token-pair caching, inlined.

        ``tokens1``/``tokens2`` may still contain ignored tokens (the
        module function filters them; so does this).
        """
        t1 = [t for t in tokens1 if not t.ignored]
        t2 = [t for t in tokens2 if not t.ignored]
        # Whole-set cache: after filtering, the value depends only on
        # the token texts (token_similarity reads nothing else), so the
        # text tuples are a sound pure-function key. The category scan
        # compares the same keyword sets for every schema pair a
        # session matches — this turns those repeats into one dict get.
        return self.token_set_similarity_prefiltered(
            (
                tuple(t.text for t in t1),
                tuple(t.text for t in t2),
            ),
            t1,
            t2,
        )

    def token_set_similarity_prefiltered(
        self,
        key: Tuple[Tuple[str, ...], Tuple[str, ...]],
        t1: Sequence[Token],
        t2: Sequence[Token],
    ) -> float:
        """``ns(T1, T2)`` for pre-filtered token lists with a prebuilt
        cache key.

        The distinct-name kernel's category-class scan probes the same
        keyword sets thousands of times per match; this entry point
        skips the per-call ignored-token filtering and key-tuple
        construction :meth:`token_set_similarity` performs (``t1`` /
        ``t2`` must already exclude ignored tokens and ``key`` must be
        their text tuples). Same arithmetic, same cache — values are
        bit-identical to the generic path.
        """
        if not t1 or not t2:
            return 0.0
        if len(t1) == 1 and len(t2) == 1:
            return self.token_similarity(t1[0], t2[0])
        value = self._set.get(key)
        if value is not None:
            self.set_hits += 1
            return value
        self.set_misses += 1
        value = self._token_set_filtered(t1, t2)
        self._set[key] = value
        return value

    def _token_set_filtered(
        self, t1: Sequence[Token], t2: Sequence[Token]
    ) -> float:
        """Bidirectional best-match average over non-ignored tokens.

        Same arithmetic as :func:`token_set_similarity` (sum of
        per-token maxima in the same iteration order): the forward scan
        resolves every (a, b) similarity once through the cache and
        keeps the values, so the backward maxima fold over those local
        lists instead of re-probing the cache pair by pair.
        """
        cache = self._token
        forward = 0.0
        pair_rows: List[List[float]] = []
        for a in t1:
            row = cache.get(a.text)
            if row is None:
                row = cache[a.text] = {}
            values: List[float] = []
            best: Optional[float] = None
            for b in t2:
                value = row.get(b.text)
                if value is None:
                    self.token_misses += 1
                    value = token_similarity(
                        a, b, self.thesaurus, self.config
                    )
                    row[b.text] = value
                else:
                    self.token_hits += 1
                values.append(value)
                if best is None or value > best:
                    best = value
            pair_rows.append(values)
            forward += best
        backward = 0.0
        for k in range(len(t2)):
            best = None
            for values in pair_rows:
                value = values[k]
                if best is None or value > best:
                    best = value
            backward += best
        return (forward + backward) / (len(t1) + len(t2))

    def _type_buckets(
        self, name: NormalizedName
    ) -> List[Optional[List[Token]]]:
        """Non-ignored tokens per type, slot-aligned with the weight
        entries (so the pair loop below indexes instead of hashing).
        Computed once per name."""
        buckets = self._buckets.get(name.raw)
        if buckets is None:
            by_type: Dict[TokenType, List[Token]] = {}
            for token in name.tokens:
                if not token.ignored:
                    by_type.setdefault(token.token_type, []).append(token)
            buckets = [
                by_type.get(token_type)
                for token_type, _ in self._weight_entries
            ]
            self._buckets[name.raw] = buckets
        return buckets

    def element_name_similarity(
        self, name1: NormalizedName, name2: NormalizedName
    ) -> float:
        key = (name1.raw, name2.raw)
        value = self._element.get(key)
        if value is not None:
            self.element_hits += 1
            return value
        self.element_misses += 1

        # Same weighted-mean formula as the module-level
        # element_name_similarity (same weight iteration order, same
        # float expressions), reading the cached type buckets.
        buckets1 = self._type_buckets(name1)
        buckets2 = self._type_buckets(name2)
        numerator = 0.0
        denominator = 0.0
        for slot, (_token_type, weight) in enumerate(self._weight_entries):
            t1 = buckets1[slot]
            t2 = buckets2[slot]
            count = (len(t1) if t1 else 0) + (len(t2) if t2 else 0)
            if count == 0 or weight == 0.0:
                continue
            denominator += weight * count
            if t1 and t2:
                per_type = self._token_set_filtered(t1, t2)
                numerator += weight * per_type * count
        value = 0.0 if denominator == 0.0 else numerator / denominator
        self._element[key] = value
        return value

    # ------------------------------------------------------------------
    # Batched ns over a distinct-name cross product
    # ------------------------------------------------------------------

    def element_name_similarity_batch(
        self,
        pairs: Sequence[Tuple[NormalizedName, NormalizedName]],
        use_numpy: bool = True,
    ) -> List[float]:
        """``ns(m1, m2)`` for many name pairs in one call.

        The distinct-name kernel hands over its whole cross product of
        uncovered name pairs at once. All the batch's setup is
        per-*name* and per-*token*, never per-pair:

        1. the distinct names on each side get compact ids and one
           token-id list per weight slot (token texts are interned into
           a per-side index as they are first seen);
        2. every distinct token text pair is resolved exactly once into
           a flat ``array('d')`` similarity matrix, through the token
           cache (hits and misses counted per matrix cell);
        3. under numpy the per-slot ``ns`` values are computed for the
           whole distinct-name cross product at once — token-id gathers
           grouped by token-count shape, vectorized row/col maxes, and
           the weighted means assembled as elementwise matrix
           arithmetic in the scalar code's slot order. The stdlib
           fallback loops pair by pair but reads the flat matrix by
           pre-scaled integer index instead of re-probing string-keyed
           caches.

        Every float expression replicates
        :meth:`element_name_similarity` in the scalar accumulation
        order (maxima summed left to right with elementwise adds; the
        slot loop adds exact zeros where the scalar code skips), so
        results are **bit-identical** to the scalar path — the parity
        tests assert exact equality. Results land in the element cache
        exactly as scalar calls would. Batches below
        :data:`_BATCH_MIN_PAIRS` fall back to the scalar method
        (per-pair overhead beats batch setup there).
        """
        if len(pairs) < _BATCH_MIN_PAIRS:
            return [
                self.element_name_similarity(n1, n2) for n1, n2 in pairs
            ]
        results: List[float] = [0.0] * len(pairs)
        todo: List[Tuple[int, Tuple[str, str], NormalizedName,
                         NormalizedName]] = []
        for idx, (n1, n2) in enumerate(pairs):
            key = (n1.raw, n2.raw)
            value = self._element.get(key)
            if value is not None:
                self.element_hits += 1
                results[idx] = value
            else:
                todo.append((idx, key, n1, n2))
        if not todo:
            return results
        self.element_misses += len(todo)
        # Compact per-side name ids (cross products repeat each name
        # many times; everything expensive hangs off the distinct set).
        names1: Dict[str, int] = {}
        names2: Dict[str, int] = {}
        reps_n1: List[NormalizedName] = []
        reps_n2: List[NormalizedName] = []
        for _idx, _key, n1, n2 in todo:
            if n1.raw not in names1:
                names1[n1.raw] = len(reps_n1)
                reps_n1.append(n1)
            if n2.raw not in names2:
                names2[n2.raw] = len(reps_n2)
                reps_n2.append(n2)
        index1: Dict[str, int] = {}
        index2: Dict[str, int] = {}
        reps1: List[Token] = []
        reps2: List[Token] = []
        slots1 = [self._slot_ids(n, index1, reps1) for n in reps_n1]
        slots2 = [self._slot_ids(n, index2, reps2) for n in reps_n2]
        sims, width = self._token_matrix(reps1, reps2)
        element = self._element
        if use_numpy and _np is not None:
            table = self._cross_ns_np(slots1, slots2, sims, width)
            for idx, key, n1, n2 in todo:
                value = table[names1[n1.raw]][names2[n2.raw]]
                element[key] = value
                results[idx] = value
            return results
        # stdlib fallback: per-pair slot loop in the scalar iteration
        # order, reading the flat matrix by pre-scaled integer index.
        bases1 = [
            [
                None if ids is None else [i * width for i in ids]
                for ids in per_slot
            ]
            for per_slot in slots1
        ]
        weight_entries = self._weight_entries
        for idx, key, n1, n2 in todo:
            per_slot1 = bases1[names1[n1.raw]]
            per_slot2 = slots2[names2[n2.raw]]
            numerator = 0.0
            denominator = 0.0
            for slot, (_token_type, weight) in enumerate(weight_entries):
                row_bases = per_slot1[slot]
                cols = per_slot2[slot]
                count = (
                    (len(row_bases) if row_bases else 0)
                    + (len(cols) if cols else 0)
                )
                if count == 0 or weight == 0.0:
                    continue
                denominator += weight * count
                if row_bases and cols:
                    forward = 0.0
                    col_max: List[float] = []
                    first = True
                    for base in row_bases:
                        best: Optional[float] = None
                        for k, col in enumerate(cols):
                            value = sims[base + col]
                            if first:
                                col_max.append(value)
                            elif value > col_max[k]:
                                col_max[k] = value
                            if best is None or value > best:
                                best = value
                        first = False
                        forward += best
                    backward = 0.0
                    for value in col_max:
                        backward += value
                    per_type = (forward + backward) / count
                    numerator += weight * per_type * count
            value = 0.0 if denominator == 0.0 else numerator / denominator
            element[key] = value
            results[idx] = value
        return results

    def _slot_ids(
        self,
        name: NormalizedName,
        index: Dict[str, int],
        reps: List[Token],
    ) -> List[Optional[List[int]]]:
        """The name's per-slot token-id lists under ``index`` (interning
        unseen texts, with ``reps`` keeping one representative token per
        text for similarity computation). Slot-aligned with
        :attr:`_weight_entries`; ``None`` marks an empty bucket."""
        out: List[Optional[List[int]]] = []
        for bucket in self._type_buckets(name):
            if not bucket:
                out.append(None)
                continue
            ids = []
            for token in bucket:
                tid = index.get(token.text)
                if tid is None:
                    tid = index[token.text] = len(reps)
                    reps.append(token)
                ids.append(tid)
            out.append(ids)
        return out

    def _token_matrix(
        self, reps1: List[Token], reps2: List[Token]
    ) -> Tuple[array, int]:
        """Flat row-major similarity matrix over the distinct token
        cross product, resolved through the token cache (each cell
        counted once as a hit or miss)."""
        width = len(reps2)
        sims = array("d", bytes(8 * len(reps1) * width))
        cache = self._token
        for i, a in enumerate(reps1):
            row = cache.get(a.text)
            if row is None:
                row = cache[a.text] = {}
            base = i * width
            for j, b in enumerate(reps2):
                value = row.get(b.text)
                if value is None:
                    self.token_misses += 1
                    value = token_similarity(
                        a, b, self.thesaurus, self.config
                    )
                    row[b.text] = value
                else:
                    self.token_hits += 1
                sims[base + j] = value
        return sims, width

    #: Gather-block budget for :meth:`_cross_ns_np` — chunk the
    #: ``(k1, k2, r, c)`` blocks so no temporary exceeds ~32 MB.
    _CROSS_BLOCK_CELLS = 1 << 22

    def _cross_ns_np(
        self,
        slots1: List[List[Optional[List[int]]]],
        slots2: List[List[Optional[List[int]]]],
        sims: array,
        width: int,
    ) -> List[List[float]]:
        """The full ``ns`` table over the distinct-name cross product.

        Per weight slot, names are grouped by token count so each group
        pair gathers a rectangular ``(k1, k2, r, c)`` block from the
        token matrix; row/col maxima are summed left to right with
        elementwise adds, and the weighted-mean accumulation adds exact
        zeros where the scalar slot loop skips — every rounding step
        matches :meth:`element_name_similarity`.
        """
        v1 = len(slots1)
        v2 = len(slots2)
        numerator = _np.zeros((v1, v2))
        denominator = _np.zeros((v1, v2))
        sims_np = None
        if len(sims):
            sims_np = _np.frombuffer(sims, dtype=_np.float64)
            sims_np = sims_np.reshape(-1, width)
        cnt1 = _np.empty(v1)
        cnt2 = _np.empty(v2)
        for slot, (_token_type, weight) in enumerate(self._weight_entries):
            if weight == 0.0:
                continue
            by_r: Dict[int, List[int]] = {}
            for nid, per_slot in enumerate(slots1):
                ids = per_slot[slot]
                cnt1[nid] = len(ids) if ids else 0
                if ids:
                    by_r.setdefault(len(ids), []).append(nid)
            by_c: Dict[int, List[int]] = {}
            for nid, per_slot in enumerate(slots2):
                ids = per_slot[slot]
                cnt2[nid] = len(ids) if ids else 0
                if ids:
                    by_c.setdefault(len(ids), []).append(nid)
            count = cnt1[:, None] + cnt2[None, :]
            if not count.any():
                continue
            ns = _np.zeros((v1, v2))
            for r, nids1 in by_r.items():
                a1 = _np.asarray(
                    [slots1[n][slot] for n in nids1], dtype=_np.intp
                )
                rows = _np.asarray(nids1, dtype=_np.intp)[:, None]
                for c, nids2 in by_c.items():
                    a2 = _np.asarray(
                        [slots2[n][slot] for n in nids2], dtype=_np.intp
                    )
                    cols = _np.asarray(nids2, dtype=_np.intp)[None, :]
                    step = max(
                        1,
                        self._CROSS_BLOCK_CELLS // max(1, len(nids2) * r * c),
                    )
                    for lo in range(0, len(nids1), step):
                        hi = lo + step
                        block = sims_np[
                            a1[lo:hi, None, :, None], a2[None, :, None, :]
                        ]
                        row_max = block.max(axis=3)
                        col_max = block.max(axis=2)
                        forward = row_max[..., 0].copy()
                        for k in range(1, r):
                            forward += row_max[..., k]
                        backward = col_max[..., 0].copy()
                        for k in range(1, c):
                            backward += col_max[..., k]
                        ns[rows[lo:hi], cols] = (
                            (forward + backward) / (r + c)
                        )
            # Elementwise replication of the scalar slot loop: slots the
            # scalar code skips contribute exact 0.0 terms here (count
            # is 0 there, and ns is 0 wherever a side has no tokens).
            denominator += weight * count
            numerator += weight * ns * count
        table = _np.zeros((v1, v2))
        _np.divide(
            numerator, denominator, out=table, where=denominator > 0.0
        )
        return table.tolist()

    # ------------------------------------------------------------------
    # Persistence (the repository's cross-process memo tier)
    # ------------------------------------------------------------------

    def export_cache(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """The memo's persistable tiers as a JSON-compatible dict.

        Exports the token-pair and element-name caches — the two tiers
        whose entries are expensive (thesaurus probes, substring scans,
        weighted means) and whose keys are plain strings. Both are pure
        in (thesaurus, config), so a
        :class:`~repro.repository.SchemaRepository` persists them keyed
        by those fingerprints and preloads a fresh session's memo: the
        cold-token cost of the category-class compatibility scan is
        paid once per deployment, not once per process. Values
        round-trip bit-exactly through JSON (repr-based floats).
        """
        return {
            "token": {a: dict(row) for a, row in self._token.items()},
            "element": self._nest(self._element),
        }

    def preload_cache(
        self, data: Dict[str, Dict[str, Dict[str, float]]]
    ) -> int:
        """Merge an :meth:`export_cache` dump into the live caches.

        Existing entries win (they were computed under this process's
        thesaurus/config, the dump merely claims to match). Returns the
        number of entries added. Callers are responsible for checking
        that the dump's thesaurus/config fingerprints match — a
        mismatched dump would poison bit-parity.
        """
        added = 0
        for a, row in data.get("token", {}).items():
            live = self._token.get(a)
            if live is None:
                live = self._token[a] = {}
            for b, value in row.items():
                if b not in live:
                    live[b] = value
                    added += 1
        for raw1, row in data.get("element", {}).items():
            for raw2, value in row.items():
                key = (raw1, raw2)
                if key not in self._element:
                    self._element[key] = value
                    added += 1
        return added

    @staticmethod
    def _nest(
        flat: Dict[Tuple[str, str], float]
    ) -> Dict[str, Dict[str, float]]:
        nested: Dict[str, Dict[str, float]] = {}
        for (a, b), value in flat.items():
            nested.setdefault(a, {})[b] = value
        return nested

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters for ``--stats`` regression triage."""
        token_total = self.token_hits + self.token_misses
        element_total = self.element_hits + self.element_misses
        set_total = self.set_hits + self.set_misses
        return {
            "token_sim_hits": self.token_hits,
            "token_sim_misses": self.token_misses,
            "token_sim_hit_rate": (
                self.token_hits / token_total if token_total else 0.0
            ),
            "token_set_sim_hits": self.set_hits,
            "token_set_sim_misses": self.set_misses,
            "token_set_sim_hit_rate": (
                self.set_hits / set_total if set_total else 0.0
            ),
            "element_sim_hits": self.element_hits,
            "element_sim_misses": self.element_misses,
            "element_sim_hit_rate": (
                self.element_hits / element_total if element_total else 0.0
            ),
        }
