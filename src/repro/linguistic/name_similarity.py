"""Name-similarity functions (Sections 5.2 and 5.3).

Three layers, bottom-up:

* :func:`token_similarity` — ``sim(t1, t2)``: thesaurus lookup, falling
  back to common prefix/suffix substring matching.
* :func:`token_set_similarity` — ``ns(T1, T2)``: "the average of the
  best similarity of each token with a token in the other set".
* :func:`element_name_similarity` — ``ns(m1, m2)``: "a weighted mean of
  the per-token-type name similarity", weighting content and concept
  tokens more heavily.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.config import CupidConfig
from repro.linguistic.normalizer import NormalizedName
from repro.linguistic.thesaurus import Thesaurus
from repro.linguistic.tokens import Token, TokenType


def _common_prefix_len(a: str, b: str) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def _common_suffix_len(a: str, b: str) -> int:
    n = min(len(a), len(b))
    for i in range(1, n + 1):
        if a[-i] != b[-i]:
            return i - 1
    return n


def substring_similarity(a: str, b: str, ceiling: float = 0.8) -> float:
    """Prefix/suffix overlap similarity in [0, ceiling].

    "In the absence of such entries, we match sub-strings of the words
    t1 and t2 to identify common prefixes or suffixes" (Section 5.2).
    The overlap fraction is measured against the longer word, so
    ``customername`` vs ``name`` scores on suffix overlap, and a short
    accidental overlap (``count`` vs ``country``: prefix "count")
    is scaled down by the longer word's length. Overlaps shorter than
    3 characters are treated as noise.
    """
    if not a or not b:
        return 0.0
    overlap = max(_common_prefix_len(a, b), _common_suffix_len(a, b))
    if overlap < 3:
        return 0.0
    # Divide before scaling so a full overlap is exactly `ceiling`.
    return ceiling * (overlap / max(len(a), len(b)))


def token_similarity(
    t1: Token,
    t2: Token,
    thesaurus: Thesaurus,
    config: Optional[CupidConfig] = None,
) -> float:
    """``sim(t1, t2)``: identical → 1; thesaurus entry → its strength;
    otherwise substring similarity."""
    ceiling = config.substring_sim_ceiling if config else 0.8
    floor = config.min_token_sim if config else 0.0
    if t1.text == t2.text:
        return 1.0
    related = thesaurus.relatedness(t1.text, t2.text)
    if related is not None:
        return max(related, floor)
    return max(substring_similarity(t1.text, t2.text, ceiling), floor)


def token_set_similarity(
    tokens1: Sequence[Token],
    tokens2: Sequence[Token],
    thesaurus: Thesaurus,
    config: Optional[CupidConfig] = None,
) -> float:
    """``ns(T1, T2)`` — the paper's bidirectional best-match average:

    ``(Σ_{t1∈T1} max_{t2∈T2} sim(t1,t2) + Σ_{t2∈T2} max_{t1∈T1}
    sim(t1,t2)) / (|T1| + |T2|)``

    Ignored (common-word) tokens are excluded by callers; if either set
    is empty the similarity is 0 (nothing to compare).
    """
    t1 = [t for t in tokens1 if not t.ignored]
    t2 = [t for t in tokens2 if not t.ignored]
    if not t1 or not t2:
        return 0.0
    forward = sum(
        max(token_similarity(a, b, thesaurus, config) for b in t2) for a in t1
    )
    backward = sum(
        max(token_similarity(a, b, thesaurus, config) for a in t1) for b in t2
    )
    return (forward + backward) / (len(t1) + len(t2))


def element_name_similarity(
    name1: NormalizedName,
    name2: NormalizedName,
    thesaurus: Thesaurus,
    config: CupidConfig,
) -> float:
    """``ns(m1, m2)`` — weighted mean of per-token-type similarities.

    For each token type ``i`` present in either name, the per-type
    similarity ``ns(T1i, T2i)`` contributes with weight
    ``w_i · (|T1i| + |T2i|)``; the result is normalized by the total
    weight so it stays in [0, 1]:

    ``ns(m1,m2) = Σ_i w_i·ns(T1i,T2i)·(|T1i|+|T2i|) / Σ_i
    w_i·(|T1i|+|T2i|)``

    This matches the printed formula when all five types are populated
    and degrades gracefully when a type is absent from both names.
    Content and concept tokens carry higher ``w_i`` (Section 5.3).
    """
    numerator = 0.0
    denominator = 0.0
    for token_type, weight in config.token_type_weights.items():
        t1 = name1.tokens_of_type(token_type)
        t2 = name2.tokens_of_type(token_type)
        count = len(t1) + len(t2)
        if count == 0 or weight == 0.0:
            continue
        denominator += weight * count
        if t1 and t2:
            per_type = token_set_similarity(t1, t2, thesaurus, config)
            numerator += weight * per_type * count
        # If only one side has tokens of this type, those tokens have no
        # counterpart: they contribute weight (penalty) but 0 similarity.
    if denominator == 0.0:
        return 0.0
    return numerator / denominator
