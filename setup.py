"""Setuptools shim.

Kept alongside pyproject.toml so legacy editable installs
(``pip install -e .`` on environments without the ``wheel`` package,
where PEP 660 editable builds fail with ``invalid command
'bdist_wheel'``) fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
