"""Tests for TreeMatch (Figure 3) and the similarity store."""

import pytest

from repro.config import CupidConfig
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.matcher import LinguisticMatcher, LsimTable
from repro.model.builder import SchemaBuilder, schema_from_tree
from repro.model.datatypes import default_compatibility_table
from repro.structure.similarity import SimilarityStore
from repro.structure.treematch import TreeMatch
from repro.tree.construction import construct_schema_tree


def _match(source, target, config=None, thesaurus=None):
    thesaurus = thesaurus or builtin_thesaurus()
    config = config or CupidConfig()
    lsim = LinguisticMatcher(thesaurus, config).compute(source, target)
    source_tree = construct_schema_tree(source)
    target_tree = construct_schema_tree(target)
    treematch = TreeMatch(config)
    result = treematch.run(source_tree, target_tree, lsim)
    return result, treematch


class TestSimilarityStore:
    def test_default_ssim_is_type_compatibility(self):
        """Leaf ssim initializes to data-type compatibility in [0, 0.5]."""
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        other = schema_from_tree("T", {"B": {"y": "int"}})
        tree1 = construct_schema_tree(schema)
        tree2 = construct_schema_tree(other)
        store = SimilarityStore(
            LsimTable(), CupidConfig(), default_compatibility_table()
        )
        x = tree1.node_for_path("A", "x")
        y = tree2.node_for_path("B", "y")
        assert store.ssim(x, y) == 0.5  # identical integer types

    def test_scale_clamps_to_one(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        other = schema_from_tree("T", {"B": {"y": "int"}})
        tree1, tree2 = construct_schema_tree(schema), construct_schema_tree(other)
        store = SimilarityStore(
            LsimTable(), CupidConfig(), default_compatibility_table()
        )
        x = tree1.node_for_path("A", "x")
        y = tree2.node_for_path("B", "y")
        for _ in range(10):
            store.scale_ssim(x, y, 1.2)
        assert store.ssim(x, y) == 1.0

    def test_wsim_uses_leaf_weight_for_leaf_pairs(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        other = schema_from_tree("T", {"B": {"y": "int"}})
        tree1, tree2 = construct_schema_tree(schema), construct_schema_tree(other)
        config = CupidConfig(wstruct=0.6, wstruct_leaf=0.5)
        store = SimilarityStore(
            LsimTable(), config, default_compatibility_table()
        )
        x = tree1.node_for_path("A", "x")
        y = tree2.node_for_path("B", "y")
        # lsim = 0, ssim = 0.5 -> leaf wsim = 0.5 * 0.5.
        assert store.wsim(x, y) == pytest.approx(0.25)
        # Non-leaf pair (roots) uses wstruct = 0.6.
        assert store.wsim(tree1.root, tree2.root) == pytest.approx(
            0.6 * store.ssim(tree1.root, tree2.root)
        )


class TestTreeMatchBasics:
    def test_identical_schemas_leaf_similarity_saturates(self):
        spec = {"Rec": {"x": "integer", "y": "string"}}
        result, _ = _match(schema_from_tree("S", spec), schema_from_tree("S2", spec))
        x_s = result.source_tree.node_for_path("Rec", "x")
        x_t = result.target_tree.node_for_path("Rec", "x")
        assert result.sims.wsim(x_s, x_t) > 0.9

    def test_all_wsim_values_bounded(self, po_schema, purchase_order_schema):
        result, _ = _match(po_schema, purchase_order_schema)
        for value in result.wsim.values():
            assert 0.0 <= value <= 1.0

    def test_compared_and_pruned_counts(self, po_schema, purchase_order_schema):
        result, _ = _match(po_schema, purchase_order_schema)
        assert result.compared_pairs > 0
        assert result.pruned_pairs > 0
        total_pairs = len(result.source_tree.postorder()) * len(
            result.target_tree.postorder()
        )
        assert result.compared_pairs + result.pruned_pairs == total_pairs

    def test_roots_always_compared(self):
        """Leaf-count pruning must never skip the root pair."""
        big = schema_from_tree(
            "Big", {"A": {f"x{i}": "int" for i in range(20)}}
        )
        small = schema_from_tree("Small", {"B": {"y": "int"}})
        result, _ = _match(big, small)
        assert (
            result.source_tree.root.node_id,
            result.target_tree.root.node_id,
        ) in result.wsim

    def test_pruning_skips_disproportionate_pairs(self):
        big = schema_from_tree(
            "Big", {"A": {f"x{i}": "int" for i in range(10)}}
        )
        small = schema_from_tree("Small", {"B": {"y": "int"}})
        result, _ = _match(big, small)
        a = result.source_tree.node_for_path("A")      # 10 leaves
        b = result.target_tree.node_for_path("B")      # 1 leaf
        assert (a.node_id, b.node_id) not in result.wsim

    def test_pruning_disabled(self):
        big = schema_from_tree(
            "Big", {"A": {f"x{i}": "int" for i in range(10)}}
        )
        small = schema_from_tree("Small", {"B": {"y": "int"}})
        result, _ = _match(
            big, small, config=CupidConfig(prune_by_leaf_count=False)
        )
        a = result.source_tree.node_for_path("A")
        b = result.target_tree.node_for_path("B")
        assert (a.node_id, b.node_id) in result.wsim


class TestStructuralSimilarity:
    def test_strong_link_fraction(self):
        """Inner-node ssim = fraction of leaves with strong links."""
        source = schema_from_tree(
            "S", {"A": {"Street": "string", "City": "string",
                        "Blob": "binary"}}
        )
        target = schema_from_tree(
            "T", {"B": {"Street": "string", "City": "string",
                        "Quantity": "integer"}}
        )
        result, _ = _match(source, target)
        a = result.source_tree.node_for_path("A")
        b = result.target_tree.node_for_path("B")
        # Street and City link both ways; Blob and Quantity do not.
        # fraction = (2 + 2) / (3 + 3)
        assert result.sims.ssim(a, b) == pytest.approx(4 / 6, abs=0.2)

    def test_context_reinforcement(self, po_schema, purchase_order_schema):
        """Figure 2 narrative: POBillTo's City binds to InvoiceTo's City
        more tightly than to DeliverTo's."""
        result, _ = _match(po_schema, purchase_order_schema)
        bill_city = result.source_tree.node_for_path("POBillTo", "City")
        invoice_city = result.target_tree.node_for_path(
            "InvoiceTo", "Address", "City"
        )
        deliver_city = result.target_tree.node_for_path(
            "DeliverTo", "Address", "City"
        )
        assert result.sims.wsim(bill_city, invoice_city) > (
            result.sims.wsim(bill_city, deliver_city)
        )

    def test_lsim_unchanged_by_treematch(self, po_schema,
                                         purchase_order_schema):
        """'The linguistic similarity, however, remains unchanged.'"""
        thesaurus = builtin_thesaurus()
        config = CupidConfig()
        lsim = LinguisticMatcher(thesaurus, config).compute(
            po_schema, purchase_order_schema
        )
        before = dict(lsim.items())
        source_tree = construct_schema_tree(po_schema)
        target_tree = construct_schema_tree(purchase_order_schema)
        TreeMatch(config).run(source_tree, target_tree, lsim)
        assert dict(lsim.items()) == before

    def test_optional_leaves_discounted(self):
        """Unmappable optional leaves must not penalize ssim (§8.4)."""
        source_spec = {"A": {"x": "integer", "y": "string"}}
        builder_target = SchemaBuilder("T")
        b = builder_target.add_child(builder_target.root, "B")
        builder_target.add_leaf(b, "x", "integer")
        builder_target.add_leaf(b, "y", "string")
        builder_target.add_leaf(b, "extra", "binary", optional=True)
        target = builder_target.schema

        source = schema_from_tree("S", source_spec)
        with_discount, _ = _match(source, target)
        without_discount, _ = _match(
            source, target,
            config=CupidConfig(discount_optional_leaves=False),
        )
        a_w = with_discount.source_tree.node_for_path("A")
        b_w = with_discount.target_tree.node_for_path("B")
        a_wo = without_discount.source_tree.node_for_path("A")
        b_wo = without_discount.target_tree.node_for_path("B")
        assert with_discount.sims.ssim(a_w, b_w) > (
            without_discount.sims.ssim(a_wo, b_wo)
        )

    def test_depth_limited_leaves(self):
        """leaf_prune_depth cuts the frontier at depth k (§8.4)."""
        deep = {"A": {"B": {"C": {"x": "int", "y": "int"}}}}
        source = schema_from_tree("S", deep)
        target = schema_from_tree("T", deep)
        result, _ = _match(
            source, target, config=CupidConfig(leaf_prune_depth=1)
        )
        # Still computes similarities without error and the roots match.
        root_pair = (
            result.source_tree.root.node_id,
            result.target_tree.root.node_id,
        )
        assert root_pair in result.wsim


class TestSecondPass:
    def test_recompute_refreshes_inner_nodes(self, po_schema,
                                             purchase_order_schema):
        """Section 7: leaf updates stale the inner-node values."""
        result, treematch = _match(po_schema, purchase_order_schema)
        first_pass = dict(result.wsim)
        treematch.recompute_wsim(result)
        changed = sum(
            1 for key in first_pass
            if key in result.wsim
            and abs(result.wsim[key] - first_pass[key]) > 1e-9
        )
        assert changed > 0

    def test_recompute_keeps_leaf_values(self, po_schema,
                                         purchase_order_schema):
        result, treematch = _match(po_schema, purchase_order_schema)
        sims = result.sims
        leaf_s = result.source_tree.node_for_path("POLines", "Item", "Qty")
        leaf_t = result.target_tree.node_for_path("Items", "Item", "Quantity")
        before = sims.ssim(leaf_s, leaf_t)
        treematch.recompute_wsim(result)
        assert sims.ssim(leaf_s, leaf_t) == before
