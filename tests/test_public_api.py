"""The ``repro`` package's public surface stays honest.

``__all__`` must list exactly names that exist and resolve, the
pipeline/session symbols must be re-exported at the top level, and the
re-exports must be the same objects as their defining modules'.
"""

from __future__ import annotations

import pytest

import repro
import repro.pipeline as pipeline_pkg


class TestAllList:
    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, (
                f"repro.__all__ lists {name!r} but it does not resolve"
            )

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_sorted_for_readability(self):
        assert repro.__all__ == sorted(repro.__all__)

    def test_all_covers_public_module_attributes(self):
        """Every public (non-underscore) class/function re-exported into
        the package namespace from repro's own modules is listed."""
        import inspect

        exported = set(repro.__all__)
        missing = []
        for name, value in vars(repro).items():
            if name.startswith("_") or inspect.ismodule(value):
                continue
            module = getattr(value, "__module__", "")
            if not str(module).startswith("repro"):
                continue
            if name not in exported:
                missing.append(name)
        assert not missing, (
            f"public names bound in repro but absent from __all__: "
            f"{sorted(missing)}"
        )


class TestPipelineReExports:
    @pytest.mark.parametrize(
        "name",
        [
            "MatchPipeline",
            "MatchSession",
            "MatchStage",
            "MatchContext",
            "Matcher",
            "PreparedSchema",
            "baseline_pipeline",
        ],
    )
    def test_pipeline_symbol_re_exported(self, name):
        assert name in repro.__all__
        assert getattr(repro, name) is getattr(pipeline_pkg, name)

    def test_cupid_result_is_the_pipeline_result(self):
        # The shim's CupidResult and the pipeline's are one type.
        assert repro.CupidResult is pipeline_pkg.CupidResult

    def test_pipeline_package_all_resolves(self):
        for name in pipeline_pkg.__all__:
            assert getattr(pipeline_pkg, name, None) is not None
