"""Tests for the top-down baseline and key-affinity initialization."""

import pytest

from repro import CupidConfig, CupidMatcher, schema_from_tree
from repro.baselines.topdown import TopDownMatcher
from repro.config import CupidConfig as _Config
from repro.datasets.canonical import canonical_examples
from repro.exceptions import ConfigError
from repro.linguistic.matcher import LsimTable
from repro.model.builder import SchemaBuilder
from repro.model.datatypes import default_compatibility_table
from repro.structure.similarity import SimilarityStore
from repro.tree.construction import construct_schema_tree


class TestTopDownMatcher:
    def test_matches_aligned_top_levels(self):
        spec = {"Order": {"Qty": "integer", "Price": "money"}}
        matcher = TopDownMatcher()
        mapping = matcher.match(
            schema_from_tree("S", spec), schema_from_tree("T", spec)
        )
        assert ("S.Order.Qty", "T.Order.Qty") in mapping.path_pairs()

    def test_top_level_mismatch_loses_descendants(self):
        """Section 6: 'a top-down approach is optimistic and will
        perform poorly if the two schemas differ considerably at the
        top level' — renamed top levels cut off identical leaves."""
        source = schema_from_tree(
            "S", {"Alpha": {"Qty": "integer", "Price": "money"}}
        )
        target = schema_from_tree(
            "T", {"Zulu": {"Qty": "integer", "Price": "money"}}
        )
        top_down = TopDownMatcher().match(source, target)
        assert ("S.Alpha.Qty", "T.Zulu.Qty") not in top_down.path_pairs()

        # Bottom-up Cupid recovers the leaves despite the top mismatch.
        cupid = CupidMatcher().match(source, target)
        assert ("S.Alpha.Qty", "T.Zulu.Qty") in cupid.leaf_mapping.path_pairs()

    def test_nesting_difference_hurts_topdown(self):
        """Canonical example 5, top-down: the extra Name/Address levels
        gate off the flat schema's leaves."""
        example5 = canonical_examples()[4]
        top_down = TopDownMatcher().match(
            example5.schema1, example5.schema2
        )
        found = example5.gold.found_pairs(top_down)
        cupid = CupidMatcher().match(example5.schema1, example5.schema2)
        cupid_found = example5.gold.found_pairs(cupid.leaf_mapping)
        assert len(found) < len(example5.gold)
        assert len(cupid_found) == len(example5.gold)

    def test_scores_bounded(self, po_schema, purchase_order_schema):
        mapping = TopDownMatcher().match(po_schema, purchase_order_schema)
        for element in mapping:
            assert 0.0 <= element.similarity <= 1.0


class TestKeyAffinity:
    def _store(self, config):
        return SimilarityStore(
            LsimTable(), config, default_compatibility_table()
        )

    def _nodes(self, source_key: bool, target_key: bool):
        source = SchemaBuilder("S")
        table_s = source.add_child(source.root, "T1")
        source.add_leaf(table_s, "a", "integer", is_key=source_key)
        target = SchemaBuilder("T")
        table_t = target.add_child(target.root, "T2")
        target.add_leaf(table_t, "b", "integer", is_key=target_key)
        s_tree = construct_schema_tree(source.schema)
        t_tree = construct_schema_tree(target.schema)
        return s_tree.node_for_path("T1", "a"), t_tree.node_for_path("T2", "b")

    def test_both_keys_boosted(self):
        config = _Config(use_key_affinity=True)
        store = self._store(config)
        s, t = self._nodes(True, True)
        assert store.ssim(s, t) == pytest.approx(0.5)  # 0.5 cap holds

    def test_key_mismatch_penalized(self):
        config = _Config(use_key_affinity=True)
        store = self._store(config)
        s, t = self._nodes(True, False)
        assert store.ssim(s, t) == pytest.approx(0.45)

    def test_disabled(self):
        config = _Config(use_key_affinity=False)
        store = self._store(config)
        s, t = self._nodes(True, False)
        assert store.ssim(s, t) == pytest.approx(0.5)

    def test_cap_preserved(self):
        """Key bonus never pushes the initialization past 0.5."""
        config = _Config(use_key_affinity=True, key_affinity_bonus=0.25)
        store = self._store(config)
        s, t = self._nodes(True, True)
        assert store.ssim(s, t) <= 0.5

    def test_invalid_bonus_rejected(self):
        with pytest.raises(ConfigError):
            _Config(key_affinity_bonus=0.5).validate()

    def test_key_affinity_helps_id_matching(self):
        """Two tables whose only distinguishing signal is key-ness."""
        source = SchemaBuilder("S")
        t1 = source.add_child(source.root, "Orders")
        source.add_leaf(t1, "Code", "integer", is_key=True)
        source.add_leaf(t1, "Slot", "integer")
        target = SchemaBuilder("T")
        t2 = target.add_child(target.root, "Orders")
        target.add_leaf(t2, "Key", "integer", is_key=True)
        target.add_leaf(t2, "Rank", "integer")
        result = CupidMatcher(
            config=CupidConfig(use_key_affinity=True)
        ).match(source.schema, target.schema)
        sims = result.treematch_result.sims
        code = result.source_tree.node_for_path("Orders", "Code")
        key = result.target_tree.node_for_path("Orders", "Key")
        rank = result.target_tree.node_for_path("Orders", "Rank")
        assert sims.wsim(code, key) > sims.wsim(code, rank)
