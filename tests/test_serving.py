"""Serving subsystem: session pool, deadlines, daemon, concurrency.

Three layers under test. The :class:`MatchService` contract is that
concurrency is invisible in the *results*: N threads hammering
search/match get bit-identical answers to a serial run, and a search
racing an ingest sees a consistent prefix of the corpus — never a torn
index. The segment persistence contract is the acceptance criterion of
this subsystem: a repository reopened from its index segments answers
searches bit-identically to one whose index was rebuilt from artifact
files. The HTTP layer is checked end to end over a real socket,
including the error-taxonomy → status-code mapping.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro import SchemaRepository
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.exceptions import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.io.json_io import schema_to_dict
from repro.pipeline.session import MatchSession
from repro.repository.segments import SEGMENTS_DIR
from repro.serving import (
    Deadline,
    LatencyHistogram,
    MatchHTTPServer,
    MatchService,
)


def _corpus(n=6, size=12, seed=5):
    generator = SchemaGenerator(seed=seed)
    return [
        generator.generate(
            name=f"serve{i}", n_leaves=size, name_repetition=0.5
        )
        for i in range(n)
    ]


def _query_for(schema, seed=71):
    perturbed, _ = SchemaGenerator(seed=seed).perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return perturbed


def _mapping_signature(result):
    return sorted(
        (e.source_path, e.target_path, e.similarity)
        for e in result.leaf_mapping
    )


def _search_signature(search):
    return [
        (m.schema_id, m.score, _mapping_signature(m.result))
        for m in search
    ]


@pytest.fixture()
def repo(tmp_path):
    repository = SchemaRepository(str(tmp_path / "repo"))
    for schema in _corpus(5):
        repository.ingest(schema)
    repository.save()
    return repository


class TestMatchService:
    def test_concurrent_searches_match_serial(self, repo):
        """The pool must be invisible in the results: 8 threads of
        searches return exactly what a direct serial search returns."""
        query = _query_for(_corpus(5)[2])
        serial = _search_signature(repo.search(query, k=3, candidates=4))
        with MatchService(repo, sessions=3, queue_depth=32) as service:
            results = [None] * 8
            errors = []

            def worker(i):
                try:
                    results[i] = _search_signature(
                        service.search(query, k=3, candidates=4)
                    )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert all(result == serial for result in results)
            stats = service.stats()
            assert stats["endpoints"]["search"]["count"] == 8
            assert stats["endpoints"]["search"]["p99_ms"] > 0

    def test_async_twins_return_same_results(self, repo):
        import asyncio

        query = _query_for(_corpus(5)[3])
        with MatchService(repo, sessions=2) as service:
            sync = _search_signature(
                service.search(query, k=2, candidates=3)
            )

            async def drive():
                a, b = await asyncio.gather(
                    service.search_async(query, k=2, candidates=3),
                    service.search_async(query, k=2, candidates=3),
                )
                return _search_signature(a), _search_signature(b)

            got_a, got_b = asyncio.run(drive())
            assert got_a == sync and got_b == sync

    def test_match_resolves_repository_ids(self, repo):
        ids = repo.schema_ids()
        with MatchService(repo, sessions=1) as service:
            by_id = service.match(ids[0], ids[1])
            direct = service.match(
                repo.load(ids[0]), repo.load(ids[1])
            )
            assert _mapping_signature(by_id) == _mapping_signature(direct)

    def test_overload_rejects_instead_of_buffering(self, repo):
        service = MatchService(repo, sessions=1, queue_depth=1)
        release = threading.Event()
        entered = threading.Event()

        def stall(session, deadline):
            entered.set()
            release.wait(timeout=30)
            return "done"

        future = service.submit("search", stall)
        assert entered.wait(timeout=10)
        query = _query_for(_corpus(5)[0])
        with pytest.raises(ServiceOverloadedError):
            service.search(query)
        assert service.metrics.endpoint("search").snapshot()[
            "rejected"
        ] == 1
        release.set()
        assert future.result(timeout=10) == "done"
        # Capacity freed: the same request is admitted now.
        assert len(service.search(query, k=2, candidates=2)) == 2
        service.close()

    def test_expired_deadline_surfaces_timeout(self, repo):
        query = _query_for(_corpus(5)[1])
        with MatchService(repo, sessions=1) as service:
            with pytest.raises(RequestTimeoutError):
                service.search(query, timeout=1e-9)
            assert service.metrics.endpoint("search").snapshot()[
                "timeouts"
            ] == 1

    def test_closed_service_rejects(self, repo):
        service = MatchService(repo, sessions=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.search(_query_for(_corpus(5)[0]))
        service.close()  # idempotent

    def test_concurrent_ingest_search_consistent_prefix(self, tmp_path):
        """A search racing the ingest writer must see a consistent
        prefix of the corpus: every id visible to its index ranking is
        one of the first N ingested, for the N its snapshot caught —
        never a schema in the catalog but not the index or vice
        versa."""
        schemas = _corpus(10, size=8, seed=17)
        query = _query_for(schemas[0], seed=23)
        repository = SchemaRepository(str(tmp_path / "repo"))
        order = []
        snapshots = []
        errors = []
        with MatchService(
            repository, sessions=2, queue_depth=32
        ) as service:
            service.ingest(schemas[0])
            order.append(repository.schema_ids()[0])
            done = threading.Event()

            def reader():
                while not done.is_set():
                    try:
                        search = service.search(query, k=2, candidates=2)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                    snapshots.append(
                        sorted(sid for sid, _ in search.candidate_scores)
                    )

            threads = [
                threading.Thread(target=reader) for _ in range(2)
            ]
            for t in threads:
                t.start()
            for schema in schemas[1:]:
                before = set(repository.schema_ids())
                service.ingest(schema)
                (new_id,) = set(repository.schema_ids()) - before
                order.append(new_id)
            done.set()
            for t in threads:
                t.join()
        assert not errors
        assert snapshots, "readers never completed a search"
        valid_prefixes = {
            tuple(sorted(order[:n])): n
            for n in range(1, len(order) + 1)
        }
        for snapshot in snapshots:
            assert tuple(snapshot) in valid_prefixes, (
                f"torn read: {snapshot} is not a prefix of the ingest "
                f"order {order}"
            )

    def test_background_compaction_folds_segments(self, tmp_path):
        repository = SchemaRepository(
            str(tmp_path / "repo"),
        )
        repository.config = repository.config.replace(
            segment_compaction_threshold=2
        )
        schemas = _corpus(6, size=6, seed=31)
        with MatchService(repository, sessions=1) as service:
            for schema in schemas:
                service.ingest(schema)
        # close() joins the compactor: the sequence must have folded
        # below the pre-compaction segment-per-batch count.
        reopened = SchemaRepository.open(str(tmp_path / "repo"))
        assert reopened.segment_count() < len(schemas)
        assert len(reopened) == len(schemas)


class TestSegmentParity:
    def test_reopen_from_segments_is_bit_identical_to_rebuild(
        self, tmp_path
    ):
        """Acceptance criterion: segments are a pure cache. A reopen
        that replays them answers searches bit-identically to a reopen
        that rebuilt the index from artifact files."""
        schemas = _corpus(6, size=10, seed=43)
        queries = [_query_for(s, seed=47 + i) for i, s in
                   enumerate(schemas[:3])]
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repository:
            for i, schema in enumerate(schemas):
                repository.ingest(schema)
                if i % 2 == 1:
                    repository.save()  # several segments on disk
        from_segments = SchemaRepository.open(path)
        assert from_segments.cache_info()["segments_loaded"] >= 2
        assert from_segments.cache_info()["index_rebuilds"] == 0
        segment_sigs = [
            _search_signature(from_segments.search(q, k=3, candidates=4))
            for q in queries
        ]
        # Destroy every segment: the next open must rebuild the index
        # from the artifact files, the source of truth.
        segment_dir = os.path.join(path, SEGMENTS_DIR)
        for name in os.listdir(segment_dir):
            os.remove(os.path.join(segment_dir, name))
        rebuilt = SchemaRepository.open(path)
        assert rebuilt.cache_info()["index_rebuilds"] == 1
        rebuilt_sigs = [
            _search_signature(rebuilt.search(q, k=3, candidates=4))
            for q in queries
        ]
        assert segment_sigs == rebuilt_sigs

    def test_compaction_is_idempotent_and_preserves_results(
        self, tmp_path
    ):
        schemas = _corpus(6, size=8, seed=53)
        query = _query_for(schemas[4], seed=59)
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repository:
            for schema in schemas:
                repository.ingest(schema)
                repository.save(auto_compact=False)
            before = _search_signature(
                repository.search(query, k=3, candidates=4)
            )
            assert repository.segment_count() == len(schemas)
            assert repository.compact() == 1
            files_once = sorted(
                os.listdir(os.path.join(path, SEGMENTS_DIR))
            )
            assert len(files_once) == 1
            assert repository.compact() == 1  # idempotent
            assert sorted(
                os.listdir(os.path.join(path, SEGMENTS_DIR))
            ) == files_once
        reopened = SchemaRepository.open(path)
        assert reopened.cache_info()["index_rebuilds"] == 0
        assert _search_signature(
            reopened.search(query, k=3, candidates=4)
        ) == before


class TestSessionThreadSafety:
    def test_threaded_match_many_is_bit_identical(self):
        """Regression: the session's LRU tiers race under threads.
        Eight threads matching the same pairs must agree with a serial
        session bit for bit, and the tier bookkeeping must stay sane
        (no lost updates in the counters)."""
        schemas = _corpus(4, size=10, seed=61)
        pairs = [
            (a, b) for a in schemas for b in schemas if a is not b
        ]
        serial = MatchSession()
        expected = {
            (a.name, b.name): _mapping_signature(serial.match(a, b))
            for a, b in pairs
        }
        session = MatchSession()
        errors = []

        def worker():
            try:
                for a, b in pairs:
                    got = _mapping_signature(session.match(a, b))
                    assert got == expected[(a.name, b.name)]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = session.cache_info()
        assert info["matches"] == 8 * len(pairs)
        # Every prepare is either a hit or a miss — a lost update
        # under racing threads breaks this invariant.
        assert (
            info["prepare_hits"] + info["prepare_misses"]
            == 2 * 8 * len(pairs)
        )


class TestMetrics:
    def test_histogram_percentiles_bound_resolution(self):
        histogram = LatencyHistogram()
        for ms in range(1, 101):
            histogram.record(ms / 1000.0)
        snap = histogram.snapshot()
        assert snap["count"] == 100
        # Log buckets guarantee ≤ ~12% relative error.
        assert abs(snap["p50_ms"] - 50) / 50 < 0.13
        assert abs(snap["p99_ms"] - 99) / 99 < 0.13
        assert snap["min_ms"] <= snap["p50_ms"] <= snap["max_ms"]

    def test_empty_histogram_snapshot(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p99_ms"] == 0.0

    def test_deadline_expiry_names_context(self):
        deadline = Deadline(1e-9)
        with pytest.raises(RequestTimeoutError, match="candidate 3"):
            deadline.check("candidate 3")
        Deadline.unbounded().check("never raises")


class TestHTTPDaemon:
    @pytest.fixture()
    def server(self, repo):
        service = MatchService(repo, sessions=2, queue_depth=16)
        httpd = MatchHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        service.close()

    def _request(self, server, path, body=None):
        data = (
            json.dumps(body).encode("utf-8")
            if body is not None
            else None
        )
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            data=data,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read())

    def test_smoke_cycle(self, server):
        health = self._request(server, "/health")
        assert health["status"] == "ok"
        assert health["schemas"] == 5

        extra = _corpus(7, seed=5)[5:]
        ingested = self._request(server, "/ingest", {
            "schemas": [{"schema": schema_to_dict(s)} for s in extra],
        })
        assert len(ingested["ids"]) == 2
        assert ingested["schemas"] == 7
        assert ingested["latency_ms"]["total_ms"] > 0

        query = _query_for(_corpus(5)[1])
        search = self._request(server, "/search", {
            "schema": schema_to_dict(query), "k": 2, "candidates": 3,
        })
        assert len(search["matches"]) == 2
        assert set(search["latency_ms"]) == {
            "total_ms", "index_ms", "match_ms",
        }

        match = self._request(server, "/match", {
            "source": {"id": ingested["ids"][0]},
            "target": {"id": ingested["ids"][1]},
        })
        assert "score" in match and "elements" in match

        stats = self._request(server, "/stats")
        assert stats["endpoints"]["search"]["count"] == 1
        assert stats["endpoints"]["ingest"]["count"] == 1
        assert stats["health"]["schemas"] == 7
        assert stats["session_pool"]["matches"] >= 3

    def test_text_formats_parse_on_the_wire(self, server):
        search = self._request(server, "/search", {
            "text": "CREATE TABLE po (id INT, total FLOAT);",
            "format": "sql",
            "k": 1,
        })
        assert search["query_schema"] == "request-schema"
        assert len(search["matches"]) == 1

    def _status_of(self, server, path, body):
        try:
            self._request(server, path, body)
        except urllib.error.HTTPError as error:
            payload = json.loads(error.read())
            return error.code, payload["error"]
        pytest.fail(f"{path} unexpectedly succeeded")

    def test_error_taxonomy_maps_to_status_codes(self, server):
        assert self._status_of(server, "/search", {"k": 2}) == (
            400, "BadRequestError",
        )
        assert self._status_of(server, "/nope", {}) == (
            404, "NotFound",
        )
        assert self._status_of(server, "/match", {
            "source": {"id": "missing-id"},
            "target": {"id": "missing-id"},
        }) == (404, "RepositoryError")
        assert self._status_of(server, "/search", {
            "text": "CREATE TABLE x (a INT);",
            "format": "sql",
            "timeout_s": 1e-9,
        }) == (504, "RequestTimeoutError")
