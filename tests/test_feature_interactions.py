"""Cross-feature interaction tests.

Features that are individually tested can still conflict in
combination; these tests pin the combinations a real user will hit.
"""

import pytest

from repro import CupidConfig, CupidMatcher, auto_config
from repro.datasets.rdb_star import rdb_schema, star_schema
from repro.io.dtd import parse_dtd
from repro.io.sql_ddl import parse_sql_ddl
from repro.model.builder import SchemaBuilder
from repro.tree.lazy import construct_schema_tree_lazy
from repro.tree.refint import augment_with_join_views


class TestLazyWithJoinViews:
    def test_join_views_on_lazy_tree(self):
        """Join-view augmentation must work on shared-subtree trees."""
        schema = parse_sql_ddl(
            """
            CREATE TABLE A (x int PRIMARY KEY, y varchar(10));
            CREATE TABLE B (z int REFERENCES A(x), w varchar(10));
            """,
            "DB",
        )
        tree = construct_schema_tree_lazy(schema)
        added = augment_with_join_views(tree)
        joins = [n for n in added if n.is_join_view]
        assert len(joins) == 1
        assert {c.name for c in joins[0].children} == {"x", "y", "z", "w"}

    def test_lazy_pipeline_with_refints(self):
        config = CupidConfig(lazy_expansion=True, use_refint_joins=True)
        matcher = CupidMatcher(config=config)
        result = matcher.match(rdb_schema(), star_schema())
        assert len(result.leaf_mapping) > 10
        join_nodes = [
            n for n in result.source_tree.nodes() if n.is_join_view
        ]
        assert join_nodes


class TestAutoTuneCombinations:
    def test_auto_config_with_descriptions(self):
        base = CupidConfig(use_descriptions=True)
        config = auto_config(rdb_schema(), star_schema(), base)
        assert config.use_descriptions  # preserved through replace()
        assert config.leaf_count_ratio >= 2.5

    def test_auto_config_with_lazy(self):
        base = CupidConfig(lazy_expansion=True)
        config = auto_config(rdb_schema(), star_schema(), base)
        assert config.lazy_expansion
        CupidMatcher(config=config).match(rdb_schema(), star_schema())


class TestInitialMappingInteractions:
    def test_hint_plus_one_to_one(self):
        builder_s = SchemaBuilder("S")
        a = builder_s.add_child(builder_s.root, "A")
        builder_s.add_leaf(a, "p", "integer")
        builder_s.add_leaf(a, "q", "integer")
        builder_t = SchemaBuilder("T")
        b = builder_t.add_child(builder_t.root, "A")
        builder_t.add_leaf(b, "r", "integer")
        builder_t.add_leaf(b, "s", "integer")

        result = CupidMatcher().match(
            builder_s.schema,
            builder_t.schema,
            initial_mapping=[("A.p", "A.r"), ("A.q", "A.s")],
        )
        one_to_one = result.one_to_one()
        assert one_to_one.is_one_to_one()
        assert ("S.A.p", "T.A.r") in one_to_one.path_pairs()
        assert ("S.A.q", "T.A.s") in one_to_one.path_pairs()

    def test_hint_survives_lazy_expansion(self):
        """Hints address tree paths; the lazy tree must resolve them."""
        builder = SchemaBuilder("S")
        shared = builder.add_shared_type("Addr")
        builder.add_leaf(shared, "street", "string")
        user = builder.add_child(builder.root, "Home")
        builder.derive_from(user, shared)
        source = builder.schema

        builder2 = SchemaBuilder("T")
        home = builder2.add_child(builder2.root, "Home")
        builder2.add_leaf(home, "road", "string")
        target = builder2.schema

        matcher = CupidMatcher(config=CupidConfig(lazy_expansion=True))
        result = matcher.match(
            source, target, initial_mapping=[("Home.street", "Home.road")]
        )
        assert ("S.Home.street", "T.Home.road") in (
            result.leaf_mapping.path_pairs()
        )


class TestDtdThroughCli:
    def test_cli_matches_dtd_against_sql(self, tmp_path, capsys):
        from repro.cli import main

        dtd = tmp_path / "po.dtd"
        dtd.write_text(
            """
            <!ELEMENT order (#PCDATA)>
            <!ATTLIST order
              order_number CDATA #REQUIRED
              order_date CDATA #IMPLIED>
            """
        )
        sql = tmp_path / "po.sql"
        sql.write_text(
            "CREATE TABLE Orders (OrderNumber int PRIMARY KEY, "
            "OrderDate datetime);"
        )
        assert main(["match", str(dtd), str(sql)]) == 0
        out = capsys.readouterr().out
        assert "order_number" in out.lower()


class TestKeyAffinityWithImporters:
    def test_sql_keys_feed_affinity(self):
        """PRIMARY KEY columns from the DDL importer carry is_key into
        the similarity store."""
        source = parse_sql_ddl(
            "CREATE TABLE T (ID int PRIMARY KEY, Val int);", "S"
        )
        target = parse_sql_ddl(
            "CREATE TABLE T (Code int PRIMARY KEY, Num int);", "T"
        )
        result = CupidMatcher().match(source, target)
        sims = result.treematch_result.sims
        id_node = result.source_tree.node_for_path("T", "ID")
        code = result.target_tree.node_for_path("T", "Code")
        num = result.target_tree.node_for_path("T", "Num")
        # Key/key starts above key/non-key (identical int types).
        assert sims.ssim(id_node, code) >= sims.ssim(id_node, num)

    def test_dtd_id_keys_feed_affinity(self):
        source = parse_dtd(
            """
            <!ELEMENT a (#PCDATA)>
            <!ATTLIST a key ID #REQUIRED other CDATA #IMPLIED>
            """,
            "S",
        )
        keyed = source.element_named("key")
        assert keyed.is_key
