"""Tests for the paper datasets and the gold-mapping helpers."""

import pytest

from repro.datasets.canonical import canonical_examples
from repro.datasets.cidx_excel import (
    cidx_excel_element_gold,
    cidx_excel_gold,
    cidx_schema,
    excel_schema,
)
from repro.datasets.figure1 import figure1_po, figure1_porder
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.gold import GoldMapping
from repro.datasets.rdb_star import (
    rdb_schema,
    rdb_star_column_gold,
    rdb_star_table_gold,
    star_schema,
)
from repro.mapping.mapping import Mapping, MappingElement
from repro.model.validation import validate_schema
from repro.tree.construction import construct_schema_tree


class TestFigureSchemas:
    def test_figure1_shapes(self):
        po = figure1_po()
        porder = figure1_porder()
        assert validate_schema(po) == []
        assert validate_schema(porder) == []
        assert len(po.containment_leaves(po.root)) == 3

    def test_figure2_shapes(self):
        po = figure2_po()
        purchase = figure2_purchase_order()
        assert validate_schema(po) == []
        assert validate_schema(purchase) == []
        # PO: Count, Line, Qty, UoM, 2×(Street, City) = 8 leaves.
        assert len(po.containment_leaves(po.root)) == 8
        assert len(purchase.containment_leaves(purchase.root)) == 8

    def test_cidx_schema_contents(self):
        schema = cidx_schema()
        assert validate_schema(schema) == []
        names = {e.name for e in schema.elements}
        assert {"POHeader", "POShipTo", "POBillTo", "POLines", "Contact"} <= names
        # The CIDX side spells out both address blocks inline.
        assert len(schema.elements_named("Street1")) == 2

    def test_excel_schema_shares_types(self):
        schema = excel_schema()
        # Three elements are named Address: the complexType plus the
        # two wrapper elements that reference it.
        types = [
            e for e in schema.elements_named("Address")
            if e.kind.value == "type"
        ]
        assert len(types) == 1
        address = types[0]
        assert address.not_instantiated
        assert len(schema.deriving_elements(address)) == 2

    def test_excel_tree_materializes_18_shared_attributes(self):
        """Section 9.3: '18 such XML attributes in multiple contexts'
        (two copies each of Address's 8 + Contact's 4 ≈ the shared
        attribute occurrences; our transcription has 12 shared names
        appearing twice = 24 nodes, 12 duplicated)."""
        tree = construct_schema_tree(excel_schema())
        deliver = tree.node_for_path("DeliverTo", "Address")
        invoice = tree.node_for_path("InvoiceTo", "Address")
        assert {c.name for c in deliver.children} == {
            c.name for c in invoice.children
        }

    def test_rdb_star_parse(self):
        rdb = rdb_schema()
        star = star_schema()
        assert validate_schema(rdb) == []
        assert validate_schema(star) == []
        assert len([e for e in rdb.elements if e.kind.value == "table"]) == 13
        assert len([e for e in star.elements if e.kind.value == "table"]) == 5

    def test_rdb_foreign_keys(self):
        rdb = rdb_schema()
        # ORDERS: 3 FKs; ORDERDETAILS: 2; TERRITORYREGION: 2;
        # EMPLOYEETERRITORY: 2; PAYMENT: 2; PRODUCTS: 1.
        assert len(rdb.refint_elements()) == 12

    def test_star_foreign_keys(self):
        assert len(star_schema().refint_elements()) == 4

    def test_canonical_examples_complete(self):
        examples = canonical_examples()
        assert [e.example_id for e in examples] == [1, 2, 3, 4, 5, 6]
        for example in examples:
            assert len(example.gold) > 0
            assert set(example.expected) == {"cupid", "dike", "momis"}
            assert validate_schema(example.schema1) == []

    def test_gold_mappings_nonempty(self):
        assert len(cidx_excel_gold()) >= 30
        assert len(cidx_excel_element_gold()) >= 7
        assert len(rdb_star_column_gold()) >= 20
        assert len(rdb_star_table_gold()) >= 5


class TestGoldMapping:
    def _mapping(self, *pairs):
        mapping = Mapping("S", "T")
        for source, target, score in pairs:
            mapping.add(
                MappingElement(
                    source_path=tuple(source.split(".")),
                    target_path=tuple(target.split(".")),
                    similarity=score,
                )
            )
        return mapping

    def test_suffix_matching(self):
        gold = GoldMapping.from_pairs([("Item.Qty", "Item.Quantity")])
        mapping = self._mapping(("S.POLines.Item.Qty", "T.Items.Item.Quantity", 0.9))
        assert gold.found_pairs(mapping) == {0}

    def test_suffix_distinguishes_contexts(self):
        gold = GoldMapping.from_pairs(
            [("BillTo.City", "InvoiceTo.City")]
        )
        wrong_context = self._mapping(("S.ShipTo.City", "T.InvoiceTo.City", 0.9))
        assert gold.found_pairs(wrong_context) == set()

    def test_missing_pairs(self):
        gold = GoldMapping.from_pairs([("a", "b"), ("c", "d")])
        mapping = self._mapping(("S.a", "T.b", 0.9))
        assert gold.missing_pairs(mapping) == [("c", "d")]

    def test_false_positives(self):
        gold = GoldMapping.from_pairs([("a", "b")])
        mapping = self._mapping(("S.a", "T.b", 0.9), ("S.x", "T.y", 0.8))
        fps = gold.false_positives(mapping)
        assert len(fps) == 1
        assert fps[0].source_name == "x"

    def test_target_recall_with_alternatives(self):
        """Several gold sources for one target act as alternatives."""
        gold = GoldMapping.from_pairs(
            [("Orders", "Sales"), ("OrderDetails", "Sales")]
        )
        mapping = self._mapping(("S.OrderDetails", "T.Sales", 0.9))
        assert gold.target_recall(mapping) == 1.0

    def test_unmatched_targets(self):
        gold = GoldMapping.from_pairs([("a", "b"), ("c", "d")])
        mapping = self._mapping(("S.a", "T.b", 0.9))
        assert gold.unmatched_targets(mapping) == ["d"]

    def test_add_and_iter(self):
        gold = GoldMapping()
        gold.add("a.b", "c.d")
        assert len(gold) == 1
        assert list(gold) == [(("a", "b"), ("c", "d"))]
