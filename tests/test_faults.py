"""Fault injection, crash-safe durability, and self-healing serving.

Four layers under test. The fault plan itself (spec grammar, hit
counting, deterministic corruption). The **crash sweep** — the
acceptance criterion of this subsystem: a subprocess driver ingests a
deterministic corpus while ``REPRO_FAULTS`` kills it at a chosen
write-path site, and the parent asserts the repository always reopens
to a *consistent prefix* of the ingest order (everything committed is
visible, nothing never-intended is) whose search results are
bit-identical to a scratch repository holding exactly the visible
schemas. The **degradation modes** in process: injected ENOSPC turns
the repository read-only (ingest raises, search keeps answering),
injected segment-read faults fall back to the artifact re-scan. The
**serving self-healing** over a real socket: a killed worker pool
heals behind a one-shot retry, a persistent one surfaces 503 with a
jittered ``Retry-After`` while ``/health`` stays green, disk-full
maps to 507 and clears with the fault, failed background compactions
retry with backoff, and SIGTERM drains and flushes the daemon.

The sweep seed is taken from an ambient ``REPRO_FAULTS=seed=N`` (a
rule-less plan never fires in this parent process) so CI can run the
whole module under several seeds — see the ``chaos`` job.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

import fault_driver
from repro import SchemaRepository, faults
from repro.cli import main as cli_main
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.exceptions import ParallelError, RepositoryReadOnlyError
from repro.io.json_io import schema_to_dict
from repro.repository.durability import atomic_write_json
from repro.repository.segments import SEGMENTS_DIR
from repro.serving import MatchHTTPServer, MatchService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
DRIVER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "fault_driver.py")

#: The sweep seed: CI's chaos job exports ``REPRO_FAULTS=seed=N`` (no
#: rules, so nothing fires here) and every subprocess spec below
#: inherits it — one knob re-randomizes the corpus AND the corrupt
#: offsets.
SWEEP_SEED = faults.ambient_seed() or 0
CORPUS_SEED = 3 + SWEEP_SEED


@pytest.fixture(autouse=True)
def _restore_ambient_plan():
    """Tests arm plans freely; whatever was ambient comes back."""
    before = faults._PLAN
    yield
    faults._PLAN = before


def _corpus(n=4, size=12, seed=None):
    generator = SchemaGenerator(seed=CORPUS_SEED if seed is None else seed)
    return [
        generator.generate(
            name=f"fault{i}", n_leaves=size, name_repetition=0.5
        )
        for i in range(n)
    ]


def _query_for(schema, seed=97):
    perturbed, _ = SchemaGenerator(seed=seed).perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return perturbed


def _mapping_signature(result):
    return sorted(
        (e.source_path, e.target_path, e.similarity)
        for e in result.leaf_mapping
    )


def _search_signature(search):
    return [
        (m.schema_id, m.score, _mapping_signature(m.result))
        for m in search
    ]


def _subprocess_env(spec=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    if spec is None:
        env.pop("REPRO_FAULTS", None)
    else:
        env["REPRO_FAULTS"] = f"seed={SWEEP_SEED};{spec}"
    return env


# ----------------------------------------------------------------------
# The fault plan itself
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_grammar(self):
        plan = faults.parse_spec(
            "seed=7; segment.write:kill@2 ;repo.manifest:oserror@*;"
            "repo.intent:torn@1,4"
        )
        assert plan.seed == 7
        assert plan.rules["segment.write"].hits == frozenset({2})
        assert plan.rules["repo.manifest"].hits is None
        assert plan.rules["repo.intent"].hits == frozenset({1, 4})

    @pytest.mark.parametrize("bad", [
        "nonsense",
        "site:not-an-action",
        "site:kill@0",
        "site:kill@x",
        "seed=x",
        "site:kill@2;site:oserror",  # duplicate site
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_spec(bad)

    def test_hits_count_invocations(self):
        faults.arm(faults.parse_spec("unit.site:oserror@2"))
        faults.check("unit.site")  # first invocation passes
        with pytest.raises(OSError):
            faults.check("unit.site")
        faults.check("unit.site")  # and the third passes again

    def test_enospc_carries_errno(self):
        import errno

        faults.arm(faults.parse_spec("unit.site:enospc@*"))
        with pytest.raises(OSError) as caught:
            faults.check("unit.site")
        assert caught.value.errno == errno.ENOSPC

    def test_seed_only_plan_never_fires(self):
        faults.arm(faults.parse_spec("seed=9"))
        assert faults.ambient_seed() == 9
        for _ in range(8):
            faults.check("repo.manifest")
            assert faults.action("segment.write") is None

    def test_unarmed_sites_are_free(self):
        faults.disarm()
        assert not faults.armed()
        assert faults.action("repo.manifest") is None
        faults.check("segment.write")

    def test_corrupt_offsets_are_seed_deterministic(self):
        a = faults.FaultPlan(seed=11)
        b = faults.FaultPlan(seed=11)
        assert [a.corrupt_offset(100) for _ in range(5)] == [
            b.corrupt_offset(100) for _ in range(5)
        ]

    def test_corrupt_action_flips_exactly_one_byte(self, tmp_path):
        faults.arm(faults.parse_spec("seed=5;unit.write:corrupt@1"))
        path = str(tmp_path / "f.json")
        atomic_write_json(path, {"a": 1}, site="unit.write")
        expected = (
            json.dumps({"a": 1}, indent=1, sort_keys=True) + "\n"
        ).encode("utf-8")
        with open(path, "rb") as handle:
            blob = handle.read()
        assert len(blob) == len(expected)
        diffs = [
            i for i, (x, y) in enumerate(zip(blob, expected)) if x != y
        ]
        assert len(diffs) == 1


# ----------------------------------------------------------------------
# The crash sweep (acceptance criterion)
# ----------------------------------------------------------------------

#: Each spec names one crash point in the driver's timeline (baseline
#: save, 5× [intent → artifact → publish], search, compact). The hit
#: numbers are chosen against that timeline — e.g. ``repo.manifest``
#: hit 3 is the second post-ingest publish. ``kill`` dies before any
#: bytes, ``kill_after`` right after the rename, ``torn`` publishes
#: half the payload under the final name first. ``corrupt`` (no kill)
#: lets the driver finish and plants bit rot for the reopen to catch.
CRASH_SPECS = [
    "repo.artifact:kill@2",
    "repo.artifact:kill_after@2",
    "repo.intent:kill@3",
    "repo.intent:torn@2",
    "repo.manifest:kill@3",
    "repo.manifest:kill_after@5",
    "repo.simcache:torn@1",
    "segment.write:kill@2",
    "segment.write:kill_after@4",
    "segment.write:torn@6",
]
CORRUPTION_SPECS = ["segment.write:corrupt@6"]


def _run_driver(tmp_path, spec):
    root = str(tmp_path / "crash-repo")
    proc = subprocess.run(
        [sys.executable, DRIVER, root, str(CORPUS_SEED)],
        env=_subprocess_env(spec),
        capture_output=True,
        text=True,
        timeout=240,
    )
    return root, proc


def _assert_recovers_consistently(root, stdout, tmp_path):
    """The sweep's invariant: reopen, bound the corpus, check parity.

    committed ⊆ visible ⊆ intended, and the reopened repository
    answers searches bit-identically to a scratch repository holding
    exactly the visible schemas. One save then heals the layout: the
    audit comes back clean.
    """
    lines = stdout.splitlines()
    intended = [l.split()[1] for l in lines if l.startswith("intent ")]
    committed = {l.split()[1] for l in lines if l.startswith("committed ")}
    schemas = fault_driver.corpus(CORPUS_SEED)
    by_id = {fault_driver.expected_id(s): s for s in schemas}
    assert set(intended) <= set(by_id)

    repo = SchemaRepository.open(root)
    visible = set(repo.schema_ids())
    assert committed <= visible, (
        f"published schemas vanished: {sorted(committed - visible)}"
    )
    assert visible <= set(intended), (
        f"never-intended schemas appeared: "
        f"{sorted(visible - set(intended))}"
    )

    if visible:
        query = _query_for(schemas[0])
        got = _search_signature(repo.search(query, k=3))
        scratch = SchemaRepository(str(tmp_path / "scratch-repo"))
        for schema_id in intended:
            if schema_id in visible:
                scratch.ingest(by_id[schema_id])
        scratch.save()
        expected = _search_signature(scratch.search(query, k=3))
        assert got == expected, "recovered corpus lost search parity"
        scratch.close()

    repo.save()
    assert repo.audit_segments() == []
    repo.close()
    return repo


class TestCrashSweep:
    @pytest.mark.parametrize("spec", CRASH_SPECS)
    def test_killed_writer_leaves_consistent_repository(
        self, tmp_path, spec
    ):
        root, proc = _run_driver(tmp_path, spec)
        assert proc.returncode == faults.KILL_EXIT_CODE, (
            f"driver under {spec!r} should die at the injected site "
            f"(rc={proc.returncode}, stderr={proc.stderr[-500:]})"
        )
        assert "done" not in proc.stdout
        _assert_recovers_consistently(root, proc.stdout, tmp_path)

    @pytest.mark.parametrize("spec", CORRUPTION_SPECS)
    def test_corrupted_segment_triggers_fallback(self, tmp_path, spec):
        root, proc = _run_driver(tmp_path, spec)
        assert proc.returncode == 0, proc.stderr[-500:]
        assert proc.stdout.splitlines()[-1] == "done"
        repo = _assert_recovers_consistently(
            root, proc.stdout, tmp_path
        )
        info = repo.cache_info()
        assert info["segment_fallbacks"] == 1
        assert info["index_rebuilds"] == 1

    def test_no_faults_runs_clean(self, tmp_path):
        root, proc = _run_driver(tmp_path, None)
        assert proc.returncode == 0, proc.stderr[-500:]
        assert proc.stdout.splitlines()[-1] == "done"
        repo = SchemaRepository.open(root)
        assert len(repo) == fault_driver.CORPUS_SIZE
        assert repo.audit_segments() == []
        info = repo.recovery_info()
        assert info["recovered_ingests"] == 0
        assert info["rolled_back_ingests"] == 0

    def test_kill_after_artifact_recovers_the_ingest(self, tmp_path):
        """The WAL's completion side, pinned: dying right after the
        artifact rename (manifest never written) must *finish* the
        ingest on reopen, not roll it back."""
        root, proc = _run_driver(tmp_path, "repo.artifact:kill_after@2")
        assert proc.returncode == faults.KILL_EXIT_CODE
        repo = SchemaRepository.open(root)
        assert repo.recovery_info()["recovered_ingests"] == 1
        assert len(repo) == 2

    def test_kill_during_artifact_rolls_the_ingest_back(self, tmp_path):
        root, proc = _run_driver(tmp_path, "repo.artifact:kill@2")
        assert proc.returncode == faults.KILL_EXIT_CODE
        repo = SchemaRepository.open(root)
        assert repo.recovery_info()["rolled_back_ingests"] == 1
        assert len(repo) == 1
        # The partial artifact is gone, not just hidden.
        assert not os.path.exists(
            os.path.join(root, "ingest.intent.json")
        )


# ----------------------------------------------------------------------
# Degradation modes (in process)
# ----------------------------------------------------------------------


class TestReadOnlyDegradation:
    def test_enospc_degrades_writes_keeps_reads(self, tmp_path):
        schemas = _corpus(2)
        repo = SchemaRepository(str(tmp_path / "repo"))
        repo.ingest(schemas[0])
        repo.save()
        faults.arm(faults.parse_spec("repo.intent:enospc@*"))
        with pytest.raises(RepositoryReadOnlyError):
            repo.ingest(schemas[1])
        assert repo.read_only
        info = repo.recovery_info()
        assert info["read_only"] and info["write_failures"] >= 1
        assert "ENOSPC" in info["read_only_reason"]
        # Reads are untouched by the degradation.
        assert len(repo.search(_query_for(schemas[0]), k=1)) == 1
        # Non-sticky: the moment a durable write succeeds the flag
        # clears — no restart, no explicit reset call.
        faults.disarm()
        repo.ingest(schemas[1])
        assert not repo.read_only
        repo.save()
        assert len(repo) == 2

    def test_segment_read_fault_falls_back_to_rescan(self, tmp_path):
        path = str(tmp_path / "repo")
        schemas = _corpus(3)
        with SchemaRepository(path) as repo:
            for schema in schemas:
                repo.ingest(schema)
            query = _query_for(schemas[1])
            baseline = _search_signature(repo.search(query, k=2))
        faults.arm(faults.parse_spec("segment.read:oserror@1"))
        try:
            reopened = SchemaRepository.open(path)
        finally:
            faults.disarm()
        info = reopened.cache_info()
        assert info["segment_fallbacks"] == 1
        assert info["index_rebuilds"] == 1
        assert _search_signature(
            reopened.search(query, k=2)
        ) == baseline


# ----------------------------------------------------------------------
# Self-healing serving (HTTP, over a real socket)
# ----------------------------------------------------------------------


def _http(port, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _http_error(port, path, payload=None):
    try:
        _http(port, path, payload)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers
    pytest.fail(f"{path} unexpectedly succeeded")


class _Server:
    """MatchHTTPServer on a background thread (context manager)."""

    def __init__(self, repository, **service_kwargs):
        import threading

        self.service = MatchService(repository, **service_kwargs)
        self.httpd = MatchHTTPServer(("127.0.0.1", 0), self.service)
        self.port = self.httpd.port
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.httpd.shutdown()
        self.httpd.server_close()
        faults.disarm()  # never let a plan leak into close's flushes
        self.service.close()


class TestSelfHealingHTTP:
    def test_worker_pool_death_heals_then_surfaces_503(self, tmp_path):
        """One pool death is invisible (the retry rebuilds it); a pool
        dying on every request is a named 503 with Retry-After while
        /health stays green; clearing the fault restores 200s."""
        config = CupidConfig().replace(
            store="flat", workers=2, parallel_leaf_threshold=1
        )
        repo = SchemaRepository(str(tmp_path / "repo"), config=config)
        schemas = _corpus(3, size=16)
        for schema in schemas:
            repo.ingest(schema)
        repo.save()
        body = {
            "schema": schema_to_dict(_query_for(schemas[0])),
            "k": 2,
        }
        with _Server(repo, sessions=1, queue_depth=8) as server:
            assert len(_http(server.port, "/search", body)["matches"]) == 2

            faults.arm(faults.parse_spec("parallel.request:kill_worker@1"))
            healed = _http(server.port, "/search", body)
            assert len(healed["matches"]) == 2
            stats = _http(server.port, "/stats")
            assert stats["recovery"]["worker_pool_retries"] == 1

            faults.arm(faults.parse_spec("parallel.request:kill_worker@*"))
            status, payload, headers = _http_error(
                server.port, "/search", body
            )
            assert status == 503
            assert payload["error"] == "ParallelError"
            retry_after = headers.get("Retry-After")
            base = repo.config.serving_retry_after_s
            assert retry_after is not None
            assert base <= int(retry_after) <= 2 * base + 1
            health = _http(server.port, "/health")
            assert health["status"] == "ok"

            faults.disarm()
            recovered = _http(server.port, "/search", body)
            assert len(recovered["matches"]) == 2

    def test_disk_full_degrades_ingest_keeps_search(self, tmp_path):
        repo = SchemaRepository(str(tmp_path / "repo"))
        schemas = _corpus(4)
        for schema in schemas[:3]:
            repo.ingest(schema)
        repo.save()
        search_body = {
            "schema": schema_to_dict(_query_for(schemas[0])),
            "k": 2,
        }
        ingest_body = {
            "schemas": [{"schema": schema_to_dict(schemas[3])}],
        }
        with _Server(repo, sessions=1, queue_depth=8) as server:
            faults.arm(faults.parse_spec("repo.intent:enospc@*"))
            status, payload, _ = _http_error(
                server.port, "/ingest", ingest_body
            )
            assert status == 507
            assert payload["error"] == "RepositoryReadOnlyError"
            # Reads keep working; liveness stays green but advertises
            # the degradation.
            assert len(
                _http(server.port, "/search", search_body)["matches"]
            ) == 2
            health = _http(server.port, "/health")
            assert health["status"] == "ok"
            assert health["read_only"] is True

            faults.disarm()
            ingested = _http(server.port, "/ingest", ingest_body)
            assert len(ingested["ids"]) == 1
            assert _http(server.port, "/health")["read_only"] is False

    def test_search_never_returns_partial_results(self, tmp_path):
        """A failing request is a named 5xx, not a 200 with fewer
        matches — injected worker death on every request must never
        leak a truncated result set."""
        config = CupidConfig().replace(
            store="flat", workers=2, parallel_leaf_threshold=1
        )
        repo = SchemaRepository(str(tmp_path / "repo"), config=config)
        for schema in _corpus(3, size=16):
            repo.ingest(schema)
        repo.save()
        body = {
            "schema": schema_to_dict(_query_for(_corpus(3, size=16)[0])),
            "k": 3,
        }
        with _Server(repo, sessions=1, queue_depth=8) as server:
            faults.arm(faults.parse_spec("parallel.request:kill_worker@*"))
            for _ in range(3):
                status, payload, _ = _http_error(
                    server.port, "/search", body
                )
                assert status == 503
                assert "matches" not in payload
            faults.disarm()
            assert len(_http(server.port, "/search", body)["matches"]) == 3


class TestCompactionSupervision:
    def test_failed_compaction_retries_with_backoff(self, tmp_path):
        config = CupidConfig().replace(
            segment_compaction_threshold=2,
            serving_compaction_backoff_s=0.05,
        )
        repo = SchemaRepository(str(tmp_path / "repo"), config=config)
        for schema in _corpus(3):
            repo.ingest(schema)
            repo.save(auto_compact=False)
        assert repo.segment_count() == 3
        service = MatchService(repo, sessions=1, queue_depth=8)
        try:
            # First two compaction write attempts fail; the supervisor
            # must keep rescheduling until the third succeeds.
            faults.arm(faults.parse_spec("segment.write:oserror@1,2"))
            service._maybe_compact()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if repo.segment_count() == 1:
                    break
                time.sleep(0.02)
            assert repo.segment_count() == 1, "compaction never healed"
            stats = service.stats()
            assert stats["recovery"]["compaction_retries"] == 2
            assert stats["recovery"]["compaction_failures"] == 0
            assert not repo.read_only
        finally:
            faults.disarm()
            service.close()


class TestGracefulShutdown:
    def test_sigterm_drains_and_flushes(self, tmp_path):
        path = str(tmp_path / "repo")
        schemas = _corpus(3)
        with SchemaRepository(path) as repo:
            for schema in schemas[:2]:
                repo.ingest(schema)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--repo", path, "--port", "0",
            ],
            env=_subprocess_env(None),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            announce = proc.stderr.readline()
            matched = re.search(r"http://[^:]+:(\d+)", announce)
            assert matched, f"no announce line (got {announce!r})"
            port = int(matched.group(1))
            ingested = _http(port, "/ingest", {
                "schemas": [{"schema": schema_to_dict(schemas[2])}],
            })
            assert len(ingested["ids"]) == 1
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert returncode == 0
        # The drained daemon flushed everything: the ingest done over
        # HTTP survives a cold reopen, and the layout audits clean.
        reopened = SchemaRepository.open(path)
        assert len(reopened) == 3
        assert reopened.audit_segments() == []


# ----------------------------------------------------------------------
# Legacy-layout migration under crashes
# ----------------------------------------------------------------------


def _fabricate_legacy(path, schemas):
    """Rewrite a repository into the pre-segment on-disk layout."""
    with SchemaRepository(path) as repo:
        for schema in schemas:
            repo.ingest(schema)
    manifest_path = os.path.join(path, "repository.json")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    del manifest["index_segments"]
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle)
    legacy = SchemaRepository.open(path)
    with open(os.path.join(path, "index.json"), "w") as handle:
        json.dump(legacy._index.to_dict(), handle)
    shutil.rmtree(os.path.join(path, SEGMENTS_DIR))


_MIGRATE_CHILD = (
    "from repro.repository.store import SchemaRepository\n"
    "repo = SchemaRepository.open({path!r})\n"
    "repo.save()\n"
)


class TestLegacyMigrationCrash:
    """A crash mid-migration (legacy ``index.json`` → segments) must
    leave the repository readable from *either* side of the cut:
    before the manifest names segments the legacy file is still
    authoritative; after, the stale legacy file is ignored and then
    cleaned up by the next save."""

    @pytest.mark.parametrize("spec,expect_legacy_file", [
        # Dies after writing the first segment, before the manifest:
        # the old manifest + index.json are still the whole truth.
        ("segment.write:kill_after@1", True),
        # Dies after the manifest publish, before the index.json
        # removal: segments are authoritative, the legacy file stale.
        ("repo.manifest:kill_after@1", True),
    ])
    def test_crash_between_segment_and_index_removal(
        self, tmp_path, spec, expect_legacy_file
    ):
        path = str(tmp_path / "legacy-repo")
        schemas = _corpus(3)
        _fabricate_legacy(path, schemas)
        query = _query_for(schemas[2])
        baseline = _search_signature(
            SchemaRepository.open(path).search(query, k=2)
        )
        proc = subprocess.run(
            [sys.executable, "-c", _MIGRATE_CHILD.format(path=path)],
            env=_subprocess_env(spec),
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert proc.returncode == faults.KILL_EXIT_CODE, proc.stderr[-500:]
        assert os.path.exists(
            os.path.join(path, "index.json")
        ) is expect_legacy_file
        reopened = SchemaRepository.open(path)
        assert sorted(reopened.schema_ids()) == sorted(
            fault_driver.expected_id(schema) for schema in schemas
        )
        assert _search_signature(
            reopened.search(query, k=2)
        ) == baseline
        # Completing the migration removes the stale legacy file.
        reopened.save()
        assert not os.path.exists(os.path.join(path, "index.json"))
        assert reopened.audit_segments() == []


# ----------------------------------------------------------------------
# CLI: repro verify, recovery counters in --stats
# ----------------------------------------------------------------------


class TestVerifyCLI:
    def _build(self, tmp_path):
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            for schema in _corpus(3):
                repo.ingest(schema)
        return path

    def test_clean_repository_verifies(self, tmp_path, capsys):
        path = self._build(tmp_path)
        assert cli_main(["verify", "--repo", path]) == 0
        out = capsys.readouterr().out
        assert "0 problem(s)" in out
        assert "3 artifact(s) re-verified" in out

    def test_corrupt_segment_fails_the_audit(self, tmp_path, capsys):
        path = self._build(tmp_path)
        segments_dir = os.path.join(path, SEGMENTS_DIR)
        segment = sorted(os.listdir(segments_dir))[0]
        segment_path = os.path.join(segments_dir, segment)
        with open(segment_path, "r+b") as handle:
            handle.seek(10)
            byte = handle.read(1)
            handle.seek(10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert cli_main(["verify", "--repo", path, "--quick"]) == 1
        captured = capsys.readouterr()
        assert "checksum mismatch" in captured.err

    def test_missing_artifact_fails_the_audit(self, tmp_path, capsys):
        path = self._build(tmp_path)
        with SchemaRepository.open(path) as repo:
            victim = repo.schema_ids()[0]
        os.remove(os.path.join(path, "schemas", f"{victim}.json"))
        assert cli_main(["verify", "--repo", path, "--quick"]) == 1
        assert "missing" in capsys.readouterr().err

    def test_search_stats_surface_recovery_counters(
        self, tmp_path, capsys
    ):
        path = self._build(tmp_path)
        schemas = _corpus(3)
        query_file = str(tmp_path / "query.json")
        with open(query_file, "w") as handle:
            json.dump(schema_to_dict(_query_for(schemas[0])), handle)
        assert cli_main([
            "search", query_file, "--repo", path, "-k", "1", "--stats",
        ]) == 0
        err = capsys.readouterr().err
        assert "# recovery" in err
        assert "segment_fallbacks" in err
        assert "recovered_ingests" in err


class TestRetryAfterJitterSeed:
    """``serving_retry_after_seed`` makes the 503 Retry-After jitter a
    deterministic sequence (fault drills, replayable chaos runs);
    ``None`` — the default — keeps the entropy-seeded behaviour."""

    def _sequence(self, tmp_path, name, seed, n=8):
        config = CupidConfig().replace(serving_retry_after_seed=seed)
        repo = SchemaRepository(str(tmp_path / name), config=config)
        service = MatchService(repo, sessions=1)
        httpd = MatchHTTPServer(("127.0.0.1", 0), service)
        try:
            return [httpd.retry_after_s() for _ in range(n)]
        finally:
            httpd.server_close()
            service.close()

    def test_seeded_jitter_is_deterministic(self, tmp_path):
        first = self._sequence(tmp_path, "a", seed=1234)
        second = self._sequence(tmp_path, "b", seed=1234)
        assert first == second
        base = CupidConfig().serving_retry_after_s
        assert all(base <= value <= 2 * base + 1 for value in first)

    def test_unseeded_jitter_stays_in_range(self, tmp_path):
        values = self._sequence(tmp_path, "c", seed=None)
        base = CupidConfig().serving_retry_after_s
        assert all(base <= value <= 2 * base + 1 for value in values)
