"""Schema repository: artifact round-trips, search parity, corruption.

The repository's contract is bit-parity: a schema ingested, persisted,
and restored in a (simulated) new process must drive the pipeline to
exactly the results a freshly-prepared schema produces — same lsim,
same wsim, same mappings, same search ranking. The corruption tests
hold the other half of the contract: anything structurally wrong on
disk surfaces as :class:`RepositoryError` with a readable message,
never as pickle/JSON shrapnel or silently different results.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import CupidConfig, MatchSession, SchemaRepository
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.datasets.rdb_star import rdb_schema, star_schema
from repro.exceptions import RepositoryError
from repro.repository import (
    FORMAT_VERSION,
    VocabularyIndex,
    prepared_from_dict,
    prepared_to_dict,
    token_profile,
)
from repro.repository.segments import SEGMENTS_DIR
from repro.repository.store import match_score


def _mapping_signature(result):
    leaf = sorted(
        (e.source_path, e.target_path, e.similarity)
        for e in result.leaf_mapping
    )
    nonleaf = sorted(
        (e.source_path, e.target_path, e.similarity)
        for e in result.nonleaf_mapping
    )
    return leaf, nonleaf


def _search_signature(search):
    return [
        (m.schema_id, m.score, _mapping_signature(m.result))
        for m in search
    ]


def _corpus(n=6, size=18, seed=3):
    generator = SchemaGenerator(seed=seed)
    return [
        generator.generate(
            name=f"corpus{i}", n_leaves=size, name_repetition=0.5
        )
        for i in range(n)
    ]


def _query_for(schema, seed=97):
    perturbed, _ = SchemaGenerator(seed=seed).perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return perturbed


class TestIngestAndLoad:
    def test_ingest_is_content_addressed_and_idempotent(self, tmp_path):
        repo = SchemaRepository(str(tmp_path / "repo"))
        schema = figure2_po()
        first = repo.ingest(schema)
        again = repo.ingest(schema)
        assert first == again
        assert len(repo) == 1
        assert repo.cache_info()["ingest_duplicates"] == 1

    def test_duplicate_ingest_skips_preparation(self, tmp_path):
        """The duplicate check must run before any expensive work: a
        second ingest of an equal (but distinct) schema object costs a
        canonical-dict hash, not a full preparation."""
        repo = SchemaRepository(str(tmp_path / "repo"))
        repo.ingest(figure2_po())
        misses_before = repo.cache_info()["prepare_misses"]
        assert repo.ingest(figure2_po()) in repo
        assert repo.cache_info()["prepare_misses"] == misses_before

    def test_missing_segment_rebuilds_from_artifacts(self, tmp_path):
        """Losing an index segment (crash, manual deletion) must not
        turn search into silent empty results — the index is a derived
        view, rebuilt from the artifacts and re-persisted on save."""
        corpus = _corpus(4)
        query = _query_for(corpus[1], seed=29)
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            for schema in corpus:
                repo.ingest(schema)
            intact = repo.search(query, k=2)
        segment_dir = os.path.join(path, SEGMENTS_DIR)
        victim = sorted(os.listdir(segment_dir))[0]
        os.remove(os.path.join(segment_dir, victim))
        healed = SchemaRepository.open(path)
        assert healed.cache_info()["segment_fallbacks"] == 1
        assert healed.cache_info()["index_rebuilds"] == 1
        rebuilt = healed.search(query, k=2)
        assert _search_signature(rebuilt) == _search_signature(intact)
        # The healed index is persisted as a fresh segment on save.
        healed.save()
        reopened = SchemaRepository.open(path)
        assert reopened.cache_info()["index_rebuilds"] == 0
        assert _search_signature(
            reopened.search(query, k=2)
        ) == _search_signature(intact)

    def test_corrupted_segment_checksum_falls_back(self, tmp_path):
        """A segment whose bytes no longer hash to the manifest's
        checksum is torn — the open must take the artifact re-scan
        fallback, not trust the damaged index."""
        corpus = _corpus(3)
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            for schema in corpus:
                repo.ingest(schema)
        segment_dir = os.path.join(path, SEGMENTS_DIR)
        victim = os.path.join(
            segment_dir, sorted(os.listdir(segment_dir))[0]
        )
        with open(victim) as handle:
            payload = json.load(handle)
        first_id = sorted(payload["profiles"])[0]
        payload["profiles"][first_id] = {}  # checksum now stale
        with open(victim, "w") as handle:
            json.dump(payload, handle)
        healed = SchemaRepository.open(path)
        assert healed.cache_info()["segment_fallbacks"] == 1
        assert healed.cache_info()["index_rebuilds"] == 1
        query = _query_for(corpus[0], seed=41)
        assert len(healed.search(query, k=3)) == 3

    def test_legacy_single_file_index_migrates_to_segments(
        self, tmp_path
    ):
        """Pre-segment repositories carry one ``index.json``; opening
        one must read it (no rebuild) and the next save must persist
        the index as a segment sequence."""
        corpus = _corpus(3)
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            for schema in corpus:
                repo.ingest(schema)
        # Rewrite the repository into the legacy on-disk layout.
        manifest_path = os.path.join(path, "repository.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["index_segments"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        legacy = SchemaRepository.open(path)
        index_payload = legacy._index.to_dict()
        with open(os.path.join(path, "index.json"), "w") as handle:
            json.dump(index_payload, handle)
        import shutil

        shutil.rmtree(os.path.join(path, SEGMENTS_DIR))
        migrated = SchemaRepository.open(path)
        assert migrated.cache_info()["index_rebuilds"] == 0
        assert migrated.cache_info()["segments_loaded"] == 0
        migrated.save()
        assert os.path.isdir(os.path.join(path, SEGMENTS_DIR))
        reopened = SchemaRepository.open(path)
        assert reopened.cache_info()["segments_loaded"] >= 1
        query = _query_for(corpus[2], seed=59)
        assert _search_signature(
            reopened.search(query, k=2)
        ) == _search_signature(migrated.search(query, k=2))

    def test_foreign_prepared_schema_is_reprepared(self, tmp_path):
        """A PreparedSchema built under a different thesaurus must not
        smuggle foreign artifacts past the fingerprint guards — ingest
        re-prepares it under the repository's own components."""
        from repro import empty_thesaurus

        repo = SchemaRepository(str(tmp_path / "repo"))
        foreign = MatchSession(thesaurus=empty_thesaurus()).prepare(
            figure2_po()
        )
        foreign.build_all()
        schema_id = repo.ingest(foreign)
        repo.verify(schema_id)  # would raise on foreign artifacts

    def test_foreign_prepared_query_is_reprepared(self, tmp_path):
        """search() applies the same foreign-PreparedSchema guard as
        ingest: a query prepared under another thesaurus would build a
        token profile missing the corpus's expansions and silently
        prune the true matches."""
        from repro import empty_thesaurus

        corpus = _corpus(4)
        query = _query_for(corpus[2], seed=53)
        repo = SchemaRepository(str(tmp_path / "repo"))
        for schema in corpus:
            repo.ingest(schema)
        native = repo.search(query, k=2, candidates=2)
        foreign_prep = MatchSession(thesaurus=empty_thesaurus()).prepare(
            query
        )
        via_foreign = repo.search(foreign_prep, k=2, candidates=2)
        assert _search_signature(via_foreign) == _search_signature(native)

    def test_build_all_skips_vocabulary_when_kernel_inapplicable(self):
        config = CupidConfig().replace(use_descriptions=True)
        prepared = MatchSession(config=config).prepare(figure2_po())
        prepared.build_all()
        # Descriptions make profile broadcast unsound, so no match
        # would ever read a vocabulary — building one wastes ingest
        # CPU and bloats every artifact.
        assert prepared.vocabulary is None
        kernel_on = MatchSession().prepare(figure2_po())
        kernel_on.build_all()
        assert kernel_on.vocabulary is not None

    def test_stale_index_membership_triggers_rebuild(self, tmp_path):
        """A torn save can leave the manifest's segment list out of
        step with its catalog; membership mismatch must trigger the
        same rebuild as a missing segment, or search silently drops
        the unindexed schemas."""
        corpus = _corpus(3)
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            ids = [repo.ingest(s) for s in corpus[:2]]
            repo.save()
            ids.append(repo.ingest(corpus[2]))
            repo.save()
        manifest_path = os.path.join(path, "repository.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert len(manifest["index_segments"]) == 2
        manifest["index_segments"] = manifest["index_segments"][:1]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        healed = SchemaRepository.open(path)
        assert healed.cache_info()["index_rebuilds"] == 1
        query = _query_for(corpus[2], seed=67)
        brute = healed.search(query, k=3)
        assert ids[2] in {m.schema_id for m in brute}

    def test_reopen_does_not_pin_runtime_knobs(self, tmp_path):
        """Runtime fields (backend, engine, block size) must come from
        the opening process, not the manifest — a repository created
        under REPRO_FORCE_STDLIB would otherwise pin every later
        numpy-capable open to the scalar fallback. Result-affecting
        fields ARE restored."""
        path = str(tmp_path / "repo")
        created = SchemaRepository(
            path,
            config=CupidConfig().replace(
                store="auto", dense_backend="stdlib", thns=0.6
            ),
        )
        created.ingest(figure2_po())
        created.save()
        reopened = SchemaRepository.open(path)
        assert reopened.config.dense_backend == CupidConfig().dense_backend
        assert reopened.config.store == "auto"
        assert reopened.config.thns == 0.6  # semantic field restored

    def test_catalog_metadata(self, tmp_path):
        repo = SchemaRepository(str(tmp_path / "repo"))
        schema_id = repo.ingest(figure2_po())
        meta = repo.describe(schema_id)
        assert meta["name"] == figure2_po().name
        assert meta["elements"] > 0 and meta["leaves"] > 0
        with pytest.raises(RepositoryError, match="no schema"):
            repo.describe("nope")
        with pytest.raises(RepositoryError, match="no schema"):
            repo.load("nope")

    def test_reopen_is_lazy(self, tmp_path):
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            ids = [repo.ingest(s) for s in _corpus(3)]
        reopened = SchemaRepository.open(path)
        assert reopened.cache_info()["artifact_loads"] == 0
        reopened.load(ids[0])
        assert reopened.cache_info()["artifact_loads"] == 1

    def test_verify_restored_artifacts(self, tmp_path):
        """Every persisted tier must match a from-scratch preparation —
        including on the DAG-shaped rdb/star schemas (join views,
        shared types) and the duplicate-heavy generated ones."""
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            ids = [
                repo.ingest(s)
                for s in [
                    figure2_po(),
                    figure2_purchase_order(),
                    rdb_schema(),
                    star_schema(),
                    *_corpus(2),
                ]
            ]
        reopened = SchemaRepository.open(path)
        for schema_id in ids:
            reopened.verify(schema_id)


class TestRoundTripParity:
    def test_restored_matching_is_bit_identical(self, tmp_path):
        """ingest → close → reopen → search == in-memory matching."""
        corpus = _corpus()
        query = _query_for(corpus[2])
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            for schema in corpus:
                repo.ingest(schema)
            live = repo.search(query, k=4)

        # A fresh process: nothing in memory but the artifact files.
        reopened = SchemaRepository.open(path)
        restored = reopened.search(query, k=4)
        assert _search_signature(restored) == _search_signature(live)

        # And the in-memory oracle: a plain session over the original
        # schema objects, same config, no persistence anywhere.
        session = MatchSession(config=reopened.config)
        by_name = {}
        for schema in corpus:
            result = session.match(query, schema)
            by_name[schema.name] = (
                match_score(result), _mapping_signature(result)
            )
        for match in restored:
            score, signature = by_name[match.schema_name]
            assert match.score == score
            assert _mapping_signature(match.result) == signature

    def test_prepared_round_trip_direct(self):
        """dict → PreparedSchema → dict is a fixed point."""
        session = MatchSession()
        prepared = session.prepare(figure2_purchase_order())
        payload = prepared_to_dict(prepared)
        restored = prepared_from_dict(
            payload, session.pipeline.linguistic, session.pipeline.config
        )
        assert prepared_to_dict(restored) == payload

    def test_pruned_search_subset_of_brute_force(self, tmp_path):
        corpus = _corpus(8)
        query = _query_for(corpus[5], seed=41)
        with SchemaRepository(str(tmp_path / "repo")) as repo:
            for schema in corpus:
                repo.ingest(schema)
            brute = repo.search(query, k=3)
            pruned = repo.search(query, k=3, candidates=4)
        assert brute.stats["candidates_pruned"] == 0
        assert pruned.stats["candidates_considered"] == 4
        assert pruned.stats["candidates_pruned"] == len(corpus) - 4
        # The true best match survives pruning and scores identically.
        assert pruned.matches[0].schema_id == brute.matches[0].schema_id
        assert pruned.matches[0].score == brute.matches[0].score


class TestCorruption:
    def _repo_with_one(self, tmp_path):
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            schema_id = repo.ingest(figure2_po())
        return path, schema_id

    def test_truncated_artifact(self, tmp_path):
        path, schema_id = self._repo_with_one(tmp_path)
        artifact = os.path.join(path, "schemas", f"{schema_id}.json")
        with open(artifact, "w") as handle:
            handle.write('{"format_version": 1, "schema"')
        repo = SchemaRepository.open(path)
        with pytest.raises(RepositoryError, match="corrupt"):
            repo.load(schema_id)

    def test_artifact_version_mismatch(self, tmp_path):
        path, schema_id = self._repo_with_one(tmp_path)
        artifact = os.path.join(path, "schemas", f"{schema_id}.json")
        with open(artifact) as handle:
            payload = json.load(handle)
        payload["format_version"] = FORMAT_VERSION + 1
        with open(artifact, "w") as handle:
            json.dump(payload, handle)
        repo = SchemaRepository.open(path)
        with pytest.raises(RepositoryError, match="version"):
            repo.load(schema_id)

    def test_structurally_broken_artifact(self, tmp_path):
        path, schema_id = self._repo_with_one(tmp_path)
        artifact = os.path.join(path, "schemas", f"{schema_id}.json")
        with open(artifact) as handle:
            payload = json.load(handle)
        del payload["artifacts"]["categories"]
        with open(artifact, "w") as handle:
            json.dump(payload, handle)
        repo = SchemaRepository.open(path)
        with pytest.raises(RepositoryError, match="corrupt"):
            repo.load(schema_id)

    def test_missing_artifact_file(self, tmp_path):
        path, schema_id = self._repo_with_one(tmp_path)
        os.remove(os.path.join(path, "schemas", f"{schema_id}.json"))
        repo = SchemaRepository.open(path)
        with pytest.raises(RepositoryError, match="missing"):
            repo.load(schema_id)

    def test_corrupt_manifest(self, tmp_path):
        path, _ = self._repo_with_one(tmp_path)
        with open(os.path.join(path, "repository.json"), "w") as handle:
            handle.write("not json {")
        with pytest.raises(RepositoryError, match="corrupt"):
            SchemaRepository.open(path)

    def test_manifest_version_mismatch(self, tmp_path):
        path, _ = self._repo_with_one(tmp_path)
        manifest_path = os.path.join(path, "repository.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = FORMAT_VERSION + 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(RepositoryError, match="version"):
            SchemaRepository.open(path)

    def test_missing_repository(self, tmp_path):
        with pytest.raises(RepositoryError, match="no schema repository"):
            SchemaRepository.open(str(tmp_path / "nowhere"))

    def test_config_mismatch(self, tmp_path):
        path, _ = self._repo_with_one(tmp_path)
        other = CupidConfig().replace(thns=0.7)
        with pytest.raises(RepositoryError, match="config mismatch"):
            SchemaRepository.open(path, config=other)
        # Runtime-only differences are fine: engine/store/backend are
        # parity-guaranteed not to change results.
        runtime_only = SchemaRepository.open(
            path, config=CupidConfig().replace(store="blocked")
        )
        assert runtime_only.config.store == "blocked"

    def test_thesaurus_mismatch(self, tmp_path):
        from repro import empty_thesaurus

        path, _ = self._repo_with_one(tmp_path)
        with pytest.raises(RepositoryError, match="thesaurus mismatch"):
            SchemaRepository.open(path, thesaurus=empty_thesaurus())


class TestVocabularyIndex:
    def test_profile_counts_distinct_names(self):
        session = MatchSession()
        prepared = session.prepare(
            SchemaGenerator(seed=5).generate(
                n_leaves=20, name_repetition=0.8
            )
        )
        profile = token_profile(prepared.linguistic)
        distinct = {
            n.raw for n in prepared.linguistic.normalized.values()
        }
        assert profile
        # No token can be counted more often than there are distinct
        # names (multiplicity of repeated elements must not leak in).
        assert max(profile.values()) <= len(distinct)

    def test_family_ranks_first(self, tmp_path):
        corpus = _corpus(8)
        query = _query_for(corpus[4], seed=13)
        with SchemaRepository(str(tmp_path / "repo")) as repo:
            ids = {repo.ingest(s): s.name for s in corpus}
            search = repo.search(query, k=1, candidates=2)
        ranking = search.candidate_scores
        assert ids[ranking[0][0]] == corpus[4].name

    def test_synset_expansion_reaches_synonyms(self):
        from repro import builtin_thesaurus

        index = VocabularyIndex()
        index.add("inv", {"invoice": 1, "total": 1})
        index.add("other", {"shipment": 1, "city": 1})
        ranked = index.score({"bill": 1}, builtin_thesaurus())
        assert ranked[0][0] == "inv"
        assert ranked[0][1] > 0.0

    def test_index_round_trip(self):
        index = VocabularyIndex()
        index.add("a", {"order": 2, "city": 1})
        index.add("b", {"city": 3})
        restored = VocabularyIndex.from_dict(index.to_dict())
        assert restored.to_dict() == index.to_dict()
        assert restored.score({"city": 1}) == index.score({"city": 1})

    def test_index_version_mismatch(self):
        with pytest.raises(RepositoryError, match="version"):
            VocabularyIndex.from_dict({"index_version": 99, "profiles": {}})


class TestSimilarityCachePersistence:
    def test_simcache_round_trip_preserves_results(self, tmp_path):
        corpus = _corpus(4)
        query = _query_for(corpus[1], seed=23)
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            for schema in corpus:
                repo.ingest(schema)
            cold = repo.search(query, k=3)

        # Second process: the memo starts preloaded from simcache.json.
        warm_repo = SchemaRepository.open(path)
        preloaded = warm_repo.cache_info()["simcache_preloaded_entries"]
        assert preloaded > 0
        warm = warm_repo.search(query, k=3)
        assert _search_signature(warm) == _search_signature(cold)

    def test_warm_save_skips_simcache_rewrite(self, tmp_path):
        """A session that computed no new similarities must not touch
        simcache.json — read-only search stays read-only."""
        corpus = _corpus(3)
        query = _query_for(corpus[0], seed=31)
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            for schema in corpus:
                repo.ingest(schema)
            repo.search(query, k=2)
        simcache_path = os.path.join(path, "simcache.json")
        before = os.stat(simcache_path).st_mtime_ns
        with SchemaRepository.open(path) as warm:
            warm.search(query, k=2)  # every similarity preloaded
        assert os.stat(simcache_path).st_mtime_ns == before

    def test_simcache_write_failure_is_not_fatal(self, tmp_path):
        """Persisting the simcache is an optimization; an unwritable
        repository directory must not fail a successful search."""
        from repro import faults

        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            repo.ingest(figure2_po())

        repo = SchemaRepository.open(path)
        search = repo.search(figure2_purchase_order(), k=1)
        assert len(search) == 1
        plan_before = faults._PLAN
        faults.arm(faults.parse_spec("repo.simcache:oserror@*"))
        try:
            repo.save()  # must not raise
        finally:
            faults._PLAN = plan_before
        assert repo.cache_info()["simcache_write_failures"] == 1

    def test_stale_simcache_discarded(self, tmp_path):
        path = str(tmp_path / "repo")
        with SchemaRepository(path) as repo:
            repo.ingest(figure2_po())
            repo.search(figure2_purchase_order(), k=1)
        simcache_path = os.path.join(path, "simcache.json")
        with open(simcache_path) as handle:
            data = json.load(handle)
        data["thesaurus_fingerprint"] = "different"
        with open(simcache_path, "w") as handle:
            json.dump(data, handle)
        repo = SchemaRepository.open(path)
        info = repo.cache_info()
        assert info["simcache_preloaded_entries"] == 0
        assert info["simcache_discarded"] == 1


class TestStoreAuto:
    def test_auto_resolves_by_leaf_count(self):
        from repro.structure.blocked import BlockedSimilarityStore
        from repro.structure.dense import DenseSimilarityStore

        source = figure2_po()
        target = figure2_purchase_order()
        small = MatchSession(
            config=CupidConfig().replace(store="auto")
        ).match(source, target)
        assert not isinstance(
            small.treematch_result.sims, BlockedSimilarityStore
        )
        assert isinstance(
            small.treematch_result.sims, DenseSimilarityStore
        )
        large = MatchSession(
            config=CupidConfig().replace(
                store="auto", auto_store_leaf_threshold=1
            )
        ).match(source, target)
        assert isinstance(
            large.treematch_result.sims, BlockedSimilarityStore
        )

    def test_auto_parity_with_flat(self):
        source = _corpus(1, size=24)[0]
        target = _query_for(source, seed=71)
        flat = MatchSession(
            config=CupidConfig().replace(store="flat")
        ).match(source, target)
        auto = MatchSession(
            config=CupidConfig().replace(
                store="auto", auto_store_leaf_threshold=1
            )
        ).match(source, target)
        assert _mapping_signature(auto) == _mapping_signature(flat)


class TestForceStdlibEnv:
    def test_env_flips_default_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_STDLIB", "1")
        assert CupidConfig().dense_backend == "stdlib"
        monkeypatch.delenv("REPRO_FORCE_STDLIB")
        assert CupidConfig().dense_backend == "auto"
