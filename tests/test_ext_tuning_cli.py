"""Tests for auto-tuning and the command-line interface."""

import json

import pytest

from repro.cli import load_schema, main
from repro.config import CupidConfig
from repro.core.tuning import auto_config, tune_against_sample
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.rdb_star import rdb_schema, star_schema
from repro.exceptions import ReproError
from repro.model.builder import schema_from_tree

_SQL = """
CREATE TABLE Customers (
  CustomerID int PRIMARY KEY,
  Name varchar(40),
  City varchar(30)
);
CREATE TABLE Orders (
  OrderID int PRIMARY KEY,
  CustomerID int REFERENCES Customers(CustomerID),
  OrderDate datetime
);
"""

_SQL_TARGET = """
CREATE TABLE Clients (
  ClientID int PRIMARY KEY,
  Name varchar(40),
  Town varchar(30)
);
CREATE TABLE Purchases (
  PurchaseID int PRIMARY KEY,
  ClientID int REFERENCES Clients(ClientID),
  PurchaseDate datetime
);
"""


class TestAutoConfig:
    def test_deeper_schemas_get_larger_cinc(self):
        shallow = schema_from_tree("S", {"A": {"x": "int"}})
        deep = schema_from_tree(
            "D", {"A": {"B": {"C": {"D": {"x": "int"}}}}}
        )
        shallow_config = auto_config(shallow, shallow)
        deep_config = auto_config(deep, deep)
        assert shallow_config.cinc >= deep_config.cinc
        assert deep_config.cinc >= 1.15

    def test_refints_relax_pruning_ratio(self):
        config = auto_config(rdb_schema(), star_schema())
        assert config.leaf_count_ratio >= 2.5

    def test_no_refints_keep_default_ratio(self):
        config = auto_config(figure2_po(), figure2_purchase_order())
        assert config.leaf_count_ratio == CupidConfig().leaf_count_ratio

    def test_result_is_valid(self):
        auto_config(rdb_schema(), star_schema()).validate()


class TestTuneAgainstSample:
    def test_returns_config_and_score(self):
        sample = [
            ("POLines.Item.Qty", "Items.Item.Quantity"),
            ("POBillTo.City", "InvoiceTo.Address.City"),
        ]
        config, f1 = tune_against_sample(
            figure2_po(), figure2_purchase_order(), sample,
            cinc_grid=(1.2,), wstruct_grid=(0.55, 0.6),
        )
        assert f1 > 0.0
        config.validate()

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            tune_against_sample(
                figure2_po(), figure2_purchase_order(), []
            )


class TestCli:
    @pytest.fixture
    def schema_files(self, tmp_path):
        source = tmp_path / "source.sql"
        source.write_text(_SQL)
        target = tmp_path / "target.sql"
        target.write_text(_SQL_TARGET)
        return str(source), str(target)

    def test_load_schema_by_extension(self, tmp_path):
        path = tmp_path / "db.sql"
        path.write_text(_SQL)
        schema = load_schema(str(path))
        assert schema.name == "db"
        assert len(schema.refint_elements()) == 1

    def test_load_unknown_extension(self, tmp_path):
        path = tmp_path / "db.weird"
        path.write_text("...")
        with pytest.raises(ReproError):
            load_schema(str(path))

    def test_match_text_output(self, schema_files, capsys):
        source, target = schema_files
        assert main(["match", source, target]) == 0
        out = capsys.readouterr().out
        assert "correspondences" in out
        assert "Name" in out

    def test_match_json_output(self, schema_files, capsys):
        source, target = schema_files
        assert main(["match", source, target, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["source_schema"] == "source"
        assert data["elements"]

    def test_match_one_to_one(self, schema_files, capsys):
        source, target = schema_files
        assert main(
            ["match", source, target, "--format", "json", "--one-to-one"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        targets = [tuple(e["target_path"]) for e in data["elements"]]
        assert len(targets) == len(set(targets))

    def test_match_min_similarity(self, schema_files, capsys):
        source, target = schema_files
        assert main(
            ["match", source, target, "--format", "json",
             "--min-similarity", "0.99"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        for element in data["elements"]:
            assert element["similarity"] >= 0.99

    def test_match_auto_tune(self, schema_files, capsys):
        source, target = schema_files
        assert main(["match", source, target, "--auto-tune"]) == 0

    def test_match_no_thesaurus(self, schema_files, capsys):
        source, target = schema_files
        assert main(["match", source, target, "--no-thesaurus"]) == 0

    def test_match_stats(self, schema_files, capsys):
        source, target = schema_files
        assert main(["match", source, target, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "correspondences" in captured.out
        # Counters go to stderr so --format json stdout stays clean.
        assert "compared_pairs" in captured.err
        assert "engine: dense" in captured.err
        assert "token_sim_hit_rate" in captured.err

    def test_match_engine_choice(self, schema_files, capsys):
        source, target = schema_files
        assert main(
            ["match", source, target, "--engine", "reference", "--stats"]
        ) == 0
        err = capsys.readouterr().err
        assert "engine: reference" in err
        # The reference engine has no linguistic memo to report on.
        assert "token_sim_hit_rate" not in err

    def test_engines_agree_on_json_output(self, schema_files, capsys):
        source, target = schema_files
        assert main(
            ["match", source, target, "--format", "json"]
        ) == 0
        dense = json.loads(capsys.readouterr().out)
        assert main(
            ["match", source, target, "--format", "json",
             "--engine", "reference"]
        ) == 0
        reference = json.loads(capsys.readouterr().out)
        # The mappings must agree exactly; the stats/timings payloads
        # legitimately differ (engine name, wall times).
        assert dense["elements"] == reference["elements"]
        assert dense["source_schema"] == reference["source_schema"]
        assert dense["stats"]["engine"] == "dense"
        assert reference["stats"]["engine"] == "reference"
        assert "timings_ms" in dense and "timings_ms" in reference

    def test_show(self, schema_files, capsys):
        source, _ = schema_files
        assert main(["show", source]) == 0
        out = capsys.readouterr().out
        assert "Customers" in out
        assert "referential constraint" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["match", "/nope/a.sql", "/nope/b.sql"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_xml_and_oo_loading(self, tmp_path):
        xml = tmp_path / "s.xml"
        xml.write_text(
            "<schema name='S'><element name='A'>"
            "<attribute name='x' type='integer'/></element></schema>"
        )
        oo = tmp_path / "s.oo"
        oo.write_text("class C (x: integer)")
        assert load_schema(str(xml)).name == "S"
        assert load_schema(str(oo)).name == "s"
