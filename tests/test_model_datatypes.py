"""Tests for repro.model.datatypes — types and the compatibility table."""

import pytest

from repro.model.datatypes import (
    BROAD_CLASS,
    DataType,
    TypeCompatibilityTable,
    default_compatibility_table,
    parse_data_type,
)


class TestParseDataType:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("varchar(40)", DataType.STRING),
            ("VARCHAR", DataType.STRING),
            ("int", DataType.INTEGER),
            ("INTEGER", DataType.INTEGER),
            ("decimal(10, 2)", DataType.DECIMAL),
            ("numeric", DataType.DECIMAL),
            ("money", DataType.MONEY),
            ("bit", DataType.BOOLEAN),
            ("datetime", DataType.DATETIME),
            ("timestamp", DataType.DATETIME),
            ("char(2)", DataType.CHAR),
            ("blob", DataType.BINARY),
            ("id", DataType.IDENTIFIER),
            ("float", DataType.FLOAT),
            ("double", DataType.FLOAT),
        ],
    )
    def test_known_aliases(self, raw, expected):
        assert parse_data_type(raw) is expected

    def test_unknown_type_falls_back_to_any(self):
        assert parse_data_type("geometry") is DataType.ANY

    def test_whitespace_tolerated(self):
        assert parse_data_type("  int  ") is DataType.INTEGER


class TestBroadClasses:
    def test_every_data_type_has_a_broad_class(self):
        for data_type in DataType:
            assert data_type in BROAD_CLASS

    def test_numeric_types_share_a_class(self):
        assert BROAD_CLASS[DataType.INTEGER] == BROAD_CLASS[DataType.DECIMAL]
        assert BROAD_CLASS[DataType.FLOAT] == BROAD_CLASS[DataType.MONEY]

    def test_string_types_share_a_class(self):
        assert BROAD_CLASS[DataType.STRING] == BROAD_CLASS[DataType.TEXT]


class TestCompatibilityTable:
    def test_identical_types_score_the_paper_maximum(self):
        """Section 6: 'Identical data types have a compatibility of 0.5.'"""
        table = default_compatibility_table()
        assert table.compatibility(DataType.INTEGER, DataType.INTEGER) == 0.5
        assert table.compatibility(DataType.STRING, DataType.STRING) == 0.5

    def test_all_scores_within_half(self):
        """Section 6: the value is a lookup in [0, 0.5]."""
        table = default_compatibility_table()
        for a in DataType:
            for b in DataType:
                assert 0.0 <= table.compatibility(a, b) <= 0.5

    def test_symmetry(self):
        table = default_compatibility_table()
        for a in DataType:
            for b in DataType:
                assert table.compatibility(a, b) == table.compatibility(b, a)

    def test_same_class_beats_cross_class(self):
        table = default_compatibility_table()
        same = table.compatibility(DataType.INTEGER, DataType.SMALLINT)
        cross = table.compatibility(DataType.INTEGER, DataType.BINARY)
        assert same > cross

    def test_convertible_pairs_beat_plain_same_class(self):
        table = default_compatibility_table()
        convertible = table.compatibility(DataType.INTEGER, DataType.DECIMAL)
        assert convertible > table.same_class

    def test_none_treated_as_any(self):
        table = default_compatibility_table()
        assert table.compatibility(None, DataType.INTEGER) == (
            table.compatibility(DataType.ANY, DataType.INTEGER)
        )

    def test_override_is_symmetric(self):
        table = TypeCompatibilityTable()
        table.set(DataType.DATE, DataType.INTEGER, 0.3)
        assert table.compatibility(DataType.DATE, DataType.INTEGER) == 0.3
        assert table.compatibility(DataType.INTEGER, DataType.DATE) == 0.3

    def test_override_out_of_range_rejected(self):
        table = TypeCompatibilityTable()
        with pytest.raises(ValueError):
            table.set(DataType.DATE, DataType.INTEGER, 0.7)

    def test_inconsistent_constructor_scores_rejected(self):
        with pytest.raises(ValueError):
            TypeCompatibilityTable(identical=0.3, same_class=0.4)

    def test_items_exposes_overrides(self):
        table = TypeCompatibilityTable()
        table.set(DataType.DATE, DataType.INTEGER, 0.3)
        assert ((DataType.DATE, DataType.INTEGER), 0.3) in list(table.items())
