"""Tests for the tile-sharded parallel TreeMatch layer.

The fuzz suite (``test_fuzz_parity.py``) is the bit-identity oracle —
its ``workers=2`` variants force every fuzz case's plane through the
shards. This file covers the layer's own mechanics: stripe
partitioning, worker resolution, crossing-stamp reconciliation
counters, crash handling (a dead worker must surface as a named
:class:`~repro.exceptions.ParallelError`, never a silent serial
fallback, and must not poison later matches), the serial threshold for
small planes, and the pickling support multiprocessing contexts rely
on.
"""

from __future__ import annotations

import pickle

import pytest

from repro import CupidMatcher, MatchSession
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.exceptions import ParallelError
from repro.structure import parallel
from repro.structure.parallel import (
    effective_workers,
    get_pool,
    min_parallel_cells,
    stripe_plan,
)


def _pair(n_leaves=48, seed=29):
    generator = SchemaGenerator(seed=seed)
    schema = generator.generate(n_leaves=n_leaves, max_depth=3)
    other, _ = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return schema, other


def _signatures(result):
    source_paths = {
        n.node_id: n.path() for n in result.source_tree.nodes()
    }
    target_paths = {
        n.node_id: n.path() for n in result.target_tree.nodes()
    }
    wsim = sorted(
        (source_paths[s], target_paths[t], value)
        for (s, t), value in result.treematch_result.wsim.items()
    )
    leaf = sorted(
        (e.source_path, e.target_path, e.similarity)
        for e in result.leaf_mapping
    )
    return wsim, leaf


def _match(schema, other, **overrides):
    config = CupidConfig(engine="dense", **overrides)
    return CupidMatcher(config=config).match(schema, other)


class TestStripePlan:
    def test_covers_and_partitions(self):
        for n_rows, align, workers in (
            (100, 8, 3),
            (1, 64, 4),
            (64, 64, 2),
            (65, 64, 2),
            (1000, 16, 7),
        ):
            stripes = stripe_plan(n_rows, align, workers)
            assert len(stripes) == workers
            cursor = 0
            for r0, r1 in stripes:
                assert r0 == cursor  # contiguous, ascending, disjoint
                assert r0 <= r1 <= n_rows
                cursor = r1
            assert cursor == n_rows  # full cover

    def test_aligned_to_tile_rows(self):
        for r0, r1 in stripe_plan(1000, 16, 7):
            assert r0 % 16 == 0
            assert r1 % 16 == 0 or r1 == 1000

    def test_empty_plane(self):
        assert stripe_plan(0, 64, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_fewer_tile_rows_than_workers(self):
        # 2 tile rows, 4 workers: trailing workers get empty stripes.
        stripes = stripe_plan(128, 64, 4)
        assert stripes[0] == (0, 64)
        assert stripes[1] == (64, 128)
        assert stripes[2] == (128, 128)
        assert stripes[3] == (128, 128)


class TestEffectiveWorkers:
    def test_serial_default(self):
        config = CupidConfig(workers=1)
        assert effective_workers(config, 10_000) == 1

    def test_threshold_keeps_small_planes_serial(self):
        config = CupidConfig(workers=4, parallel_leaf_threshold=256)
        assert effective_workers(config, 255) == 1
        assert effective_workers(config, 256) == 4

    def test_auto_expands_to_cpu_count(self):
        config = CupidConfig(workers=0, parallel_leaf_threshold=1)
        assert effective_workers(config, 1000) >= 1

    def test_min_cells_tracks_threshold(self):
        assert min_parallel_cells(
            CupidConfig(parallel_leaf_threshold=1)
        ) == 1
        assert min_parallel_cells(
            CupidConfig(parallel_leaf_threshold=100)
        ) == 10_000
        # Capped: a huge threshold must not disable dispatch entirely
        # on planes the store already decided to shard.
        assert min_parallel_cells(
            CupidConfig(parallel_leaf_threshold=10_000)
        ) == 262_144


class TestShardedParity:
    """Spot parity checks with engaged-counter assertions (the broad
    sweep lives in the fuzz suite)."""

    @pytest.mark.parametrize("store", ["flat", "blocked"])
    def test_bit_identical_and_engaged(self, store):
        schema, other = _pair()
        serial = _match(schema, other, store=store)
        sharded = _match(
            schema,
            other,
            store=store,
            workers=2,
            parallel_leaf_threshold=1,
        )
        assert _signatures(serial) == _signatures(sharded)
        facts = sharded.treematch_result.sims.describe()
        assert facts["parallel_workers"] == 2
        assert facts["parallel_scan_ops"] > 0
        assert facts["parallel_shards_dispatched"] > 0
        if store == "flat":
            assert facts["parallel_scale_ops"] > 0
        else:
            assert facts["parallel_ops_forwarded"] > 0

    def test_concurrent_threads_share_pool_safely(self):
        """Regression for the serving subsystem's deadlock: pool
        replies carry no correlation ids, so two threads interleaving
        send/recv on the shared pipes used to claim each other's
        replies (or block forever). The transaction lock must make N
        threads' sharded matches bit-identical to serial."""
        import threading

        schema, other = _pair(n_leaves=32, seed=83)
        serial = _signatures(_match(schema, other, store="flat"))
        results = [None] * 4
        errors = []

        def worker(i):
            try:
                results[i] = _signatures(_match(
                    schema,
                    other,
                    store="flat",
                    workers=2,
                    parallel_leaf_threshold=1,
                ))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "pool deadlock"
        assert not errors
        assert all(result == serial for result in results)

    def test_stamp_reconciliation_counted(self):
        """Context scaling crosses the strong-link threshold somewhere
        on a perturbed pair; the shards must report those crossings
        back and the store must stamp them (the dirty-set recompute
        correctness hinges on this — parity above proves it exact,
        this proves the parallel path is the one doing it)."""
        schema, other = _pair()
        sharded = _match(
            schema,
            other,
            store="flat",
            workers=2,
            parallel_leaf_threshold=1,
        )
        facts = sharded.treematch_result.sims.describe()
        assert facts["parallel_stamp_merges"] > 0

    def test_session_accumulates_parallel_counters(self):
        schema, other = _pair(n_leaves=32)
        session = MatchSession(
            config=CupidConfig(
                engine="dense",
                store="flat",
                workers=2,
                parallel_leaf_threshold=1,
            )
        )
        session.match(schema, other)
        info = session.cache_info()
        assert info["parallel_matches"] == 1
        assert info["parallel_scan_ops"] > 0


class TestSerialThreshold:
    def test_small_plane_stays_in_process(self):
        schema, other = _pair(n_leaves=16)
        # Pinned (not defaulted) threshold so the CI worker matrix's
        # REPRO_FORCE_PARALLEL_THRESHOLD=1 override can't flip it: 256
        # far exceeds 16 leaves, so no shard context and no worker
        # pool involvement.
        result = _match(
            schema, other, store="flat", workers=4,
            parallel_leaf_threshold=256,
        )
        facts = result.treematch_result.sims.describe()
        assert "parallel_workers" not in facts


class TestCrashHandling:
    def test_dead_worker_raises_named_error_then_recovers(self):
        schema, other = _pair(n_leaves=40)
        overrides = {
            "store": "flat",
            "workers": 2,
            "parallel_leaf_threshold": 1,
        }
        # Warm the pool, then crash one worker via the test hook.
        pool = get_pool(2)
        pool.post(0, ("die",))
        pool._procs[0].join(timeout=10)
        assert not pool._procs[0].is_alive()
        with pytest.raises(ParallelError):
            _match(schema, other, **overrides)
        # The broken pool was dropped from the registry; the next
        # match spawns a fresh pool and is exact again.
        assert parallel._POOLS.get(2) is not pool
        recovered = _match(schema, other, **overrides)
        serial = _match(schema, other, store="flat")
        assert _signatures(recovered) == _signatures(serial)

    def test_posting_to_dead_pool_raises(self):
        pool = get_pool(3)
        pool.shutdown()
        with pytest.raises(ParallelError):
            pool.post(0, ("ping",))


class TestPickling:
    """Config and PreparedSchema must survive pickling — spawn-context
    multiprocessing ships both to child processes."""

    def test_config_roundtrip(self):
        config = CupidConfig(
            store="blocked", workers=3, parallel_leaf_threshold=7
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_prepared_schema_roundtrip(self):
        schema, other = _pair(n_leaves=24)
        config = CupidConfig(engine="dense")
        session = MatchSession(config=config)
        prepared = session.prepare(schema).build_all()
        clone = pickle.loads(pickle.dumps(prepared))
        # The expensive linguistic tier travels; tree and layout are
        # dropped and rebuild deterministically on demand.
        info = clone.cache_info()
        assert info["linguistic_built"] is True
        assert info["tree_built"] is False
        assert info["leaf_layout_built"] is False
        baseline = session.match(schema, other)
        replayed = MatchSession(config=config).match(clone, other)
        assert _signatures(baseline) == _signatures(replayed)
